#!/usr/bin/env python
"""Soak: sweep seeds through simulator and real-socket runs, keep repros.

For every registered scenario x seed x wire mode — plus the synthetic
``random-mesh`` family, a seeded random relay topology and timeline per
seed (:func:`random_mesh_scenario`) — the soak runs the in-memory
:class:`~repro.net.NetworkSimulator` and (unless ``--sim-only``) the
real-socket :func:`~repro.netd.run_scenario_netd` twin, then checks

* both runs converge (each against the shared oracle), and
* every reachable peer's final state agrees across the two transports
  (:func:`~repro.net.states_agree` — homomorphic, null-safe).

Any failure writes a standalone repro fixture into ``--out``
(default ``soak_failures/``): the serialized scenario plus the seed,
mode, and per-peer verdicts, so a developer (or CI) can replay the exact
divergence with ``repro.cli simulate`` or ``run_scenario_netd`` without
re-running the sweep.  With ``--pytest`` the slow/chaos pytest lanes run
first and count toward the exit status.

Usage::

    PYTHONPATH=src python scripts/soak.py [--seeds 0:8] [--scenarios registry]
                                          [--sim-only] [--pytest] [-q]

Exit status is the number of failing combinations (0 = clean soak).
"""

from __future__ import annotations

import argparse
import json
import random
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.core.instance import Instance
from repro.net import (
    Crash,
    Heal,
    NetworkSimulator,
    Partition,
    RelayLink,
    Restart,
    Scenario,
    dumps_scenario,
    registry_setting,
    scenario_registry,
    states_agree,
)
from repro.netd import run_scenario_netd
from repro.runtime.faults import FaultSchedule

FIXTURE_SCHEMA_VERSION = 1


def random_mesh_scenario(seed: int = 0) -> Scenario:
    """A seeded random relay topology and timeline, convergence-expected.

    Every draw comes from ``random.Random(seed)``, so the same seed
    always yields the same scenario — a failing combination replays
    byte-for-byte from its fixture.  The generator only emits runs the
    protocol *must* survive: the topology is a layered DAG where every
    peer has at least one upstream path from the publisher, every
    partition heals, and every crash restarts.  Any divergence the sweep
    finds is therefore a genuine protocol bug, not a scenario artifact.
    """
    rng = random.Random(seed)
    publisher = "origin"
    relays = [f"relay-{i}" for i in range(rng.randint(1, 2))]
    leaves = [f"leaf-{i}" for i in range(rng.randint(1, 2))]
    peers = relays + leaves
    links = [RelayLink(publisher, relay) for relay in relays]
    for leaf in leaves:
        feeders = rng.sample(relays, rng.randint(1, len(relays)))
        links.extend(RelayLink(feeder, leaf) for feeder in feeders)
    if rng.random() < 0.5:
        # A publisher shortcut to one leaf: a diamond with the relay path,
        # so the same stamp arrives over two routes (idempotence workout).
        shortcut = rng.choice(leaves)
        links.append(RelayLink(publisher, shortcut))

    # 4-6 authoritative rounds of random registry churn.
    rows: dict[str, int] = {}
    snapshots: list[Instance] = []
    counter = 0
    for _ in range(rng.randint(4, 6)):
        for _ in range(rng.randint(1, 2)):
            rows[f"k{counter}"] = counter
            counter += 1
        if len(rows) > 1 and rng.random() < 0.4:
            del rows[rng.choice(sorted(rows))]
        snapshots.append(
            Instance.from_tuples(
                {"reg": [(key, str(value)) for key, value in sorted(rows.items())]}
            )
        )

    faults: dict[tuple[str, str], FaultSchedule] = {}
    for offset, link in enumerate(links):
        drop = rng.choice((0.0, 0.15, 0.3))
        duplicate = rng.choice((0.0, 0.2))
        if drop or duplicate:
            faults[(link.sender, link.recipient)] = FaultSchedule.seeded(
                seed=seed * 1000 + offset, drop=drop, duplicate=duplicate
            )

    events: list = []
    duration = float(len(snapshots) - 1)
    if rng.random() < 0.7:
        cut = rng.choice(peers)
        start = round(rng.uniform(0.5, duration - 1.0), 2)
        rest = {publisher, *(peer for peer in peers if peer != cut)}
        events.append(Partition(start, rest, {cut}))
        events.append(Heal(round(start + 1.0, 2)))
    if rng.random() < 0.5:
        victim = rng.choice(peers)
        start = round(rng.uniform(0.5, duration - 1.0), 2)
        events.append(Crash(start, victim))
        events.append(Restart(round(start + 1.0, 2), victim))

    return Scenario(
        name=f"random-mesh-{seed}",
        description=(
            f"seeded random relay mesh ({len(relays)} relay(s), "
            f"{len(leaves)} leaf/leaves, {len(links)} links); every fault heals"
        ),
        setting=registry_setting(),
        snapshots=snapshots,
        peers=peers,
        publisher=publisher,
        topology=tuple(links),
        faults=faults,
        events=events,
        seed=seed,
    )


def _parse_seeds(text: str) -> list[int]:
    """``0:8`` → range, ``3,7,11`` → list, ``5`` → one seed."""
    if ":" in text:
        lo, _, hi = text.partition(":")
        return list(range(int(lo), int(hi)))
    return [int(part) for part in text.split(",") if part.strip()]


def _simulate(builder, seed: int, deltas: bool):
    simulator = NetworkSimulator(builder(seed=seed), deltas=deltas)
    report = simulator.run()
    unreachable = set(report.convergence.unreachable)
    states = {
        name: node.state()
        for name, node in simulator.nodes.items()
        if name not in unreachable
    }
    return report, states


def _soak_one(name: str, builder, seed: int, deltas: bool, sim_only: bool):
    """Run one combination; returns a list of failure strings (empty = ok)."""
    failures: list[str] = []
    sim_report, sim_states = _simulate(builder, seed, deltas)
    if not sim_report.converged:
        failures.append("simulator run did not converge")
    if sim_only:
        return failures, None

    netd_report = run_scenario_netd(builder(seed=seed), deltas=deltas)
    if not netd_report.converged:
        failures.append("netd run did not converge")
    if not netd_report.drained:
        failures.append("netd daemon missed its drain deadline")
    if sorted(netd_report.unreachable) != sorted(
        sim_report.convergence.unreachable
    ):
        failures.append(
            f"unreachable sets differ: netd={sorted(netd_report.unreachable)} "
            f"sim={sorted(sim_report.convergence.unreachable)}"
        )
    for peer, state in sorted(netd_report.states.items()):
        if peer in sim_states and not states_agree(state, sim_states[peer]):
            failures.append(f"peer {peer!r} diverged between transports")
    return failures, netd_report


def _write_fixture(
    out_dir: Path, name: str, builder, seed: int, deltas: bool,
    failures: list[str],
) -> Path:
    out_dir.mkdir(parents=True, exist_ok=True)
    mode = "delta" if deltas else "snapshot"
    path = out_dir / f"{name}-seed{seed}-{mode}.json"
    path.write_text(
        json.dumps(
            {
                "schema_version": FIXTURE_SCHEMA_VERSION,
                "format": "repro-soak-fixture",
                "scenario": name,
                "seed": seed,
                "deltas": deltas,
                "failures": failures,
                "scenario_document": json.loads(dumps_scenario(builder(seed=seed))),
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )
    return path


def _run_pytest_lanes(quiet: bool) -> int:
    """The heavy pytest lanes: slow soak suites + socket chaos suites."""
    command = [
        sys.executable, "-m", "pytest", "-m", "slow or chaos", "-q",
    ]
    if not quiet:
        print(f"$ {' '.join(command)}")
    completed = subprocess.run(command, cwd=REPO)
    return completed.returncode


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--seeds", default="0:6",
        help="seed sweep: 'LO:HI' half-open range or comma list (default 0:6)",
    )
    parser.add_argument(
        "--scenarios", default=None,
        help="comma list of scenario names (default: every registered one)",
    )
    parser.add_argument(
        "--sim-only", action="store_true",
        help="skip the real-socket twin (fast smoke of the sweep itself)",
    )
    parser.add_argument(
        "--pytest", action="store_true",
        help="also run the slow/chaos pytest lanes before the sweep",
    )
    parser.add_argument(
        "--out", default=str(REPO / "soak_failures"),
        help="directory for divergence repro fixtures",
    )
    parser.add_argument("-q", "--quiet", action="store_true")
    args = parser.parse_args(argv)

    def note(message: str) -> None:
        if not args.quiet:
            print(message)

    registry = dict(scenario_registry())
    registry["random-mesh"] = random_mesh_scenario
    if args.scenarios:
        names = [part.strip() for part in args.scenarios.split(",") if part.strip()]
        unknown = [name for name in names if name not in registry]
        if unknown:
            print(
                f"soak: unknown scenarios {unknown}; "
                f"registered: {sorted(registry)}",
                file=sys.stderr,
            )
            return 2
    else:
        names = sorted(registry)
    seeds = _parse_seeds(args.seeds)
    out_dir = Path(args.out)

    failing = 0
    if args.pytest:
        lane_status = _run_pytest_lanes(args.quiet)
        if lane_status != 0:
            failing += 1
            print(f"FAIL    pytest slow/chaos lanes (exit {lane_status})")

    for name in names:
        builder = registry[name]
        for seed in seeds:
            for deltas in (False, True):
                mode = "delta" if deltas else "snap"
                failures, _report = _soak_one(
                    name, builder, seed, deltas, args.sim_only
                )
                if failures:
                    failing += 1
                    fixture = _write_fixture(
                        out_dir, name, builder, seed, deltas, failures
                    )
                    print(
                        f"FAIL    {name} seed {seed} {mode}: "
                        f"{'; '.join(failures)} "
                        f"[repro: {fixture.relative_to(REPO)}]"
                    )
                else:
                    note(f"ok      {name} seed {seed} {mode}")

    note(
        f"soak: {failing} failing combination(s) across "
        f"{len(names)} scenario(s) x {len(seeds)} seed(s) x 2 modes"
    )
    return failing


if __name__ == "__main__":
    sys.exit(main())
