#!/usr/bin/env python
"""Self-check: every shipped fixture must pass the static analyzer.

Lints all example setting files, all example scenario files, and every
registered scenario (in both snapshot and delta-transfer mode), and
exits non-zero on any finding a fixture does not explicitly suppress
via ``lint_ignore``.  CI and the test suite run this as a smoke test so
a new rule (or a broken fixture) is caught the moment it lands.

Usage::

    PYTHONPATH=src python scripts/selfcheck.py [-q]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.analysis import analyze_scenario, analyze_scenario_text, analyze_text
from repro.net import scenario_registry


def run_selfcheck(quiet: bool = False) -> int:
    """Lint every shipped fixture; return the number of offending inputs."""

    def note(message: str) -> None:
        if not quiet:
            print(message)

    failures = 0

    setting_files = sorted((REPO / "examples" / "settings").glob("*.json"))
    scenario_files = sorted((REPO / "examples" / "scenarios").glob("*.json"))
    for path in setting_files:
        report = analyze_text(path.read_text())
        if report.clean:
            note(f"ok      setting  {path.relative_to(REPO)}")
        else:
            failures += 1
            for diagnostic in report:
                print(f"FAIL    {path.relative_to(REPO)}: {diagnostic.render()}")
    for path in scenario_files:
        report = analyze_scenario_text(path.read_text(), deltas=True)
        if report.clean:
            note(f"ok      scenario {path.relative_to(REPO)}")
        else:
            failures += 1
            for diagnostic in report:
                print(f"FAIL    {path.relative_to(REPO)}: {diagnostic.render()}")

    for name, builder in sorted(scenario_registry().items()):
        scenario = builder(0)
        for deltas in (False, True):
            report = analyze_scenario(scenario, deltas=deltas)
            mode = "delta" if deltas else "snap"
            if report.clean:
                note(f"ok      registry {name} [{mode}]")
            else:
                failures += 1
                for diagnostic in report:
                    print(f"FAIL    {name} [{mode}]: {diagnostic.render()}")

    checked = len(setting_files) + len(scenario_files) + 2 * len(scenario_registry())
    note(f"{checked} fixture(s) checked, {failures} with findings")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "-q", "--quiet", action="store_true", help="print failures only"
    )
    args = parser.parse_args(argv)
    return 1 if run_selfcheck(quiet=args.quiet) else 0


if __name__ == "__main__":
    sys.exit(main())
