#!/usr/bin/env python
"""Self-check: every shipped fixture must pass the static analyzer.

Lints all example setting files, all example scenario files, and every
registered scenario (in both snapshot and delta-transfer mode), and
exits non-zero on any finding a fixture does not explicitly suppress
via ``lint_ignore``.  An observability smoke then runs a tiny traced
simulation, stitches the trace, and checks the metric names it emitted
against the documented ``repro.obs.names`` table.  CI and the test
suite run this as a smoke test so a new rule (or a broken fixture, or
an undocumented metric) is caught the moment it lands.

Usage::

    PYTHONPATH=src python scripts/selfcheck.py [-q]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.analysis import analyze_scenario, analyze_scenario_text, analyze_text
from repro.net import scenario_registry


def run_selfcheck(quiet: bool = False) -> int:
    """Lint every shipped fixture; return the number of offending inputs."""

    def note(message: str) -> None:
        if not quiet:
            print(message)

    failures = 0

    setting_files = sorted((REPO / "examples" / "settings").glob("*.json"))
    scenario_files = sorted((REPO / "examples" / "scenarios").glob("*.json"))
    for path in setting_files:
        report = analyze_text(path.read_text())
        if report.clean:
            note(f"ok      setting  {path.relative_to(REPO)}")
        else:
            failures += 1
            for diagnostic in report:
                print(f"FAIL    {path.relative_to(REPO)}: {diagnostic.render()}")
    for path in scenario_files:
        report = analyze_scenario_text(path.read_text(), deltas=True)
        if report.clean:
            note(f"ok      scenario {path.relative_to(REPO)}")
        else:
            failures += 1
            for diagnostic in report:
                print(f"FAIL    {path.relative_to(REPO)}: {diagnostic.render()}")

    for name, builder in sorted(scenario_registry().items()):
        scenario = builder(0)
        for deltas in (False, True):
            report = analyze_scenario(scenario, deltas=deltas)
            mode = "delta" if deltas else "snap"
            if report.clean:
                note(f"ok      registry {name} [{mode}]")
            else:
                failures += 1
                for diagnostic in report:
                    print(f"FAIL    {name} [{mode}]: {diagnostic.render()}")

    failures += _obs_smoke(note)

    checked = len(setting_files) + len(scenario_files) + 2 * len(scenario_registry())
    note(f"{checked} fixture(s) checked, {failures} with findings")
    return failures


def _obs_smoke(note) -> int:
    """Distributed-observability smoke: trace, stitch, and metric-name audit.

    Runs one seeded simulator scenario under a tracer and a metrics
    registry, writes and stitches the trace, asserts the publish trace
    context linked spans across peers, and checks every ``net.*`` /
    ``netd.*`` / ``chaos.*`` metric the run emitted against the
    documented name table.
    """
    import tempfile
    from pathlib import Path as _Path

    from repro.net import NetworkSimulator, scenario_registry as _registry
    from repro.obs import (
        MetricsRegistry,
        Tracer,
        stitch,
        undocumented,
        write_trace_jsonl,
    )

    failures = 0
    tracer = Tracer()
    metrics = MetricsRegistry()
    scenario = _registry()["registry"](0)
    simulator = NetworkSimulator(scenario, tracer=tracer, metrics=metrics)
    simulator.run()

    with tempfile.TemporaryDirectory(prefix="repro-obs-smoke-") as tmp:
        path = _Path(tmp) / "sim.jsonl"
        write_trace_jsonl(tracer, path)
        timeline = stitch({"sim": path})
        linked = sum(
            1
            for trace_id, spans in timeline.traces().items()
            if trace_id is not None and len({span.lane for span in spans}) >= 2
        )
    if linked == 0:
        failures += 1
        print("FAIL    obs smoke: no trace links spans across >= 2 lanes")
    else:
        note(f"ok      obs smoke: {linked} cross-lane trace(s) stitched")

    snapshot = metrics.snapshot()
    emitted = sorted(
        set(snapshot.get("counters", {}))
        | set(snapshot.get("gauges", {}))
        | set(snapshot.get("histograms", {}))
    )
    unknown = undocumented(emitted)
    if unknown:
        failures += 1
        print(f"FAIL    obs smoke: undocumented metric name(s): {', '.join(unknown)}")
    else:
        note(f"ok      obs smoke: {len(emitted)} metric name(s) all documented")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "-q", "--quiet", action="store_true", help="print failures only"
    )
    args = parser.parse_args(argv)
    return 1 if run_selfcheck(quiet=args.quiet) else 0


if __name__ == "__main__":
    sys.exit(main())
