"""Resource governance and fault tolerance for the solver runtime.

The production-scale north star means the solvers run unattended, under
deadlines, against inputs that can trigger the exponential worst case
Theorem 3 promises.  This package is the layer that keeps that survivable:

* :class:`Budget` / :class:`SolveStatus` / :class:`CancellationToken`
  (:mod:`repro.runtime.budget`) — one budget object threaded through
  every solver: wall-clock deadline, node / chase-step / fact caps, and
  cooperative cancellation, with graceful degradation into partial
  results (or the legacy raise behavior under ``strict=True``);
* :class:`RetryPolicy` (:mod:`repro.runtime.retry`) — budget escalation
  and deterministic jittered backoff for sync rounds;
* :class:`SessionJournal` (:mod:`repro.runtime.journal`) — crash-safe
  write-ahead journaling so a :class:`~repro.sync.SyncSession` survives
  process death;
* :mod:`repro.runtime.faults` — the deterministic fault-injection
  harness (manual clocks, stall/cancel probes, faulty snapshot feeds)
  that proves the degradation paths actually work.
"""

from repro.runtime.budget import (
    DEFAULT_NODE_CAP,
    Budget,
    CancellationToken,
    SolveStatus,
)
from repro.runtime.journal import JournalState, SessionJournal
from repro.runtime.retry import RetryPolicy
from repro.runtime.faults import (
    FaultClock,
    FaultDecision,
    FaultSchedule,
    cancel_after,
    faulty_feed,
    stall_after,
)

__all__ = [
    "Budget",
    "CancellationToken",
    "SolveStatus",
    "DEFAULT_NODE_CAP",
    "RetryPolicy",
    "SessionJournal",
    "JournalState",
    "FaultClock",
    "FaultDecision",
    "FaultSchedule",
    "stall_after",
    "cancel_after",
    "faulty_feed",
]
