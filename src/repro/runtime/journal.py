"""Crash-safe journaling for long-lived sync sessions.

A :class:`~repro.sync.SyncSession` is the library's only long-lived
stateful object: its materialized imports accumulate across rounds, and
losing them to a process death forces a full re-import.  The journal
makes the session durable with the standard write-ahead pattern:

* an append-only JSONL file, one record per line;
* a ``header`` record pinning the format version, the setting, and the
  pinned facts;
* one ``commit`` record per successful round, carrying the round number
  and the full imported instance (sessions materialize small deltas, so
  full-state commits are cheap and make replay trivial — the last commit
  wins, no log folding needed);
* every append is flushed and fsynced before the in-memory state is
  considered durable.

Recovery tolerates exactly the failure it is designed for: a crash
mid-append leaves a truncated final line, which :meth:`SessionJournal.load`
silently drops (the round it described never committed).  Damage anywhere
else raises :class:`~repro.exceptions.JournalError`.

Instances and settings round-trip through :mod:`repro.io.serialization`,
so journals are portable, diffable artifacts like every other on-disk
format in this library.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.core.instance import Instance
from repro.core.setting import PDESetting
from repro.exceptions import JournalError
from repro.io.serialization import (
    instance_from_dict,
    instance_to_dict,
    setting_from_dict,
    setting_to_dict,
)

__all__ = [
    "SessionJournal",
    "JournalState",
    "append_jsonl",
    "read_jsonl_tolerant",
]

_VERSION = 1


def append_jsonl(path: str | Path, record: dict[str, Any]) -> None:
    """Append one JSONL record, flushed and fsynced before returning.

    The durability primitive shared by every append-only artifact in the
    library (sync journals, post-mortem flight-recorder files): once this
    returns, the record survives a crash; a crash *during* the append
    leaves at worst a torn final line, which :func:`read_jsonl_tolerant`
    drops on recovery.
    """
    line = json.dumps(record, sort_keys=True)
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(line + "\n")
        handle.flush()
        os.fsync(handle.fileno())


def read_jsonl_tolerant(
    path: str | Path,
    *,
    label: str,
    error: type[Exception] = JournalError,
) -> list[dict[str, Any]]:
    """Read a JSONL file, dropping a torn final line.

    The recovery primitive paired with :func:`append_jsonl`: a crash
    mid-append leaves an unterminated (hence unparsable) final line, which
    is silently dropped — that record never committed.  Damage anywhere
    else raises ``error`` with ``label`` naming the artifact (so callers
    keep their own exception types and message vocabulary).
    """
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise error(f"cannot read {label} {path}: {exc}")
    lines = text.split("\n")
    # A trailing newline leaves one empty chunk; a crash mid-append
    # leaves a non-empty, probably unparsable final chunk instead.
    tail_committed = lines and lines[-1] == ""
    if tail_committed:
        lines = lines[:-1]
    records: list[dict[str, Any]] = []
    for index, line in enumerate(lines):
        is_last = index == len(lines) - 1
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            if is_last and not tail_committed:
                break  # torn final write: the record never committed
            raise error(f"{label} {path} corrupt at line {index + 1}")
        records.append(record)
    return records


@dataclass
class JournalState:
    """The durable state recovered from a journal.

    Attributes:
        setting: the PDE setting recorded in the header.
        pinned: the target peer's pinned facts.
        imported: the imported facts as of the last committed round.
        rounds: the last committed round number (0 when no round ever
            committed).
        stamp: the ``(epoch, seq)`` snapshot stamp of the last committed
            round, or None when the session never synced a stamped
            snapshot (see :class:`repro.sync.Stamp`).
        source: the source snapshot the last committed stamped round
            ingested — the base a delta round patches — or None when the
            last commit predates delta support or was unstamped (the
            resumed session then reports a broken delta chain and the
            sender falls back to a full snapshot).
    """

    setting: PDESetting
    pinned: Instance
    imported: Instance
    rounds: int
    stamp: tuple[int, int] | None = None
    source: Instance | None = None


class SessionJournal:
    """An append-only, fsynced journal for one sync session."""

    def __init__(self, path: str | Path):
        self.path = Path(path)

    def exists(self) -> bool:
        """True when the journal file exists and is non-empty."""
        try:
            return self.path.stat().st_size > 0
        except OSError:
            return False

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------

    def _append(self, record: dict[str, Any]) -> None:
        append_jsonl(self.path, record)

    def ensure_header(self, setting: PDESetting, pinned: Instance) -> None:
        """Write the header record, unless a valid one is already present."""
        if self.exists():
            self._read_records()  # validates the existing header
            return
        self._append(
            {
                "type": "header",
                "version": _VERSION,
                "setting": setting_to_dict(setting),
                "pinned": instance_to_dict(pinned),
            }
        )

    def record_round(
        self,
        round_number: int,
        imported: Instance,
        added: Instance,
        retracted: Instance,
        stamp: tuple[int, int] | None = None,
        source: Instance | None = None,
    ) -> None:
        """Durably commit one successful round.

        Called *before* the in-memory session state is updated, so a crash
        between commit and update replays to the committed state.  When
        the round ingested a stamped snapshot, ``stamp`` rides in the same
        commit record, so the duplicate-rejection watermark survives a
        crash atomically with the state it protects; ``source`` (the
        ingested source snapshot) rides along too, keeping the delta-chain
        base durable with the watermark that anchors it.
        """
        record = {
            "type": "commit",
            "round": round_number,
            "imported": instance_to_dict(imported),
            "added": instance_to_dict(added),
            "retracted": instance_to_dict(retracted),
        }
        if stamp is not None:
            record["stamp"] = [int(stamp[0]), int(stamp[1])]
        if source is not None:
            record["source"] = instance_to_dict(source)
        self._append(record)

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------

    def _read_records(self) -> list[dict[str, Any]]:
        records = read_jsonl_tolerant(
            self.path, label="sync journal", error=JournalError
        )
        if not records or records[0].get("type") != "header":
            raise JournalError(f"sync journal {self.path} has no header record")
        if records[0].get("version") != _VERSION:
            raise JournalError(
                f"sync journal {self.path} has unsupported version "
                f"{records[0].get('version')!r}"
            )
        return records

    def load(self) -> JournalState:
        """Recover the durable session state (last committed round wins)."""
        records = self._read_records()
        header = records[0]
        try:
            setting = setting_from_dict(header["setting"])
        except Exception as error:  # noqa: BLE001 - wrap any decode failure
            raise JournalError(
                f"sync journal {self.path} header holds an unloadable setting: "
                f"{error}"
            )
        pinned = instance_from_dict(
            header.get("pinned", {}), schema=setting.target_schema
        )
        imported = Instance(schema=setting.target_schema)
        rounds = 0
        stamp: tuple[int, int] | None = None
        source: Instance | None = None
        for record in records[1:]:
            if record.get("type") != "commit":
                continue
            imported = instance_from_dict(
                record.get("imported", {}), schema=setting.target_schema
            )
            rounds = int(record.get("round", rounds))
            raw_stamp = record.get("stamp")
            if raw_stamp is not None:
                stamp = (int(raw_stamp[0]), int(raw_stamp[1]))
            raw_source = record.get("source")
            if raw_source is not None:
                # Sticky, like the stamp: an unstamped commit leaves the
                # retained delta base (and the watermark) in place.
                source = instance_from_dict(
                    raw_source, schema=setting.source_schema
                )
        return JournalState(
            setting=setting, pinned=pinned, imported=imported, rounds=rounds,
            stamp=stamp, source=source,
        )
