"""Deterministic fault injection for the resilient runtime.

Degradation paths are only as trustworthy as the tests that exercise
them, and the failures they guard against — stalls, crashes, flaky
delivery — are exactly the ones that are hard to produce on demand.
This module makes them reproducible:

* :class:`FaultClock` — a manual monotone clock.  A :class:`~repro.runtime.Budget`
  built on it has a fully deterministic deadline: tests advance the clock
  instead of sleeping.
* :func:`stall_after` — a budget probe simulating a chase (or search)
  stall: after N charges of a kind, the fault clock jumps forward, so the
  next deadline checkpoint fires.
* :func:`cancel_after` — a budget probe that trips a
  :class:`~repro.runtime.CancellationToken` mid-computation, simulating
  an operator abort or a peer hanging up.
* :class:`FaultSchedule` — per-delivery fault decisions (drop, duplicate,
  reorder, extra delay) for one link, either from explicit index sets or
  drawn from a seed, index by index, so decisions are independent of
  evaluation order;
* :func:`faulty_feed` — the degenerate single-link case: a snapshot
  delivery schedule with dropped, duplicated, and reordered deliveries by
  index, for sync-session convergence tests.

Everything here is pure and parameter-driven — randomness only ever
enters through an explicit seed hashed per delivery index, never through
global RNG state or real time — so a failing degradation test replays
byte-for-byte.  The multi-link peer network simulator
(:mod:`repro.net`) builds its per-link fault timelines out of
:class:`FaultSchedule` objects.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Mapping, Sequence, TypeVar

from repro.runtime.budget import Budget, CancellationToken

__all__ = [
    "FaultClock",
    "FaultDecision",
    "FaultSchedule",
    "stall_after",
    "cancel_after",
    "faulty_feed",
]

T = TypeVar("T")

#: Budget charge kinds mapped to the counter they increment.
_COUNTERS = {"node": "nodes", "chase-step": "chase_steps", "fact": "facts"}


class FaultClock:
    """A deterministic monotone clock, advanced manually.

    Pass as the ``clock`` of a :class:`~repro.runtime.Budget` to make its
    deadline independent of real time.
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    def __call__(self) -> float:
        return self._now

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("a monotone clock cannot go backwards")
        self._now += seconds


def _counter(kind: str) -> str:
    try:
        return _COUNTERS[kind]
    except KeyError:
        raise ValueError(
            f"unknown charge kind {kind!r}; expected one of {sorted(_COUNTERS)}"
        )


def stall_after(
    clock: FaultClock,
    kind: str = "chase-step",
    after: int = 0,
    advance: float = 3600.0,
) -> Callable[[str, Budget], None]:
    """A budget probe simulating a stalled step.

    Once ``after`` charges of ``kind`` have accumulated, every further
    charge of that kind advances ``clock`` by ``advance`` seconds — as if
    the step wedged — so a deadline on the same clock fires at the next
    checkpoint.
    """
    counter = _counter(kind)

    def probe(charged_kind: str, budget: Budget) -> None:
        if charged_kind == kind and getattr(budget, counter) > after:
            clock.advance(advance)

    return probe


def cancel_after(
    token: CancellationToken, kind: str = "node", after: int = 0
) -> Callable[[str, Budget], None]:
    """A budget probe cancelling ``token`` after ``after`` charges of ``kind``.

    Simulates a mid-search abort: the computation keeps running until its
    next cooperative checkpoint, then unwinds with status ``CANCELLED``.
    """
    counter = _counter(kind)

    def probe(charged_kind: str, budget: Budget) -> None:
        if charged_kind == kind and getattr(budget, counter) > after:
            token.cancel()

    return probe


@dataclass(frozen=True)
class FaultDecision:
    """The faults afflicting one delivery on one link.

    Attributes:
        drop: the delivery is lost entirely.
        duplicate: the delivery arrives twice (at-least-once redelivery).
        reorder: the delivery is held back past the link's next in-order
            delivery (overtaken by a later send).
        delay: extra latency, in (virtual) seconds, on top of the link's
            base latency.
    """

    drop: bool = False
    duplicate: bool = False
    reorder: bool = False
    delay: float = 0.0

    @property
    def faulty(self) -> bool:
        return self.drop or self.duplicate or self.reorder or self.delay > 0.0


#: The decision for a fault-free delivery, shared by every clean index.
_CLEAN = FaultDecision()


@dataclass(frozen=True)
class FaultSchedule:
    """Deterministic per-delivery fault decisions for one link.

    Two construction styles, freely combinable:

    * *explicit* — index sets (``drop`` / ``duplicate`` / ``reorder``) and
      a ``delay`` mapping name exactly which deliveries misbehave, for
      tests that script a precise failure;
    * *seeded* — :meth:`seeded` draws each index's decisions from a seed
      hashed **per index** (``Random(f"{seed}:{index}")``), so the
      schedule is replayable and the decision for delivery *i* does not
      depend on how many earlier deliveries were inspected.

    :meth:`decide` is the primitive (the peer network transport consults
    it per send); :meth:`apply` is the stream view (the degenerate
    single-link case used by :func:`faulty_feed`): dropped items vanish,
    duplicated items repeat back-to-back, and a reordered item is held
    back until after the link's next in-order delivery (items still held
    at stream end flush in hold order).
    """

    drop: frozenset[int] = frozenset()
    duplicate: frozenset[int] = frozenset()
    reorder: frozenset[int] = frozenset()
    delay: Mapping[int, float] = field(default_factory=dict)
    seed: int | None = None
    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    reorder_rate: float = 0.0
    delay_rate: float = 0.0
    max_delay: float = 0.0

    def __post_init__(self) -> None:
        for name in ("drop_rate", "duplicate_rate", "reorder_rate", "delay_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        # Normalize the index collections so equality and hashing behave.
        object.__setattr__(self, "drop", frozenset(self.drop))
        object.__setattr__(self, "duplicate", frozenset(self.duplicate))
        object.__setattr__(self, "reorder", frozenset(self.reorder))
        object.__setattr__(self, "delay", dict(self.delay))

    @classmethod
    def seeded(
        cls,
        seed: int,
        drop: float = 0.0,
        duplicate: float = 0.0,
        reorder: float = 0.0,
        delay: float = 0.0,
        max_delay: float = 0.0,
    ) -> "FaultSchedule":
        """A schedule drawing faults at the given rates from ``seed``."""
        return cls(
            seed=seed,
            drop_rate=drop,
            duplicate_rate=duplicate,
            reorder_rate=reorder,
            delay_rate=delay,
            max_delay=max_delay,
        )

    def decide(self, index: int) -> FaultDecision:
        """The faults afflicting delivery ``index`` on this link."""
        drop = index in self.drop
        duplicate = index in self.duplicate
        reorder = index in self.reorder
        extra = float(self.delay.get(index, 0.0))
        if self.seed is not None:
            rng = random.Random(f"{self.seed}:{index}")
            # Fixed draw order keeps decisions stable across rate changes
            # of *later* draws (adding a delay rate never flips drops).
            drop = drop or rng.random() < self.drop_rate
            duplicate = duplicate or rng.random() < self.duplicate_rate
            reorder = reorder or rng.random() < self.reorder_rate
            if rng.random() < self.delay_rate:
                extra += rng.random() * self.max_delay
        if not (drop or duplicate or reorder or extra):
            return _CLEAN
        return FaultDecision(drop=drop, duplicate=duplicate, reorder=reorder, delay=extra)

    def apply(self, items: Sequence[T] | Iterable[T]) -> Iterator[T]:
        """Deliver ``items`` under this schedule (single-link stream view)."""
        held: list[tuple[T, bool]] = []
        for index, item in enumerate(items):
            decision = self.decide(index)
            if decision.drop:
                continue
            if decision.reorder:
                held.append((item, decision.duplicate))
                continue
            yield item
            if decision.duplicate:
                yield item
            while held:
                overtaken, redeliver = held.pop(0)
                yield overtaken
                if redeliver:
                    yield overtaken
        for overtaken, redeliver in held:
            yield overtaken
            if redeliver:
                yield overtaken


def faulty_feed(
    snapshots: Sequence[T] | Iterable[T],
    drop: Iterable[int] = (),
    duplicate: Iterable[int] = (),
    reorder: Iterable[int] = (),
) -> Iterator[T]:
    """Deliver ``snapshots`` with deterministic faults by index.

    Indices in ``drop`` are never delivered (the peer missed a publish);
    indices in ``duplicate`` are delivered twice in a row (an at-least-once
    transport redelivered); indices in ``reorder`` are overtaken by the
    next delivered snapshot (a stale snapshot arriving late).  Sync
    sessions must converge under all three: a duplicated round is a
    no-op, a dropped round is absorbed by the next snapshot, and a
    stamped session rejects the overtaken snapshot as stale — each
    snapshot is authoritative.

    This is the degenerate single-link case of :class:`FaultSchedule`
    (``FaultSchedule(drop=..., duplicate=..., reorder=...).apply(...)``);
    the multi-link generalization drives :mod:`repro.net`.
    """
    schedule = FaultSchedule(
        drop=frozenset(drop), duplicate=frozenset(duplicate), reorder=frozenset(reorder)
    )
    return schedule.apply(snapshots)
