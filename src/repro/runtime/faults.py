"""Deterministic fault injection for the resilient runtime.

Degradation paths are only as trustworthy as the tests that exercise
them, and the failures they guard against — stalls, crashes, flaky
delivery — are exactly the ones that are hard to produce on demand.
This module makes them reproducible:

* :class:`FaultClock` — a manual monotone clock.  A :class:`~repro.runtime.Budget`
  built on it has a fully deterministic deadline: tests advance the clock
  instead of sleeping.
* :func:`stall_after` — a budget probe simulating a chase (or search)
  stall: after N charges of a kind, the fault clock jumps forward, so the
  next deadline checkpoint fires.
* :func:`cancel_after` — a budget probe that trips a
  :class:`~repro.runtime.CancellationToken` mid-computation, simulating
  an operator abort or a peer hanging up.
* :func:`faulty_feed` — a snapshot delivery schedule with dropped and
  duplicated deliveries by index, for sync-session convergence tests.

Everything here is pure and parameter-driven — no randomness, no real
time — so a failing degradation test replays byte-for-byte.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Sequence, TypeVar

from repro.runtime.budget import Budget, CancellationToken

__all__ = ["FaultClock", "stall_after", "cancel_after", "faulty_feed"]

T = TypeVar("T")

#: Budget charge kinds mapped to the counter they increment.
_COUNTERS = {"node": "nodes", "chase-step": "chase_steps", "fact": "facts"}


class FaultClock:
    """A deterministic monotone clock, advanced manually.

    Pass as the ``clock`` of a :class:`~repro.runtime.Budget` to make its
    deadline independent of real time.
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    def __call__(self) -> float:
        return self._now

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("a monotone clock cannot go backwards")
        self._now += seconds


def _counter(kind: str) -> str:
    try:
        return _COUNTERS[kind]
    except KeyError:
        raise ValueError(
            f"unknown charge kind {kind!r}; expected one of {sorted(_COUNTERS)}"
        )


def stall_after(
    clock: FaultClock,
    kind: str = "chase-step",
    after: int = 0,
    advance: float = 3600.0,
) -> Callable[[str, Budget], None]:
    """A budget probe simulating a stalled step.

    Once ``after`` charges of ``kind`` have accumulated, every further
    charge of that kind advances ``clock`` by ``advance`` seconds — as if
    the step wedged — so a deadline on the same clock fires at the next
    checkpoint.
    """
    counter = _counter(kind)

    def probe(charged_kind: str, budget: Budget) -> None:
        if charged_kind == kind and getattr(budget, counter) > after:
            clock.advance(advance)

    return probe


def cancel_after(
    token: CancellationToken, kind: str = "node", after: int = 0
) -> Callable[[str, Budget], None]:
    """A budget probe cancelling ``token`` after ``after`` charges of ``kind``.

    Simulates a mid-search abort: the computation keeps running until its
    next cooperative checkpoint, then unwinds with status ``CANCELLED``.
    """
    counter = _counter(kind)

    def probe(charged_kind: str, budget: Budget) -> None:
        if charged_kind == kind and getattr(budget, counter) > after:
            token.cancel()

    return probe


def faulty_feed(
    snapshots: Sequence[T] | Iterable[T],
    drop: Iterable[int] = (),
    duplicate: Iterable[int] = (),
) -> Iterator[T]:
    """Deliver ``snapshots`` with deterministic faults by index.

    Indices in ``drop`` are never delivered (the peer missed a publish);
    indices in ``duplicate`` are delivered twice in a row (an at-least-once
    transport redelivered).  Sync sessions must converge under both: a
    duplicated round is a no-op, and a dropped round is absorbed by the
    next snapshot, since each snapshot is authoritative.
    """
    dropped = set(drop)
    duplicated = set(duplicate)
    for index, snapshot in enumerate(snapshots):
        if index in dropped:
            continue
        yield snapshot
        if index in duplicated:
            yield snapshot
