"""Retry policies with budget escalation and jittered backoff.

Peer exchange is an ongoing interaction between autonomous peers, so a
round that runs out of budget is not a verdict — it is a transient
failure worth retrying with more resources.  :class:`RetryPolicy`
packages the standard loop: escalate the budget caps geometrically,
back off with deterministic jitter between attempts, give up after a
bounded number of tries.

Determinism matters for tests and reproducible experiment runs, so the
jitter is derived from a seeded PRNG keyed on the attempt index rather
than from global randomness, and the ``sleep`` callable is injectable.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass, field
from typing import Awaitable, Callable

from repro.runtime.budget import Budget

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """How to retry a governed operation that degraded or failed.

    Attributes:
        max_attempts: total attempts, including the first (1 = no retry).
        base_delay: backoff before the second attempt, in seconds.
        backoff: geometric factor applied to the delay per attempt.
        max_delay: ceiling on any single backoff delay.
        jitter: fraction of the delay added as deterministic jitter in
            ``[0, jitter * delay)``.
        escalation: factor applied to every budget *cap* per retry (the
            deadline and cancellation token are carried over unscaled).
        seed: PRNG seed for the jitter, for reproducible schedules.
        sleep: injectable sleep function (tests pass a recorder).
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    backoff: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.1
    escalation: float = 4.0
    seed: int = 0
    sleep: Callable[[float], None] = field(default=time.sleep, repr=False)

    def delay(self, attempt: int) -> float:
        """The backoff delay after failed attempt ``attempt`` (0-based)."""
        raw = min(self.base_delay * (self.backoff ** attempt), self.max_delay)
        if self.jitter <= 0:
            return raw
        rng = random.Random(self.seed * 1_000_003 + attempt)
        return raw + rng.random() * self.jitter * raw

    def escalate(self, budget: Budget | None, attempt: int) -> Budget | None:
        """A fresh budget for attempt ``attempt`` (0-based).

        Attempt 0 gets a reset copy of ``budget``; each later attempt
        multiplies the caps by another ``escalation`` factor.  Returns
        None when there is no budget to govern with.
        """
        if budget is None:
            return None
        return budget.scaled(self.escalation ** attempt)

    def pause(self, attempt: int) -> None:
        """Sleep the jittered backoff after failed attempt ``attempt``."""
        self.sleep(self.delay(attempt))

    async def pause_async(
        self,
        attempt: int,
        sleep: Callable[[float], "Awaitable[object]"] | None = None,
    ) -> None:
        """Awaitable :meth:`pause`: back off without blocking an event loop.

        Shares :meth:`delay`'s deterministic schedule exactly — for a
        given seed the sync and async variants pause for identical
        durations attempt by attempt — but yields to the loop instead of
        hard-blocking it (``time.sleep`` inside a coroutine would stall
        every connection a :mod:`repro.netd` daemon is serving).  The
        ``sleep`` coroutine function is injectable for tests; it defaults
        to :func:`asyncio.sleep`.
        """
        if sleep is None:
            sleep = asyncio.sleep
        await sleep(self.delay(attempt))
