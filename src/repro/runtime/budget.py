"""Unified resource governance for the solver runtime.

Every NP surface in this library (the branching chase, the valuation
search, solution enumeration, and the chase itself) can consume unbounded
time and memory on adversarial inputs — Theorem 3 makes the exponential
worst case unavoidable.  Historically each surface enforced its own ad-hoc
cap (a ``node_budget`` int here, a ``max_steps`` int there) and *raised*
on exhaustion, so callers could not distinguish "no solution exists" (a
theorem, per Lemma 2) from "the solver gave up".

:class:`Budget` replaces those scattered caps with one object that is
threaded through every solver:

* a wall-clock **deadline** (checked cooperatively, every
  ``check_interval`` charges, against an injectable ``clock``);
* **node / chase-step / materialized-fact caps**;
* a cooperative :class:`CancellationToken`;
* a ``strict`` flag selecting between the legacy raise-on-exhaustion
  behavior and graceful degradation into a partial
  :class:`~repro.solver.results.SolveResult` with a
  :class:`SolveStatus` describing what ran out.

Exhaustion always surfaces internally as
:class:`~repro.exceptions.BudgetExceeded`; with ``strict=False`` the
solver entry points catch it and return a structured result, with
``strict=True`` (the behavior of the legacy ``node_budget`` parameters)
it escapes to the caller as a :class:`~repro.exceptions.SolverError`
subclass.

The ``probe`` hook — called with ``(kind, budget)`` on every charge — is
the integration point for the deterministic fault-injection harness in
:mod:`repro.runtime.faults`.
"""

from __future__ import annotations

import time
from enum import Enum
from typing import Callable

from repro.exceptions import BudgetExceeded

__all__ = [
    "SolveStatus",
    "CancellationToken",
    "Budget",
    "DEFAULT_NODE_CAP",
]

#: Default ceiling on search nodes for the NP solvers (the single home of
#: the value previously triplicated across the solver modules).
DEFAULT_NODE_CAP = 500_000


class SolveStatus(str, Enum):
    """How a governed computation ended.

    ``DECIDED`` means the result is a theorem (existence decided, answers
    exact); every other status marks a *partial* result: the computation
    was stopped early and the accompanying data reflects only the work
    done so far.
    """

    DECIDED = "decided"
    BUDGET_EXHAUSTED = "budget-exhausted"
    DEADLINE = "deadline"
    CANCELLED = "cancelled"

    def __str__(self) -> str:  # stable rendering across Python versions
        return self.value


class CancellationToken:
    """A cooperative cancellation flag shared between threads.

    The producer calls :meth:`cancel`; governed computations observe the
    flag at their next budget checkpoint and unwind with status
    :attr:`SolveStatus.CANCELLED`.  Setting a bool is atomic in CPython,
    so no lock is needed.
    """

    __slots__ = ("_cancelled",)

    def __init__(self) -> None:
        self._cancelled = False

    def cancel(self) -> None:
        """Request cancellation; observed at the next checkpoint."""
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def __repr__(self) -> str:
        return f"CancellationToken(cancelled={self._cancelled})"


class Budget:
    """A unified resource budget for one governed computation.

    Args:
        wall_time_s: relative deadline in seconds from now (on ``clock``).
        deadline: absolute deadline on ``clock``; overrides ``wall_time_s``.
        node_cap: ceiling on search nodes (branching chase, valuation
            search, per-block embedding tests).
        chase_step_cap: ceiling on applied chase steps.
        fact_cap: ceiling on materialized facts charged by the chase.
        token: cooperative cancellation token.
        strict: when True, exhaustion raises
            :class:`~repro.exceptions.BudgetExceeded` out of the solver
            (legacy behavior); when False, solver entry points degrade
            into a partial result carrying the status.
        clock: monotone time source; injectable for deterministic tests.
        check_interval: charges between deadline/cancellation checks; the
            caps themselves are checked on every charge.
        probe: optional hook ``probe(kind, budget)`` invoked on every
            charge with ``kind`` in ``{"node", "chase-step", "fact"}`` —
            the fault-injection seam (see :mod:`repro.runtime.faults`).

    A budget accumulates its counters across the computation it governs;
    use :meth:`scaled` for a fresh (optionally escalated) budget when
    retrying.
    """

    __slots__ = (
        "deadline",
        "node_cap",
        "chase_step_cap",
        "fact_cap",
        "token",
        "strict",
        "clock",
        "check_interval",
        "probe",
        "nodes",
        "chase_steps",
        "facts",
        "_tick",
        "_watched",
    )

    def __init__(
        self,
        *,
        wall_time_s: float | None = None,
        deadline: float | None = None,
        node_cap: int | None = None,
        chase_step_cap: int | None = None,
        fact_cap: int | None = None,
        token: CancellationToken | None = None,
        strict: bool = False,
        clock: Callable[[], float] = time.monotonic,
        check_interval: int = 64,
        probe: Callable[[str, "Budget"], None] | None = None,
    ) -> None:
        self.clock = clock
        if deadline is None and wall_time_s is not None:
            deadline = clock() + wall_time_s
        self.deadline = deadline
        self.node_cap = node_cap
        self.chase_step_cap = chase_step_cap
        self.fact_cap = fact_cap
        self.token = token
        self.strict = strict
        self.check_interval = max(1, check_interval)
        self.probe = probe
        self.nodes = 0
        self.chase_steps = 0
        self.facts = 0
        self._tick = 0
        # Deadline/cancellation checks are skipped entirely when neither
        # is configured, keeping the uncapped hot path to one comparison.
        self._watched = deadline is not None or token is not None

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_node_budget(
        cls, node_budget: int | None, default: int | None = None
    ) -> "Budget | None":
        """Adapt a legacy ``node_budget`` parameter to a strict budget.

        The ``node_budget`` ints raised on exhaustion, so the adapted
        budget is strict.  Returns None when neither ``node_budget`` nor
        ``default`` caps anything, preserving the historical "unlimited"
        default of the valuation search.
        """
        cap = node_budget if node_budget is not None else default
        if cap is None:
            return None
        return cls(node_cap=cap, strict=True)

    # Historical name of :meth:`from_node_budget`, kept for callers that
    # predate the rename.
    from_legacy = from_node_budget

    def scaled(self, factor: float) -> "Budget":
        """A fresh budget with counters reset and caps scaled by ``factor``.

        The deadline, token, clock, strictness, and probe are shared with
        this budget (a deadline is a fact about the world, not a cap to
        escalate).  Used by :class:`repro.runtime.RetryPolicy` to escalate
        budgets across attempts.
        """

        def scale(cap: int | None) -> int | None:
            return None if cap is None else max(1, int(cap * factor))

        return Budget(
            deadline=self.deadline,
            node_cap=scale(self.node_cap),
            chase_step_cap=scale(self.chase_step_cap),
            fact_cap=scale(self.fact_cap),
            token=self.token,
            strict=self.strict,
            clock=self.clock,
            check_interval=self.check_interval,
            probe=self.probe,
        )

    # ------------------------------------------------------------------
    # charging
    # ------------------------------------------------------------------

    def charge_node(self) -> None:
        """Charge one search node; raise when the node cap is exhausted."""
        self.nodes += 1
        if self.probe is not None:
            self.probe("node", self)
        if self.node_cap is not None and self.nodes > self.node_cap:
            raise BudgetExceeded(
                f"node budget exhausted after {self.node_cap} search nodes",
                SolveStatus.BUDGET_EXHAUSTED,
            )
        self._maybe_checkpoint()

    def charge_chase_step(self) -> None:
        """Charge one applied chase step."""
        self.chase_steps += 1
        if self.probe is not None:
            self.probe("chase-step", self)
        if self.chase_step_cap is not None and self.chase_steps > self.chase_step_cap:
            raise BudgetExceeded(
                f"chase-step budget exhausted after {self.chase_step_cap} steps",
                SolveStatus.BUDGET_EXHAUSTED,
            )
        self._maybe_checkpoint()

    def charge_facts(self, count: int = 1) -> None:
        """Charge ``count`` newly materialized facts."""
        self.facts += count
        if self.probe is not None:
            self.probe("fact", self)
        if self.fact_cap is not None and self.facts > self.fact_cap:
            raise BudgetExceeded(
                f"materialized-fact budget exhausted after {self.fact_cap} facts",
                SolveStatus.BUDGET_EXHAUSTED,
            )
        self._maybe_checkpoint()

    def _maybe_checkpoint(self) -> None:
        if not self._watched:
            return
        self._tick += 1
        if self._tick >= self.check_interval:
            self._tick = 0
            self.checkpoint()

    def checkpoint(self) -> None:
        """Check the deadline and cancellation token immediately.

        Called automatically every ``check_interval`` charges; long
        uncharged stretches (e.g. a large homomorphism scan) may call it
        directly to stay responsive.
        """
        token = self.token
        if token is not None and token.cancelled:
            raise BudgetExceeded("computation cancelled", SolveStatus.CANCELLED)
        if self.deadline is not None and self.clock() > self.deadline:
            raise BudgetExceeded(
                "wall-clock deadline exceeded", SolveStatus.DEADLINE
            )

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------

    def snapshot(self) -> dict[str, int]:
        """The accumulated charge counters, for merging into result stats."""
        return {
            "budget_nodes": self.nodes,
            "budget_chase_steps": self.chase_steps,
            "budget_facts": self.facts,
        }

    def __repr__(self) -> str:
        caps = ", ".join(
            f"{name}={value}"
            for name, value in (
                ("nodes", self.node_cap),
                ("chase_steps", self.chase_step_cap),
                ("facts", self.fact_cap),
            )
            if value is not None
        )
        parts = [caps or "uncapped"]
        if self.deadline is not None:
            parts.append("deadline")
        if self.token is not None:
            parts.append("token")
        if self.strict:
            parts.append("strict")
        return f"Budget({', '.join(parts)})"
