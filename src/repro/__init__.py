"""repro — peer data exchange.

A from-scratch reproduction of *"Peer Data Exchange"* (Fuxman, Kolaitis,
Miller, Tan; PODS 2005): the PDE framework, the chase machinery it builds
on, the NP/coNP upper-bound procedures, the tractable class ``C_tract``
with the polynomial ``ExistsSolution`` algorithm of Figure 3, the hardness
reductions, and the PDMS correspondence.

Quick start::

    from repro import PDESetting, Instance, parse_instance, solve

    setting = PDESetting.from_text(
        source={"E": 2},
        target={"H": 2},
        st="E(x, z), E(z, y) -> H(x, y)",
        ts="H(x, y) -> E(x, y)",
    )
    source = parse_instance("E(a, b); E(b, c); E(a, c)")
    result = solve(setting, source, Instance())
    assert result.exists

See ``DESIGN.md`` for the architecture and ``EXPERIMENTS.md`` for the
paper-versus-measured record.
"""

from repro.core import (
    Atom,
    Block,
    ChaseResult,
    ChaseStep,
    ConjunctiveQuery,
    Constant,
    Dependency,
    DisjunctiveTGD,
    EGD,
    Fact,
    Instance,
    MultiPDESetting,
    Null,
    NullFactory,
    PDESetting,
    RelationSymbol,
    Schema,
    TGD,
    UnionOfConjunctiveQueries,
    Variable,
    chase,
    decompose_into_blocks,
    find_homomorphism,
    find_instance_homomorphism,
    has_homomorphism,
    has_instance_homomorphism,
    is_weakly_acyclic,
    parse_dependencies,
    parse_dependency,
    parse_instance,
    parse_query,
    satisfies,
    solution_aware_chase,
)
from repro.exceptions import (
    BudgetExceeded,
    ChaseFailure,
    ChaseNonTermination,
    DependencyError,
    InvariantViolation,
    JournalError,
    ParseError,
    ReproError,
    SchemaError,
    SolverError,
    TraceError,
)
from repro.obs import (
    MetricsRegistry,
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
)
from repro.runtime import (
    Budget,
    CancellationToken,
    RetryPolicy,
    SessionJournal,
    SolveStatus,
)
from repro.solver import (
    CertainAnswerResult,
    minimize_solution,
    solve_multi,
    Explanation,
    explain,
    naive_certain_answers,
    SolveResult,
    certain_answers,
    enumerate_solutions,
    find_solution,
    is_certain,
    solve,
)
from repro.sync import Stamp, SyncOutcome, SyncSession
from repro.tractability import CtractReport, classify, is_in_ctract

__version__ = "1.0.0"

__all__ = [
    "Atom",
    "Block",
    "ChaseResult",
    "ChaseStep",
    "ConjunctiveQuery",
    "Constant",
    "Dependency",
    "DisjunctiveTGD",
    "EGD",
    "Fact",
    "Instance",
    "MultiPDESetting",
    "Null",
    "NullFactory",
    "PDESetting",
    "RelationSymbol",
    "Schema",
    "TGD",
    "UnionOfConjunctiveQueries",
    "Variable",
    "chase",
    "decompose_into_blocks",
    "find_homomorphism",
    "find_instance_homomorphism",
    "has_homomorphism",
    "has_instance_homomorphism",
    "is_weakly_acyclic",
    "parse_dependencies",
    "parse_dependency",
    "parse_instance",
    "parse_query",
    "satisfies",
    "solution_aware_chase",
    "BudgetExceeded",
    "ChaseFailure",
    "ChaseNonTermination",
    "DependencyError",
    "InvariantViolation",
    "JournalError",
    "ParseError",
    "ReproError",
    "SchemaError",
    "SolverError",
    "TraceError",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "Budget",
    "CancellationToken",
    "RetryPolicy",
    "SessionJournal",
    "SolveStatus",
    "CertainAnswerResult",
    "SolveResult",
    "certain_answers",
    "enumerate_solutions",
    "find_solution",
    "is_certain",
    "solve",
    "Stamp",
    "SyncOutcome",
    "SyncSession",
    "CtractReport",
    "classify",
    "is_in_ctract",
    "__version__",
]
