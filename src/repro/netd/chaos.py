"""A socket-level fault proxy: the simulator's chaos, on real sockets.

:class:`ChaosProxy` sits between a :class:`~repro.netd.PublisherClient`
and a :class:`~repro.netd.SyncDaemon` and afflicts the *data* frames
flowing upstream exactly the way :class:`~repro.net.SimTransport`
afflicts simulated sends: per frame it consults a seeded
:class:`~repro.runtime.FaultSchedule` — the same object, with the same
``Random(f"{seed}:{index}")`` per-index draws — and **drops**,
**delays**, **reorders** (a held-back frame is overtaken by later ones),
or **duplicates** the frame.  A ``sever`` index set additionally kills
the TCP connection outright when that frame crosses, and
:meth:`partition` / :meth:`heal` model network splits (new connections
refused, existing ones severed).

Determinism contract: only ``SNAPSHOT`` / ``DELTA`` frames consume
schedule indices, and the per-link frame counter persists across
reconnects — so publish *i* on a link meets the same
:class:`~repro.runtime.FaultDecision` the simulator's send *i* meets,
regardless of how many handshakes, heartbeats, or reconnects happen in
between.  That is what lets the chaos harness re-run a simulator
scenario against real sockets and compare final states byte for byte.

Control frames (``HELLO``/``HEARTBEAT``/``BYE``…) pass through
unafflicted and uncounted: faulting the handshake tests asyncio's
reconnect plumbing, not the sync protocol.  The downstream direction
(ACKs, heartbeats) is a transparent byte pipe — the simulator has no
ACK channel, so chaos there would make the runs incomparable (lost ACKs
are still exercised: a dropped upstream frame never gets ACKed and the
client times out).

Virtual fault-schedule seconds are scaled to wall-clock by
``time_scale`` so a scenario scripted in simulator time runs in
milliseconds of real time.
"""

from __future__ import annotations

import asyncio
from typing import Any, Iterable

from repro.netd.daemon import open_stream
from repro.netd.frames import (
    DEFAULT_MAX_FRAME,
    FrameDecoder,
    FrameKind,
    encode_frame,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.runtime.faults import FaultSchedule

__all__ = ["ChaosProxy"]

#: Frame kinds the fault schedule applies to (and counts indices for).
_DATA_KINDS = (FrameKind.SNAPSHOT, FrameKind.DELTA)


class ChaosProxy:
    """A seeded fault-injecting TCP/unix proxy for one publisher link.

    Args:
        upstream: the daemon's address — ``(host, port)`` or unix path.
        schedule: the link's :class:`~repro.runtime.FaultSchedule`; None
            forwards everything cleanly (a pure latency proxy).
        listen: the proxy's own listen address (TCP port 0 by default).
        latency: base one-way latency for afflicted-direction data
            frames, in virtual seconds (mirrors ``SimTransport.latency``).
        reorder_delay: extra virtual seconds a reordered frame is held;
            defaults to ``4 * latency`` like the simulator.
        duplicate_lag: how far behind the original a duplicate trails;
            defaults to ``latency / 2`` like the simulator.
        time_scale: wall-clock seconds per virtual second.
        sever: data-frame indices at which the connection is killed
            (the frame itself is lost with it).
        tracer / metrics: optional ``chaos.*`` instrumentation.
    """

    def __init__(
        self,
        upstream: Any,
        schedule: FaultSchedule | None = None,
        listen: Any = ("127.0.0.1", 0),
        latency: float = 0.05,
        reorder_delay: float | None = None,
        duplicate_lag: float | None = None,
        time_scale: float = 0.02,
        sever: Iterable[int] = (),
        max_frame: int = DEFAULT_MAX_FRAME,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.upstream = upstream
        self.schedule = schedule
        self.listen = listen
        self.latency = latency
        self.reorder_delay = (
            reorder_delay if reorder_delay is not None else 4 * latency
        )
        self.duplicate_lag = (
            duplicate_lag if duplicate_lag is not None else latency / 2
        )
        self.time_scale = time_scale
        self.sever = frozenset(sever)
        self.max_frame = max_frame
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics
        self.partitioned = False
        # Persists across reconnects: publish i always meets decision i.
        self._data_index = 0
        self._server: asyncio.AbstractServer | None = None
        self._links: set["_ProxyLink"] = set()
        self._tasks: set[asyncio.Task] = set()
        self.stats: dict[str, int] = {
            "connections": 0, "refused": 0, "forwarded": 0, "dropped": 0,
            "delayed": 0, "reordered": 0, "duplicated": 0, "severed": 0,
        }

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        if isinstance(self.listen, str):
            self._server = await asyncio.start_unix_server(
                self._accept, path=self.listen
            )
        else:
            host, port = self.listen
            self._server = await asyncio.start_server(
                self._accept, host=host, port=port
            )

    @property
    def address(self):
        """Where clients should connect (the proxy's bound address)."""
        if isinstance(self.listen, str):
            return self.listen
        assert self._server is not None, "proxy not started"
        return self._server.sockets[0].getsockname()[:2]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
        for task in list(self._tasks):
            task.cancel()
        for link in list(self._links):
            link.abort()

    # ------------------------------------------------------------------
    # partitions
    # ------------------------------------------------------------------

    def partition(self) -> None:
        """Split the link: refuse new connections, sever existing ones."""
        self.partitioned = True
        self.tracer.event("chaos.partition", upstream=str(self.upstream))
        for link in list(self._links):
            link.abort()
            self.stats["severed"] += 1

    def heal(self) -> None:
        self.partitioned = False
        self.tracer.event("chaos.heal", upstream=str(self.upstream))

    # ------------------------------------------------------------------
    # the proxy machinery
    # ------------------------------------------------------------------

    def _count(self, counter: str) -> None:
        self.stats[counter] += 1
        if self.metrics is not None:
            self.metrics.counter(f"chaos.{counter}").inc()

    async def _accept(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        if self.partitioned:
            self._count("refused")
            writer.close()
            return
        try:
            up_reader, up_writer = await open_stream(self.upstream)
        except (ConnectionError, OSError):
            self._count("refused")
            writer.close()
            return
        self._count("connections")
        link = _ProxyLink(self, reader, writer, up_reader, up_writer)
        self._links.add(link)
        try:
            await link.run()
        finally:
            self._links.discard(link)

    def _spawn(self, coroutine) -> None:
        task = asyncio.create_task(coroutine)
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)


class _ProxyLink:
    """One proxied connection: chaotic upstream pump, clean downstream."""

    def __init__(
        self,
        proxy: ChaosProxy,
        client_reader: asyncio.StreamReader,
        client_writer: asyncio.StreamWriter,
        daemon_reader: asyncio.StreamReader,
        daemon_writer: asyncio.StreamWriter,
    ) -> None:
        self.proxy = proxy
        self.client_reader = client_reader
        self.client_writer = client_writer
        self.daemon_reader = daemon_reader
        self.daemon_writer = daemon_writer
        self.decoder = FrameDecoder(max_frame=proxy.max_frame)
        # Serializes upstream writes; a delayed frame releases the lock
        # while sleeping, so later frames overtake it (reordering).
        self.write_lock = asyncio.Lock()
        self.dead = False

    async def run(self) -> None:
        upstream = asyncio.create_task(self._pump_upstream())
        downstream = asyncio.create_task(self._pump_downstream())
        try:
            done, pending = await asyncio.wait(
                {upstream, downstream}, return_when=asyncio.FIRST_COMPLETED
            )
            for task in pending:
                task.cancel()
        finally:
            self.abort()

    def abort(self) -> None:
        """Kill both directions abruptly (sever / partition / teardown)."""
        if self.dead:
            return
        self.dead = True
        for writer in (self.client_writer, self.daemon_writer):
            transport = writer.transport
            try:
                if transport is not None:
                    transport.abort()
                else:
                    writer.close()
            except (ConnectionError, OSError):
                pass

    async def _pump_downstream(self) -> None:
        """daemon → client: a transparent byte pipe (no chaos on ACKs)."""
        try:
            while not self.dead:
                data = await self.daemon_reader.read(64 * 1024)
                if not data:
                    return
                self.client_writer.write(data)
                await self.client_writer.drain()
        except (ConnectionError, OSError, asyncio.CancelledError):
            return

    async def _pump_upstream(self) -> None:
        """client → daemon: frame-aware, fault-schedule-driven."""
        proxy = self.proxy
        try:
            while not self.dead:
                data = await self.client_reader.read(64 * 1024)
                if not data:
                    return
                for frame in self.decoder.feed(data):
                    encoded = encode_frame(
                        frame.kind, frame.payload, proxy.max_frame
                    )
                    if frame.kind not in _DATA_KINDS:
                        await self._write(encoded)
                        continue
                    if not await self._afflict(encoded, frame):
                        return  # severed
        except (ConnectionError, OSError, asyncio.CancelledError):
            return

    @staticmethod
    def _trace_of(frame) -> str | None:
        """The wire trace id riding the frame's ``ctx`` key, if any."""
        payload = frame.payload
        if not isinstance(payload, dict):
            return None
        ctx = payload.get("ctx")
        if not isinstance(ctx, dict):
            return None
        trace = ctx.get("t")
        return trace if isinstance(trace, str) else None

    async def _afflict(self, encoded: bytes, frame) -> bool:
        """Apply the schedule to one data frame; False when severed.

        Every fault emits a self-describing ``chaos.*`` trace event
        carrying the schedule index, the frame description, and — when
        the frame carries a wire trace context — the publish's trace id,
        so a stitched timeline shows *which* publish each fault hit.
        """
        proxy = self.proxy
        index = proxy._data_index
        proxy._data_index += 1
        trace = self._trace_of(frame)
        if index in proxy.sever:
            proxy._count("severed")
            proxy.tracer.event(
                "chaos.sever", index=index, frame=frame.describe(), trace=trace
            )
            self.abort()
            return False
        decision = (
            proxy.schedule.decide(index)
            if proxy.schedule is not None
            else None
        )
        if decision is not None and decision.drop:
            proxy._count("dropped")
            proxy.tracer.event(
                "chaos.drop", index=index, frame=frame.describe(), trace=trace
            )
            return True
        hold = proxy.latency
        if decision is not None:
            if decision.delay > 0:
                hold += decision.delay
                proxy._count("delayed")
                proxy.tracer.event(
                    "chaos.delay", index=index, frame=frame.describe(),
                    trace=trace, delay=decision.delay,
                )
            if decision.reorder:
                hold += proxy.reorder_delay
                proxy._count("reordered")
                proxy.tracer.event(
                    "chaos.reorder", index=index, frame=frame.describe(),
                    trace=trace, hold=proxy.reorder_delay,
                )
        await self._deliver(encoded, hold * proxy.time_scale)
        proxy._count("forwarded")
        if decision is not None and decision.duplicate:
            proxy._count("duplicated")
            proxy.tracer.event(
                "chaos.duplicate", index=index, frame=frame.describe(),
                trace=trace,
            )
            proxy._spawn(
                self._deliver_later(
                    encoded, (hold + proxy.duplicate_lag) * proxy.time_scale
                )
            )
        return True

    async def _deliver(self, encoded: bytes, hold_s: float) -> None:
        """Forward after ``hold_s``; long holds detach so later frames pass."""
        if hold_s > self.proxy.latency * self.proxy.time_scale:
            self.proxy._spawn(self._deliver_later(encoded, hold_s))
            return
        if hold_s > 0:
            await asyncio.sleep(hold_s)
        await self._write(encoded)

    async def _deliver_later(self, encoded: bytes, hold_s: float) -> None:
        try:
            await asyncio.sleep(hold_s)
            await self._write(encoded)
        except (ConnectionError, OSError, asyncio.CancelledError):
            return

    async def _write(self, encoded: bytes) -> None:
        if self.dead:
            return
        async with self.write_lock:
            if self.dead:
                return
            self.daemon_writer.write(encoded)
            await self.daemon_writer.drain()
