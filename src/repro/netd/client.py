"""The publisher side of :mod:`repro.netd`: one client per daemon link.

A :class:`PublisherClient` streams stamped snapshots to one subscriber
peer hosted by a :class:`~repro.netd.SyncDaemon`, surviving every
failure the chaos proxy (or a real network) can produce:

* **reconnect with jittered backoff** — connection attempts reuse
  :meth:`~repro.runtime.RetryPolicy.pause_async`, the awaitable twin of
  the simulator's deterministic :meth:`~repro.runtime.RetryPolicy.pause`
  schedule, so a seeded run reconnects on a replayable timetable;
* **bounded pending queue, backpressure then degrade** — :meth:`offer`
  enqueues ``(stamp, snapshot)`` pairs into a deque that never exceeds
  ``max_queue``: a full queue first *waits* for the sender (propagating
  backpressure to the producer), then evicts the oldest pending pair —
  every snapshot is authoritative, so the evicted state is strictly
  superseded by what remains (degrade-to-newest-snapshot, counted as
  ``netd.queue_evicted`` and bounded by the ``netd.queue_depth`` gauge);
* **delta transfer with snapshot fallback** — with ``deltas=True`` the
  sender ships ``(added, withdrawn)`` against the last *acknowledged*
  snapshot whenever that beats the full payload; a ``chain-broken`` ACK
  (the daemon's watermark moved without us) falls back to the full
  snapshot for that stamp, exactly like the simulator's publisher;
* **ACK discipline** — each in-flight message awaits its stamped ACK
  under a timeout; late or duplicate ACKs from earlier (chaos-duplicated)
  deliveries are discarded by stamp mismatch, and a timeout simply moves
  on — anti-entropy, not retransmission, repairs a lost snapshot.

The client is the network twin of the simulator's publish path in
:meth:`repro.net.NetworkSimulator.run`; the chaos harness runs both and
asserts they converge to the same states.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from typing import Any

from repro.core.instance import Instance
from repro.exceptions import ProtocolError, SimulationError
from repro.net.transport import Delta, Message
from repro.netd.daemon import open_stream
from repro.netd.frames import (
    DEFAULT_MAX_FRAME,
    Frame,
    FrameDecoder,
    FrameKind,
    PROTOCOL_VERSION,
    encode_frame,
    encode_message,
)
from repro.obs.context import TraceContext
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.runtime.retry import RetryPolicy
from repro.sync.session import Stamp

__all__ = ["PublisherClient", "fetch_stats"]

#: ACK outcomes that advance the delta base: the daemon either applied
#: the snapshot or already held it (stale) — either way its state now
#: reflects this stamp, so the next delta may patch from here.
_BASE_ADVANCING = {"applied", "stale"}


class PublisherClient:
    """Publish stamped snapshots to one daemon-hosted peer.

    Args:
        address: daemon address — ``(host, port)`` or a unix-socket path.
        peer: the hosted subscriber peer this link feeds.
        sender: the publisher's own name (stamped into every message).
        deltas: ship incremental payloads when they beat the snapshot.
        retry: reconnect backoff; defaults to a seeded
            :class:`~repro.runtime.RetryPolicy` (deterministic jitter).
        max_queue: pending-publish bound (backpressure, then degrade).
        backpressure_wait: seconds a full :meth:`offer` waits for the
            sender before degrading.
        ack_timeout: seconds to wait for a message's ACK before moving on.
        max_frame: frame-size ceiling, mirrored from the daemon.
        tracer / metrics: optional :mod:`repro.obs` instrumentation.
    """

    def __init__(
        self,
        address: Any,
        peer: str,
        sender: str = "origin",
        deltas: bool = False,
        retry: RetryPolicy | None = None,
        max_queue: int = 32,
        backpressure_wait: float = 0.05,
        ack_timeout: float = 2.0,
        heartbeat_interval: float = 1.0,
        max_frame: int = DEFAULT_MAX_FRAME,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if max_queue < 1:
            raise ValueError(f"max_queue must be positive, got {max_queue}")
        self.address = address
        self.peer = peer
        self.sender = sender
        self.deltas = deltas
        self.retry = retry if retry is not None else RetryPolicy(max_attempts=4)
        self.max_queue = max_queue
        self.backpressure_wait = backpressure_wait
        self.ack_timeout = ack_timeout
        self.heartbeat_interval = heartbeat_interval
        self.max_frame = max_frame
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics
        self._pending: deque[tuple[Stamp, Instance]] = deque()
        self._pending_ready = asyncio.Event()
        self._pending_space = asyncio.Event()
        self._pending_space.set()
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._receiver: asyncio.Task | None = None
        self._sender_task: asyncio.Task | None = None
        self._heartbeat_task: asyncio.Task | None = None
        self._acks: asyncio.Queue = asyncio.Queue()
        self._decoder = FrameDecoder(max_frame=max_frame)
        # The last (stamp, snapshot) the daemon acknowledged holding —
        # the base the next delta patches from.  Evictions and lost
        # messages are harmless precisely because this only advances on
        # an ACK: the daemon's watermark and our base move together.
        self._acked: tuple[Stamp, Instance] | None = None
        self.outcomes: dict[Stamp, str] = {}
        self.closed = False
        self.stats: dict[str, int] = {
            "published": 0, "sent_snapshots": 0, "sent_deltas": 0,
            "delta_fallbacks": 0, "ack_timeouts": 0, "ack_unmatched": 0,
            "reconnects": 0, "queue_evicted": 0, "unreachable": 0,
            "facts_sent": 0,
        }
        self.queue_peak = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Connect (with backoff) and start the sender machinery."""
        await self._connect()
        self._sender_task = asyncio.create_task(
            self._send_loop(), name=f"netd-client-{self.peer}"
        )
        self._heartbeat_task = asyncio.create_task(
            self._heartbeat_loop(), name=f"netd-hb-{self.peer}"
        )

    async def close(self, bye: bool = True) -> None:
        """Stop publishing and close the connection (``BYE`` if orderly)."""
        self.closed = True
        self._pending_ready.set()
        if self._heartbeat_task is not None:
            self._heartbeat_task.cancel()
        if self._sender_task is not None:
            self._sender_task.cancel()
            try:
                await self._sender_task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
        if bye and self._writer is not None:
            try:
                self._writer.write(encode_frame(FrameKind.BYE, {}))
                await self._writer.drain()
            except (ConnectionError, OSError):
                pass
        self._teardown()

    def _teardown(self) -> None:
        if self._receiver is not None:
            self._receiver.cancel()
            self._receiver = None
        if self._writer is not None:
            try:
                self._writer.close()
            except (ConnectionError, OSError):
                pass
            self._writer = None
        self._reader = None

    @property
    def connected(self) -> bool:
        return self._writer is not None

    # ------------------------------------------------------------------
    # connection management
    # ------------------------------------------------------------------

    async def _connect(self) -> None:
        """Dial, handshake, and adopt the daemon's watermark.

        The whole exchange — dial, ``HELLO``, ``WELCOME`` — sits inside
        the retry loop: a partitioned proxy may *accept* the TCP
        connection and then kill it, so only a completed handshake
        counts as connected.  Raises
        :class:`~repro.exceptions.SimulationError` after the retry
        budget is spent (the caller decides whether that peer is
        unreachable-for-now or fatal).
        """
        attempt = 0
        while True:
            try:
                welcome = await self._handshake()
                break
            except (
                ConnectionError,
                OSError,
                asyncio.TimeoutError,
                ProtocolError,
            ) as error:
                self._teardown()
                attempt += 1
                if attempt >= self.retry.max_attempts:
                    raise SimulationError(
                        f"cannot reach daemon at {self.address!r} after "
                        f"{attempt} attempts: {error}"
                    )
                self.tracer.event(
                    "netd.reconnect_wait", peer=self.peer, attempt=attempt
                )
                await self.retry.pause_async(attempt)
        watermark = welcome.payload.get("watermark")
        if watermark is not None and self._acked is not None:
            if list(watermark) != [self._acked[0].epoch, self._acked[0].seq]:
                # The daemon is somewhere our delta base is not: a delta
                # would be refused, so re-baseline to full snapshots.
                self._acked = None
        elif watermark is None:
            self._acked = None
        self.tracer.event(
            "netd.connected", peer=self.peer, watermark=watermark
        )

    async def _handshake(self) -> Frame:
        """One dial + HELLO/WELCOME exchange; raises on any failure."""
        reader, writer = await open_stream(self.address)
        self._reader, self._writer = reader, writer
        self._decoder = FrameDecoder(max_frame=self.max_frame)
        self._drain_acks()
        self._receiver = asyncio.create_task(
            self._receive_loop(reader), name=f"netd-recv-{self.peer}"
        )
        writer.write(
            encode_frame(
                FrameKind.HELLO,
                {
                    "peer": self.peer,
                    "sender": self.sender,
                    "protocol": PROTOCOL_VERSION,
                    "deltas": self.deltas,
                },
            )
        )
        await writer.drain()
        return await self._await_frame(FrameKind.WELCOME)

    async def _reconnect(self) -> None:
        self._teardown()
        self.stats["reconnects"] += 1
        if self.metrics is not None:
            self.metrics.counter("netd.reconnects").inc()
        await self._connect()

    async def _receive_loop(self, reader: asyncio.StreamReader) -> None:
        try:
            while True:
                data = await reader.read(64 * 1024)
                if not data:
                    return
                for frame in self._decoder.feed(data):
                    if frame.kind is FrameKind.HEARTBEAT:
                        continue
                    await self._acks.put(frame)
        except (ConnectionError, asyncio.IncompleteReadError, OSError):
            return
        except ProtocolError as error:
            self.tracer.event("netd.protocol_error", error=str(error))
            return

    def _drain_acks(self) -> None:
        while not self._acks.empty():
            self._acks.get_nowait()

    async def _await_frame(self, kind: FrameKind, timeout: float | None = None) -> Frame:
        deadline = timeout if timeout is not None else self.ack_timeout
        while True:
            frame = await asyncio.wait_for(self._acks.get(), timeout=deadline)
            if frame.kind is kind:
                return frame
            if frame.kind is FrameKind.ERROR:
                raise ProtocolError(
                    f"daemon error: {frame.payload.get('error', '?')}"
                )
            if frame.kind is FrameKind.BYE:
                raise ConnectionError("daemon said BYE")
            self.stats["ack_unmatched"] += 1

    # ------------------------------------------------------------------
    # publishing
    # ------------------------------------------------------------------

    async def offer(self, stamp: Stamp | tuple[int, int], snapshot: Instance) -> None:
        """Queue one stamped snapshot under the bounded-depth contract.

        Returns as soon as the pair is queued; :meth:`drain` (or
        :meth:`publish`) observes the outcome.  A full queue waits up to
        ``backpressure_wait`` for the sender, then evicts its *oldest*
        pending pair — the newest snapshot supersedes it, so nothing is
        lost that the stamp watermark would have kept anyway.
        """
        stamp = Stamp(*stamp)
        # Re-offering a stamp (replay after a crash, redelivery tests)
        # must wait for the *new* outcome, not return the cached one.
        self.outcomes.pop(stamp, None)
        if len(self._pending) >= self.max_queue:
            self._pending_space.clear()
            try:
                await asyncio.wait_for(
                    self._pending_space.wait(), timeout=self.backpressure_wait
                )
            except asyncio.TimeoutError:
                pass
        if len(self._pending) >= self.max_queue:
            evicted_stamp, _ = self._pending.popleft()
            self.stats["queue_evicted"] += 1
            self.outcomes[evicted_stamp] = "superseded"
            if self.metrics is not None:
                self.metrics.counter("netd.queue_evicted").inc()
            self.tracer.event(
                "netd.queue_evicted",
                peer=self.peer,
                stamp=str(evicted_stamp),
                depth=self.max_queue,
            )
        self._pending.append((stamp, snapshot.copy()))
        self._note_depth()
        self._pending_ready.set()

    def _note_depth(self) -> None:
        depth = len(self._pending)
        self.queue_peak = max(self.queue_peak, depth)
        if self.metrics is not None:
            self.metrics.gauge("netd.queue_depth").set(depth)
            peak = self.metrics.gauge("netd.queue_peak")
            peak.set(max(self.queue_peak, peak.value or 0))

    async def publish(
        self, stamp: Stamp | tuple[int, int], snapshot: Instance
    ) -> str:
        """Offer one snapshot and wait for its outcome (blocking publish)."""
        stamp = Stamp(*stamp)
        await self.offer(stamp, snapshot)
        while stamp not in self.outcomes:
            if self.closed or (
                self._sender_task is not None and self._sender_task.done()
            ):
                return self.outcomes.get(stamp, "closed")
            await asyncio.sleep(0.01)
        return self.outcomes[stamp]

    async def drain(self, timeout: float = 30.0) -> bool:
        """Wait until every offered snapshot has an outcome."""

        async def empty() -> None:
            while self._pending or self._in_flight:
                await asyncio.sleep(0.01)

        try:
            await asyncio.wait_for(empty(), timeout=timeout)
            return True
        except asyncio.TimeoutError:
            return False

    def rebase(self) -> None:
        """Forget the delta base (e.g. after an epoch bump re-keys stamps)."""
        self._acked = None

    _in_flight = False

    # ------------------------------------------------------------------
    # the sender
    # ------------------------------------------------------------------

    async def _send_loop(self) -> None:
        while not self.closed:
            while not self._pending:
                if self.closed:
                    return
                self._pending_ready.clear()
                await self._pending_ready.wait()
            stamp, snapshot = self._pending[0]
            self._in_flight = True
            try:
                outcome = await self._send_one(stamp, snapshot)
            except asyncio.CancelledError:
                raise
            except SimulationError as error:
                # Retry budget spent dialing: the daemon is unreachable
                # right now (severed, partitioned).  Record and move on —
                # anti-entropy re-offers the latest state after healing.
                outcome = "unreachable"
                self.stats["unreachable"] += 1
                self.tracer.event(
                    "netd.unreachable", peer=self.peer, error=str(error)
                )
            except Exception as error:  # noqa: BLE001 - the loop must live
                outcome = "error"
                self.tracer.event(
                    "netd.send_error", peer=self.peer, error=str(error)
                )
            finally:
                self._in_flight = False
            self.outcomes[stamp] = outcome
            self.stats["published"] += 1
            if self._pending and self._pending[0][0] == stamp:
                self._pending.popleft()
            self._note_depth()
            self._pending_space.set()

    def _encode_payload(
        self,
        stamp: Stamp,
        snapshot: Instance,
        context: TraceContext | None = None,
    ) -> tuple[bytes, bool]:
        """Pick delta vs snapshot; returns (frame bytes, is_delta)."""
        if self.deltas and self._acked is not None:
            base_stamp, base_snapshot = self._acked
            if base_stamp.epoch == stamp.epoch and base_stamp < stamp:
                added = snapshot.difference(base_snapshot)
                withdrawn = base_snapshot.difference(snapshot)
                if len(added) + len(withdrawn) < len(snapshot):
                    message = Message(
                        self.sender, self.peer, stamp,
                        Delta(base=base_stamp, added=added, withdrawn=withdrawn),
                        context=context,
                    )
                    return encode_message(message, self.max_frame), True
        message = Message(self.sender, self.peer, stamp, snapshot, context=context)
        return encode_message(message, self.max_frame), False

    async def _send_one(self, stamp: Stamp, snapshot: Instance) -> str:
        """Deliver one stamped snapshot inside a ``netd.publish`` span.

        The span's trace context rides the wire (the frame's ``ctx``
        key), so the daemon's ``netd.ingest`` span on the other side of
        the socket stitches as this publish's child hop.
        """
        context = TraceContext.for_publish(self.sender, stamp, at=time.time())
        if self.tracer.enabled:
            with self.tracer.span(
                "netd.publish", lane=self.sender, peer=self.peer,
                stamp=str(stamp), facts=len(snapshot),
            ) as span:
                context.annotate(span)
                outcome = await self._deliver(stamp, snapshot, context)
                span.set("outcome", outcome)
            return outcome
        return await self._deliver(stamp, snapshot, context)

    async def _deliver(
        self, stamp: Stamp, snapshot: Instance, context: TraceContext
    ) -> str:
        """Send, await ACK, handle fallback — until a verdict lands."""
        sent_full = False
        while True:
            if not self.connected:
                await self._connect()
            data, is_delta = self._encode_payload(stamp, snapshot, context)
            if sent_full and is_delta:  # fallback pass must not re-delta
                message = Message(
                    self.sender, self.peer, stamp, snapshot, context=context
                )
                data, is_delta = encode_message(message, self.max_frame), False
            if self.tracer.enabled:
                with self.tracer.span(
                    "netd.frame-encode", peer=self.peer,
                    stamp=str(stamp), delta=is_delta, bytes=len(data),
                ):
                    pass
            try:
                assert self._writer is not None
                self._writer.write(data)
                await self._writer.drain()
            except (ConnectionError, OSError):
                await self._reconnect()
                continue
            self.stats["sent_deltas" if is_delta else "sent_snapshots"] += 1
            self.stats["facts_sent"] += self._payload_facts(
                stamp, snapshot, is_delta
            )
            if self.metrics is not None:
                self.metrics.counter(
                    "netd.sent_deltas" if is_delta else "netd.sent_snapshots"
                ).inc()
            try:
                verdict = await self._await_ack(stamp)
            except asyncio.TimeoutError:
                # The message (or its ACK) is lost in the chaos.  Do not
                # retransmit here: the stamp watermark makes a blind
                # retransmit safe but anti-entropy already repairs lost
                # tails, and retransmitting on every delay doubles load.
                self.stats["ack_timeouts"] += 1
                if self.metrics is not None:
                    self.metrics.counter("netd.ack_timeouts").inc()
                self.tracer.event(
                    "netd.ack_timeout", peer=self.peer, stamp=str(stamp)
                )
                return "lost"
            except (ConnectionError, ProtocolError, OSError):
                await self._reconnect()
                continue
            if verdict == "chain-broken":
                # The daemon cannot patch from our base — fall back to
                # the full snapshot for this same stamp (idempotent).
                self.stats["delta_fallbacks"] += 1
                if self.metrics is not None:
                    self.metrics.counter("netd.delta_fallbacks").inc()
                self.tracer.event(
                    "netd.delta_fallback", peer=self.peer, stamp=str(stamp)
                )
                sent_full = True
                self._acked = None
                continue
            if verdict in _BASE_ADVANCING:
                self._acked = (stamp, snapshot)
            return verdict

    def _payload_facts(
        self, stamp: Stamp, snapshot: Instance, is_delta: bool
    ) -> int:
        if not is_delta or self._acked is None:
            return len(snapshot)
        _, base_snapshot = self._acked
        return len(snapshot.difference(base_snapshot)) + len(
            base_snapshot.difference(snapshot)
        )

    async def _heartbeat_loop(self) -> None:
        """Keep the connection warm so the daemon's idle timeout holds off.

        Heartbeat failures are deliberately swallowed: liveness is the
        sender's problem (it reconnects on its next publish); the
        heartbeat's only job is to refresh the daemon's idle clock.
        """
        while not self.closed:
            await asyncio.sleep(self.heartbeat_interval)
            if self.closed or self._writer is None:
                continue
            try:
                self._writer.write(encode_frame(FrameKind.HEARTBEAT, {}))
                await self._writer.drain()
            except (ConnectionError, OSError):
                continue

    async def _await_ack(self, stamp: Stamp) -> str:
        """Wait for the ACK stamped ``stamp``; discard mismatched ones."""
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.ack_timeout
        while True:
            remaining = deadline - loop.time()
            if remaining <= 0:
                raise asyncio.TimeoutError
            frame = await self._await_frame(FrameKind.ACK, timeout=remaining)
            acked = frame.payload.get("stamp")
            if acked == [stamp.epoch, stamp.seq]:
                return str(frame.payload.get("outcome", "?"))
            # A duplicate delivery's second ACK, or an earlier timed-out
            # message's ACK finally arriving: note it and keep waiting.
            self.stats["ack_unmatched"] += 1
            if self.metrics is not None:
                self.metrics.counter("netd.ack_unmatched").inc()


async def fetch_stats(address: Any, timeout: float = 5.0) -> dict[str, Any]:
    """One-shot ops probe: dial ``address``, send ``STATS``, return the reply.

    The exchange needs no ``HELLO`` — a ``STATS`` frame is answerable
    before (or without) a peer handshake, so fleet tooling can poll a
    daemon it does not publish to.  Returns the daemon's
    :meth:`~repro.netd.SyncDaemon.stats_payload` dict.  Raises
    :class:`ConnectionError` / :class:`OSError` when the daemon is
    unreachable, :class:`asyncio.TimeoutError` when it stays silent, and
    :class:`~repro.exceptions.ProtocolError` on an ``ERROR`` reply.
    """
    reader, writer = await open_stream(address)
    decoder = FrameDecoder()
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout
    try:
        writer.write(encode_frame(FrameKind.STATS, {}))
        await writer.drain()
        while True:
            remaining = deadline - loop.time()
            if remaining <= 0:
                raise asyncio.TimeoutError(
                    f"daemon at {address!r} did not answer STATS in {timeout}s"
                )
            data = await asyncio.wait_for(
                reader.read(64 * 1024), timeout=remaining
            )
            if not data:
                raise ConnectionError(
                    f"daemon at {address!r} closed before answering STATS"
                )
            for frame in decoder.feed(data):
                if frame.kind is FrameKind.STATS:
                    return dict(frame.payload)
                if frame.kind is FrameKind.ERROR:
                    raise ProtocolError(
                        f"daemon error: {frame.payload.get('error', '?')}"
                    )
                if frame.kind is FrameKind.BYE:
                    raise ConnectionError("daemon said BYE")
                # HEARTBEAT (or anything else): not ours, keep waiting.
    finally:
        try:
            writer.write(encode_frame(FrameKind.BYE, {}))
            await writer.drain()
        except (ConnectionError, OSError):
            pass
        try:
            writer.close()
        except (ConnectionError, OSError):
            pass
