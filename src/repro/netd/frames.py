"""The :mod:`repro.netd` wire codec: length-prefixed, versioned frames.

Everything the daemon and its clients exchange travels as *frames* on a
byte stream (TCP or a unix socket).  A frame is an 8-byte header plus a
UTF-8 JSON object payload::

    offset  size  field
    0       4     payload length N, big-endian unsigned  (header excluded)
    4       1     protocol version  (currently 1)
    5       1     frame kind        (see the FrameKind table)
    6       2     reserved, must be zero

    8       N     payload: one UTF-8-encoded JSON object

Data frames (``SNAPSHOT`` / ``DELTA``) carry the same
:class:`~repro.net.Message` / :class:`~repro.sync.Stamp` /
:class:`~repro.net.Delta` values the in-memory simulator exchanges,
serialized through :mod:`repro.io.serialization` — the wire format is
the journal/scenario interchange format framed for a socket, so every
payload is diffable with the rest of the library's on-disk artifacts.

The codec is deliberately paranoid: a frame longer than ``max_frame``, a
wrong version, an unknown kind, nonzero reserved bytes, or a payload
that is not a JSON object raises
:class:`~repro.exceptions.ProtocolError` — and the connection is then
*closed*, never resynchronized (guessing at a framing boundary is how a
codec corrupts a journal).  Because ingestion is stamped and journaled,
closing is always safe: the peer reconnects and the watermark makes any
replay a no-op.

:class:`FrameDecoder` is a push parser: feed it whatever ``recv``
returned and it yields every complete frame, buffering partial ones —
usable identically from asyncio protocols, blocking sockets, and tests.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass
from enum import IntEnum
from typing import Any

from repro.core.instance import Instance
from repro.core.schema import Schema
from repro.exceptions import ProtocolError
from repro.io.serialization import instance_from_dict, instance_to_dict
from repro.net.transport import Delta, Message
from repro.obs.context import TraceContext
from repro.sync.session import Stamp

__all__ = [
    "DEFAULT_MAX_FRAME",
    "Frame",
    "FrameDecoder",
    "FrameKind",
    "PROTOCOL_VERSION",
    "decode_message",
    "encode_frame",
    "encode_message",
]

#: Wire protocol version; bump on any incompatible frame/payload change.
PROTOCOL_VERSION = 1

#: Default ceiling on one frame's payload, in bytes.  Generous for the
#: library's fact sizes (a 10k-fact genomics snapshot is ~1 MiB) while
#: bounding what one misbehaving peer can make the daemon buffer.
DEFAULT_MAX_FRAME = 16 * 1024 * 1024

_HEADER = struct.Struct("!IBBH")


class FrameKind(IntEnum):
    """Every frame type the protocol defines."""

    HELLO = 1      #: client → daemon: identify peer + role, open session
    WELCOME = 2    #: daemon → client: handshake reply with the watermark
    SNAPSHOT = 3   #: full stamped source snapshot (state transfer)
    DELTA = 4      #: incremental ``(added, withdrawn)`` keyed on a base
    ACK = 5        #: daemon → client: per-message ingestion outcome
    HEARTBEAT = 6  #: either direction: liveness while otherwise idle
    BYE = 7        #: orderly close (drain complete / client done)
    ERROR = 8      #: daemon → client: protocol failure before closing
    STATS = 9      #: request (client) / reply (daemon): ops snapshot


@dataclass(frozen=True)
class Frame:
    """One decoded frame: its kind and its JSON-object payload."""

    kind: FrameKind
    payload: dict[str, Any]

    def describe(self) -> str:
        return f"{self.kind.name.lower()}({', '.join(sorted(self.payload))})"


def encode_frame(
    kind: FrameKind | int,
    payload: dict[str, Any],
    max_frame: int = DEFAULT_MAX_FRAME,
) -> bytes:
    """Encode one frame; raises :class:`ProtocolError` when oversized."""
    kind = FrameKind(kind)
    body = json.dumps(payload, sort_keys=True, separators=(",", ":")).encode(
        "utf-8"
    )
    if len(body) > max_frame:
        raise ProtocolError(
            f"{kind.name} frame payload of {len(body)} bytes exceeds the "
            f"{max_frame}-byte frame ceiling"
        )
    return _HEADER.pack(len(body), PROTOCOL_VERSION, int(kind), 0) + body


class FrameDecoder:
    """An incremental frame parser over an untrusted byte stream.

    Feed it arbitrary chunks; it returns every frame completed so far and
    keeps the partial tail buffered.  All structural damage raises
    :class:`~repro.exceptions.ProtocolError` — the caller's contract is
    to close the connection, not to resynchronize.
    """

    def __init__(self, max_frame: int = DEFAULT_MAX_FRAME) -> None:
        self.max_frame = max_frame
        self._buffer = bytearray()
        self.frames_decoded = 0
        self.bytes_decoded = 0

    def pending(self) -> int:
        """Bytes buffered awaiting the rest of a frame."""
        return len(self._buffer)

    def feed(self, data: bytes) -> list[Frame]:
        """Consume ``data``, returning every frame it completed."""
        self._buffer.extend(data)
        frames: list[Frame] = []
        while True:
            frame = self._next()
            if frame is None:
                return frames
            frames.append(frame)

    def _next(self) -> Frame | None:
        if len(self._buffer) < _HEADER.size:
            return None
        length, version, kind, reserved = _HEADER.unpack_from(self._buffer)
        if version != PROTOCOL_VERSION:
            raise ProtocolError(
                f"unsupported protocol version {version} "
                f"(this codec speaks {PROTOCOL_VERSION})"
            )
        if reserved != 0:
            raise ProtocolError(
                f"reserved header bytes must be zero, got {reserved:#06x}"
            )
        if length > self.max_frame:
            # Refuse *before* buffering the body: the guard exists so a
            # hostile or corrupt length prefix cannot balloon memory.
            raise ProtocolError(
                f"frame announces {length} payload bytes, exceeding the "
                f"{self.max_frame}-byte frame ceiling"
            )
        try:
            kind = FrameKind(kind)
        except ValueError:
            raise ProtocolError(f"unknown frame kind {kind}")
        if len(self._buffer) < _HEADER.size + length:
            return None
        body = bytes(self._buffer[_HEADER.size:_HEADER.size + length])
        del self._buffer[:_HEADER.size + length]
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ProtocolError(f"undecodable {kind.name} frame payload: {error}")
        if not isinstance(payload, dict):
            raise ProtocolError(
                f"{kind.name} frame payload must be a JSON object, "
                f"got {type(payload).__name__}"
            )
        self.frames_decoded += 1
        self.bytes_decoded += _HEADER.size + length
        return Frame(kind, payload)


# ----------------------------------------------------------------------
# message-level codec (SNAPSHOT / DELTA frames)
# ----------------------------------------------------------------------


def _stamp_to_json(stamp: Stamp) -> list[int]:
    return [int(stamp.epoch), int(stamp.seq)]


def _stamp_from_json(encoded: Any, field: str) -> Stamp:
    if (
        not isinstance(encoded, (list, tuple))
        or len(encoded) != 2
        or not all(isinstance(part, int) for part in encoded)
    ):
        raise ProtocolError(f"malformed {field} stamp {encoded!r}")
    return Stamp(encoded[0], encoded[1])


def encode_message(message: Message, max_frame: int = DEFAULT_MAX_FRAME) -> bytes:
    """Frame one :class:`~repro.net.Message` for the wire.

    Full snapshots become ``SNAPSHOT`` frames, :class:`~repro.net.Delta`
    payloads become ``DELTA`` frames; either way the recipient's
    :func:`decode_message` reconstructs an equal message.
    """
    common = {
        "sender": message.sender,
        "recipient": message.recipient,
        "stamp": _stamp_to_json(message.stamp),
    }
    if message.context is not None:
        # Trace correlation rides alongside the stamp.  Optional and
        # lenient on decode: the protocol version does not change.
        common["ctx"] = message.context.to_wire()
    if isinstance(message.payload, Delta):
        payload = dict(
            common,
            base=_stamp_to_json(message.payload.base),
            added=instance_to_dict(message.payload.added),
            withdrawn=instance_to_dict(message.payload.withdrawn),
        )
        return encode_frame(FrameKind.DELTA, payload, max_frame)
    payload = dict(common, instance=instance_to_dict(message.payload))
    return encode_frame(FrameKind.SNAPSHOT, payload, max_frame)


def decode_message(frame: Frame, schema: Schema | None = None) -> Message:
    """Rebuild the :class:`~repro.net.Message` a data frame carries.

    ``schema`` (the setting's source schema, typically) validates the
    decoded facts; decoding errors surface as
    :class:`~repro.exceptions.ProtocolError` like every other malformed
    frame.
    """
    if frame.kind not in (FrameKind.SNAPSHOT, FrameKind.DELTA):
        raise ProtocolError(
            f"cannot decode a message from a {frame.kind.name} frame"
        )
    payload = frame.payload
    try:
        sender = payload["sender"]
        recipient = payload["recipient"]
    except KeyError as missing:
        raise ProtocolError(
            f"{frame.kind.name} frame is missing the {missing.args[0]!r} field"
        )
    if not isinstance(sender, str) or not isinstance(recipient, str):
        raise ProtocolError(f"{frame.kind.name} frame names must be strings")
    stamp = _stamp_from_json(payload.get("stamp"), "stamp")

    def decode_instance(field: str) -> Instance:
        encoded = payload.get(field)
        if not isinstance(encoded, dict):
            raise ProtocolError(
                f"{frame.kind.name} frame field {field!r} must be an "
                f"instance object, got {type(encoded).__name__}"
            )
        try:
            return instance_from_dict(encoded, schema=schema)
        except Exception as error:  # noqa: BLE001 - wrap any decode failure
            raise ProtocolError(
                f"{frame.kind.name} frame field {field!r} holds an "
                f"undecodable instance: {error}"
            )

    if frame.kind is FrameKind.DELTA:
        body: Instance | Delta = Delta(
            base=_stamp_from_json(payload.get("base"), "base"),
            added=decode_instance("added"),
            withdrawn=decode_instance("withdrawn"),
        )
    else:
        body = decode_instance("instance")
    # Trace context is metadata, never a reason to refuse data:
    # from_wire returns None on anything malformed.
    context = TraceContext.from_wire(payload.get("ctx"))
    return Message(sender, recipient, stamp, body, context=context)
