"""The crash-tolerant asyncio sync daemon.

:class:`SyncDaemon` is the serving half of :mod:`repro.netd`: one
asyncio process hosting one journal-backed
:class:`~repro.sync.SyncSession` per subscriber peer, multiplexing any
number of publisher connections over TCP or unix sockets.  It is the
:class:`~repro.net.PeerNode` contract made real: stamped idempotent
ingestion, per-peer write-ahead journals, and graceful degradation under
per-peer :class:`~repro.runtime.Budget`\\ s — which together make a
``kill -9`` at *any* instant recoverable by restarting the daemon on the
same journal directory (un-acked rounds are simply redelivered and
replay as stale or apply once, never twice).

Robustness machinery, per connection:

* **framed protocol** — every byte is parsed by the
  :class:`~repro.netd.FrameDecoder`; structural damage raises
  :class:`~repro.exceptions.ProtocolError`, is answered with an
  ``ERROR`` frame, and closes the connection (*close, don't corrupt*);
* **heartbeats + idle timeout** — the daemon emits ``HEARTBEAT`` frames
  while idle and tears down connections that go silent for
  ``idle_timeout`` seconds, so half-open TCP connections cannot pin
  resources forever;
* **bounded send queues** — outbound frames pass through a
  :class:`SendQueue` whose depth never exceeds its configuration:
  overflow waits briefly for the consumer (backpressure) and then
  evicts the oldest evictable frame (degrade — the client treats a
  missing ACK as a timeout and the journal keeps the truth);
* **per-peer serial workers** — each peer's rounds run on a dedicated
  worker (solves in a thread via :func:`asyncio.to_thread`, so one slow
  chase never stalls another peer's ingestion or the heartbeats), with a
  bounded ingest queue whose fullness propagates TCP backpressure by
  pausing the reader.

Lifecycle: ``STARTING → SERVING → DRAINING → STOPPED``
(:class:`DaemonState`).  :meth:`SyncDaemon.stop` performs the graceful
drain — stop accepting, finish queued rounds under ``drain_deadline``,
journal-commit, ``BYE``, exit — while :meth:`SyncDaemon.abort` is the
in-process equivalent of ``kill -9`` for crash tests: everything is
dropped on the floor except what the journals already hold.

Observability: ``netd.*`` spans and instruments throughout — per-round
``netd.ingest`` spans, frame encode/decode spans, a ``netd.queue_depth``
gauge (with ``netd.queue_peak`` proving the bound held), reconnect and
drain counters.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from enum import Enum
from pathlib import Path
from typing import Any, Iterable, Mapping

from repro.core.instance import Instance
from repro.core.setting import PDESetting
from repro.exceptions import ProtocolError, SimulationError
from repro.net.scoring import PeerScorer
from repro.net.transport import Message
from repro.netd.frames import (
    DEFAULT_MAX_FRAME,
    Frame,
    FrameDecoder,
    FrameKind,
    PROTOCOL_VERSION,
    decode_message,
    encode_frame,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.recorder import FlightRecorder
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.runtime.budget import Budget
from repro.runtime.journal import SessionJournal
from repro.runtime.retry import RetryPolicy
from repro.sync.session import Stamp, SyncSession, watermark_lag

__all__ = ["Address", "DaemonState", "SendQueue", "SyncDaemon", "open_stream"]

#: A listen/connect address: ``(host, port)`` for TCP, a filesystem path
#: (string or :class:`~pathlib.Path`) for a unix socket.
Address = tuple[str, int] | str | Path


class DaemonState(str, Enum):
    """The daemon lifecycle (documented in ``docs/api.md``)."""

    STARTING = "starting"
    SERVING = "serving"
    DRAINING = "draining"
    STOPPED = "stopped"


async def open_stream(address) -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
    """Open a client stream to a TCP ``(host, port)`` or unix-path address."""
    if isinstance(address, (str, Path)):
        return await asyncio.open_unix_connection(str(address))
    host, port = address
    return await asyncio.open_connection(host, port)


class SendQueue:
    """A bounded outbound frame queue: backpressure, then degrade.

    ``put`` appends an encoded frame.  When the queue is full it first
    waits up to ``wait`` seconds for the writer to free a slot (genuine
    backpressure on the producer); if the queue is *still* full it
    evicts the oldest **evictable** entry — one enqueued with
    ``evictable=True``, which senders use for frames whose loss the
    protocol already tolerates (heartbeats, ACKs the client treats as
    timeouts, superseded snapshots) — and counts a
    ``netd.queue_evicted``.  Frames enqueued with ``evictable=False``
    (handshakes, ``BYE``) are never evicted; if nothing is evictable the
    *new* frame is the one dropped, so the depth bound holds
    unconditionally (asserted by the ``netd.queue_peak`` gauge).
    """

    def __init__(
        self,
        depth: int = 32,
        wait: float = 0.05,
        metrics: MetricsRegistry | None = None,
        name: str = "netd",
    ) -> None:
        if depth < 1:
            raise ValueError(f"queue depth must be positive, got {depth}")
        self.depth = depth
        self.wait = wait
        self.metrics = metrics
        self.name = name
        self._items: deque[tuple[bytes, bool]] = deque()
        self._ready = asyncio.Event()
        self._space = asyncio.Event()
        self._space.set()
        self.evicted = 0
        self.peak = 0
        self.closed = False

    def __len__(self) -> int:
        return len(self._items)

    def _record_depth(self) -> None:
        depth = len(self._items)
        self.peak = max(self.peak, depth)
        if self.metrics is not None:
            self.metrics.gauge("netd.queue_depth").set(depth)
            peak = self.metrics.gauge("netd.queue_peak")
            peak.set(max(self.peak, peak.value or 0))

    async def put(self, data: bytes, evictable: bool = True) -> None:
        """Enqueue one encoded frame under the bounded-depth contract."""
        if self.closed:
            return
        if len(self._items) >= self.depth:
            # Backpressure: give the writer one chance to drain a slot.
            self._space.clear()
            try:
                await asyncio.wait_for(self._space.wait(), timeout=self.wait)
            except asyncio.TimeoutError:
                pass
        if len(self._items) >= self.depth:
            # Degrade: shed the oldest evictable frame (or the new one).
            self.evicted += 1
            if self.metrics is not None:
                self.metrics.counter("netd.queue_evicted").inc()
            for index, (_, old_evictable) in enumerate(self._items):
                if old_evictable:
                    del self._items[index]
                    break
            else:
                if evictable:
                    self._record_depth()
                    return  # nothing sheddable queued: shed the newcomer
        self._items.append((data, evictable))
        self._record_depth()
        self._ready.set()

    async def get(self) -> bytes | None:
        """Dequeue the next frame; None once closed and empty."""
        while not self._items:
            if self.closed:
                return None
            self._ready.clear()
            await self._ready.wait()
        data, _ = self._items.popleft()
        self._record_depth()
        self._space.set()
        return data

    def close(self) -> None:
        self.closed = True
        self._ready.set()


class _PeerHost:
    """One hosted peer: its session, journal, and serial ingest worker."""

    def __init__(
        self,
        name: str,
        setting: PDESetting,
        pinned: Instance | None,
        journal: SessionJournal | None,
        retry: RetryPolicy | None,
        queue_depth: int,
    ) -> None:
        self.name = name
        self.setting = setting
        # Copy at the boundary, like PeerNode: a journal-free restart
        # re-seeds from self.pinned and must not alias caller state.
        self.pinned = pinned.copy() if pinned is not None else Instance()
        self.journal = journal
        self.retry = retry
        self.session: SyncSession | None = None
        self.queue: asyncio.Queue = asyncio.Queue(maxsize=queue_depth)
        self.worker: asyncio.Task | None = None
        self.stats: dict[str, int] = {
            "applied": 0, "stale": 0, "rejected": 0, "degraded": 0,
            "chain_broken": 0, "unavailable": 0,
        }

    def open_session(self) -> None:
        """(Re)build the session, resuming from the journal if present."""
        if self.journal is not None and self.journal.exists():
            self.session = SyncSession.resume(self.journal)
            self.session.retry = self.retry
        else:
            self.session = SyncSession(
                self.setting, pinned=self.pinned,
                journal=self.journal, retry=self.retry,
            )

    @property
    def watermark(self) -> Stamp | None:
        return self.session.last_stamp if self.session is not None else None


class SyncDaemon:
    """An asyncio daemon hosting stamped sync sessions behind sockets.

    Args:
        setting: the PDE setting every hosted peer syncs under.
        peers: names of the hosted subscriber peers.
        listen: ``(host, port)`` for TCP (port 0 picks a free port) or a
            path for a unix socket.
        journal_dir: directory holding one ``<peer>.journal`` per peer;
            sessions resume from existing journals at :meth:`start`.
            None runs journal-free (a crash then loses all state).
        pinned: optional per-peer pinned facts.
        node_cap / round_deadline: per-round :class:`~repro.runtime.Budget`
            caps applied to every peer's rounds (non-strict: a round that
            runs out degrades, the state stays untouched).
        peer_node_caps: per-peer ``node_cap`` overrides.
        retry: optional :class:`~repro.runtime.RetryPolicy` for
            budget-exhausted rounds (its blocking ``pause`` runs on the
            worker thread, never the event loop).
        heartbeat_interval: seconds between ``HEARTBEAT`` frames on an
            otherwise idle connection.
        idle_timeout: close a connection silent for this long (default
            ``4 * heartbeat_interval``).
        max_queue: depth bound for every outbound :class:`SendQueue` and
            per-peer ingest queue.
        max_frame: frame-size ceiling handed to codec and decoder.
        drain_deadline: seconds :meth:`stop` waits for in-flight rounds.
        tracer / metrics: optional :mod:`repro.obs` instrumentation
            (``netd.*`` spans, counters, and gauges).
        relays: the daemon's relay subscriptions — per hosted peer, the
            downstream links it forwards freshly applied state to, as
            ``{hosted_peer: [(downstream_peer, downstream_address), ...]}``.
            Each link gets a long-lived
            :class:`~repro.netd.PublisherClient` (``sender`` = the
            hosted peer) pushing ``(stamp, applied source)`` pairs over
            the ordinary frame protocol, so a chain of daemons relays
            state hop by hop; ACK outcomes feed the per-link
            :class:`~repro.net.PeerScorer` (``netd.score.*`` gauges).
    """

    def __init__(
        self,
        setting: PDESetting,
        peers: Iterable[str],
        listen: Any = ("127.0.0.1", 0),
        journal_dir: str | Path | None = None,
        pinned: Mapping[str, Instance] | None = None,
        node_cap: int | None = None,
        round_deadline: float | None = None,
        peer_node_caps: Mapping[str, int] | None = None,
        retry: RetryPolicy | None = None,
        heartbeat_interval: float = 1.0,
        idle_timeout: float | None = None,
        max_queue: int = 32,
        max_frame: int = DEFAULT_MAX_FRAME,
        drain_deadline: float = 5.0,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
        relays: Mapping[str, Iterable[tuple[str, Any]]] | None = None,
    ) -> None:
        self.setting = setting
        self.listen = listen
        self.journal_dir = Path(journal_dir) if journal_dir is not None else None
        self.node_cap = node_cap
        self.round_deadline = round_deadline
        self.peer_node_caps = dict(peer_node_caps or {})
        self.heartbeat_interval = heartbeat_interval
        self.idle_timeout = (
            idle_timeout if idle_timeout is not None else 4 * heartbeat_interval
        )
        self.max_queue = max_queue
        self.max_frame = max_frame
        self.drain_deadline = drain_deadline
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics
        self.state = DaemonState.STARTING
        if self.journal_dir is not None:
            self.journal_dir.mkdir(parents=True, exist_ok=True)
        pinned = pinned or {}
        self.hosts: dict[str, _PeerHost] = {}
        for name in peers:
            journal = (
                SessionJournal(self.journal_dir / f"{name}.journal")
                if self.journal_dir is not None
                else None
            )
            self.hosts[name] = _PeerHost(
                name, setting, pinned.get(name), journal, retry, max_queue,
            )
        if not self.hosts:
            raise SimulationError("a SyncDaemon needs at least one hosted peer")
        self._server: asyncio.AbstractServer | None = None
        self._connections: set["_Connection"] = set()
        self._stopped = asyncio.Event()
        self.stats: dict[str, int] = {
            "connections": 0, "frames_received": 0, "acks_sent": 0,
            "protocol_errors": 0, "idle_closed": 0, "heartbeats_sent": 0,
            "drained_rounds": 0, "drain_dropped": 0, "queue_evicted": 0,
            "forwarded": 0,
        }
        #: Relay subscriptions: hosted peer → downstream (peer, address)
        #: links fed by the long-lived relay pumps started on demand.
        self.relays: dict[str, list[tuple[str, Any]]] = {
            name: list(links) for name, links in (relays or {}).items()
        }
        for name in self.relays:
            if name not in self.hosts:
                raise SimulationError(
                    f"relay config names unhosted peer {name!r} "
                    f"(hosted: {', '.join(sorted(self.hosts))})"
                )
        #: Per-link health folded from relay ACK outcomes.
        self.scorer = PeerScorer(metrics=metrics, prefix="netd")
        self._relay_queues: dict[tuple[str, str], asyncio.Queue] = {}
        self._relay_tasks: list[asyncio.Task] = []
        self._relay_clients: list[Any] = []
        # Flight recorder: always on (ring appends are cheap dict writes),
        # flushed to a post-mortem file next to the journals on crash,
        # abort, or stop.
        self.recorder = FlightRecorder()
        self.postmortems: list[Path] = []
        # Every distinct stamp this daemon has seen, in arrival order —
        # the daemon-side view of the publisher's history, used as the
        # ``published`` side of per-peer watermark lag.
        self._stamps_seen: list[Stamp] = []
        self._stamp_set: set[Stamp] = set()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Open sessions (journal resume) and start listening."""
        for host in self.hosts.values():
            host.open_session()
            host.worker = asyncio.create_task(
                self._worker(host), name=f"netd-worker-{host.name}"
            )
        if isinstance(self.listen, (str, Path)):
            self._server = await asyncio.start_unix_server(
                self._serve_connection, path=str(self.listen)
            )
        else:
            host_addr, port = self.listen
            self._server = await asyncio.start_server(
                self._serve_connection, host=host_addr, port=port
            )
        self.state = DaemonState.SERVING
        self.tracer.event("netd.serving", address=str(self.address))
        self.recorder.record("netd.serving", address=str(self.address))

    @property
    def address(self):
        """The bound address: ``(host, port)`` for TCP, the path for unix."""
        if isinstance(self.listen, (str, Path)):
            return str(self.listen)
        assert self._server is not None, "daemon not started"
        sock = self._server.sockets[0]
        return sock.getsockname()[:2]

    async def serve_forever(self) -> None:
        """Block until :meth:`stop` (or :meth:`abort`) completes."""
        await self._stopped.wait()

    async def stop(self, drain: bool = True) -> bool:
        """Graceful shutdown: drain in-flight rounds, commit, BYE, exit.

        Returns True when every queued round finished inside
        ``drain_deadline`` — journal commits happen per round, so
        whatever drained is durable and whatever did not is redelivered
        by the publisher after restart (and replays idempotently).
        """
        if self.state in (DaemonState.STOPPED,):
            return True
        self.state = DaemonState.DRAINING
        self.tracer.event("netd.draining")
        if self._server is not None:
            self._server.close()
        drained = True
        if drain:
            drained = await self._drain()
        for host in self.hosts.values():
            if host.worker is not None:
                host.worker.cancel()
        await self._stop_relays()
        for connection in list(self._connections):
            await connection.close(send_bye=True, reason="drain")
        self.state = DaemonState.STOPPED
        self.tracer.event("netd.stopped", drained=drained)
        self.recorder.record("netd.stopped", drained=drained)
        if self.metrics is not None:
            self.metrics.counter("netd.drained_rounds").inc(
                self.stats["drained_rounds"]
            )
        self._flush_postmortem("daemon", reason="stop")
        self._stopped.set()
        return drained

    async def _drain(self) -> bool:
        """Wait for every ingest queue to empty, bounded by the deadline."""

        async def queues_empty() -> None:
            while any(not host.queue.empty() for host in self.hosts.values()) or any(
                not queue.empty() for queue in self._relay_queues.values()
            ):
                await asyncio.sleep(0.01)
            # One final tick so a worker mid-round can finish and ACK.
            await asyncio.sleep(0.01)

        try:
            await asyncio.wait_for(queues_empty(), timeout=self.drain_deadline)
            return True
        except asyncio.TimeoutError:
            dropped = sum(host.queue.qsize() for host in self.hosts.values())
            self.stats["drain_dropped"] += dropped
            self.tracer.event("netd.drain_deadline", dropped=dropped)
            return False

    def abort(self) -> None:
        """``kill -9`` in process form: no drain, no BYE, no commits.

        Everything in memory is discarded; only the fsynced journals
        survive.  Crash tests restart a fresh daemon on the same
        ``journal_dir`` and assert the resumed watermarks make every
        redelivery a stale no-op.
        """
        if self._server is not None:
            self._server.close()
        self.recorder.record("netd.abort")
        for host in self.hosts.values():
            if host.worker is not None:
                host.worker.cancel()
            host.session = None
        for task in self._relay_tasks:
            task.cancel()
        self._relay_tasks.clear()
        for client in self._relay_clients:
            # No BYE, no drain — the relay connections just vanish, like
            # every other socket this process held.
            client.closed = True
            client._teardown()
        self._relay_clients.clear()
        self._relay_queues.clear()
        for connection in list(self._connections):
            connection.abort()
        self.state = DaemonState.STOPPED
        self._flush_postmortem("daemon", reason="abort")
        self._stopped.set()

    # ------------------------------------------------------------------
    # hosted peers
    # ------------------------------------------------------------------

    def watermark(self, peer: str) -> Stamp | None:
        return self._host(peer).watermark

    def peer_state(self, peer: str) -> Instance:
        host = self._host(peer)
        if host.session is None:
            raise SimulationError(f"peer {peer!r} is crashed; no state")
        return host.session.state()

    def peer_source(self, peer: str) -> Instance | None:
        """The source snapshot ``peer`` last applied (what a relay
        forwards, and what anti-entropy serves from this hop)."""
        host = self._host(peer)
        return host.session.last_source if host.session is not None else None

    def peer_stats(self, peer: str) -> dict[str, int]:
        return dict(self._host(peer).stats)

    def stats_payload(self) -> dict[str, Any]:
        """The ops snapshot answered to a ``STATS`` frame.

        Everything is JSON-clean: stamps flatten to ``[epoch, seq]``
        pairs and per-peer watermark lag is computed against every stamp
        the daemon has seen.
        """
        peers: dict[str, Any] = {}
        for name, host in self.hosts.items():
            watermark = host.watermark
            peers[name] = {
                "watermark": (
                    [watermark.epoch, watermark.seq]
                    if watermark is not None else None
                ),
                "lag": watermark_lag(self._stamps_seen, watermark),
                "crashed": host.session is None,
                "queue_depth": host.queue.qsize(),
                "stats": dict(host.stats),
            }
        return {
            "state": self.state.value,
            "stats": dict(self.stats),
            "peers": peers,
            "scores": self.scorer.snapshot(),
        }

    def crash_peer(self, peer: str) -> None:
        """Simulate one hosted peer's process death (memory loss).

        The flight recorder's ring is flushed to a post-mortem file
        (``<peer>.postmortem.jsonl`` next to the journals) so the crash's
        prelude survives for :func:`repro.obs.read_postmortem`.
        """
        host = self._host(peer)
        if host.session is None:
            raise SimulationError(f"peer {peer!r} is already crashed")
        watermark = host.watermark
        host.session = None
        self.recorder.record(
            "netd.peer_crashed",
            peer=peer,
            watermark=list(watermark) if watermark is not None else None,
        )
        self._flush_postmortem(peer, reason="crash")

    def restart_peer(self, peer: str) -> None:
        """Bring a crashed hosted peer back, resuming from its journal."""
        host = self._host(peer)
        if host.session is not None:
            raise SimulationError(f"peer {peer!r} is not crashed")
        host.open_session()
        watermark = host.watermark
        self.recorder.record(
            "netd.peer_restarted",
            peer=peer,
            watermark=list(watermark) if watermark is not None else None,
        )

    def _flush_postmortem(self, label: str, reason: str) -> Path | None:
        """Flush the flight-recorder ring next to the journals.

        No ``journal_dir`` means nowhere durable to write — the flush is
        skipped (a journal-free daemon has already opted out of durable
        state).
        """
        if self.journal_dir is None or not len(self.recorder):
            return None
        path = self.recorder.flush(
            self.journal_dir / f"{label}.postmortem.jsonl", reason=reason
        )
        self.postmortems.append(path)
        return path

    def _host(self, peer: str) -> _PeerHost:
        try:
            return self.hosts[peer]
        except KeyError:
            raise SimulationError(
                f"daemon hosts no peer {peer!r} "
                f"(hosted: {', '.join(sorted(self.hosts))})"
            )

    # ------------------------------------------------------------------
    # per-peer ingestion
    # ------------------------------------------------------------------

    def _budget(self, peer: str) -> Budget | None:
        cap = self.peer_node_caps.get(peer, self.node_cap)
        if cap is None and self.round_deadline is None:
            return None
        return Budget(
            wall_time_s=self.round_deadline, node_cap=cap, strict=False
        )

    async def _worker(self, host: _PeerHost) -> None:
        """Serially ingest this peer's messages; solves run in a thread."""
        while True:
            message, connection = await host.queue.get()
            try:
                outcome_payload = await self._ingest(host, message)
            except asyncio.CancelledError:
                raise
            except Exception as error:  # noqa: BLE001 - answer, don't die
                outcome_payload = {
                    "recipient": host.name,
                    "stamp": [message.stamp.epoch, message.stamp.seq],
                    "outcome": "error",
                    "reason": str(error),
                }
            if self.state is DaemonState.DRAINING:
                self.stats["drained_rounds"] += 1
            if connection is not None and not connection.closed:
                await connection.send(
                    encode_frame(FrameKind.ACK, outcome_payload, self.max_frame)
                )
                self.stats["acks_sent"] += 1

    def _observe_stamp(self, stamp: Stamp) -> None:
        """Track every distinct stamp seen, in arrival order, for lag."""
        if stamp not in self._stamp_set:
            self._stamp_set.add(stamp)
            self._stamps_seen.append(stamp)

    def lag(self, peer: str) -> int:
        """Stamps seen by the daemon but not yet applied by ``peer``."""
        return watermark_lag(self._stamps_seen, self._host(peer).watermark)

    # ------------------------------------------------------------------
    # relay forwarding
    # ------------------------------------------------------------------

    def _relay_enqueue(self, host: _PeerHost, stamp: Stamp) -> None:
        """Queue a freshly applied round onto ``host``'s relay links.

        Called only on an *applied* verdict — redeliveries are stale at
        the watermark and never re-forwarded, which is what makes relay
        cycles and duplicate paths terminate.  A full link queue drops
        its oldest pending forward (the newer snapshot supersedes it;
        the downstream watermark treats the gap like any lost message
        and anti-entropy repairs it).
        """
        links = self.relays.get(host.name)
        if not links:
            return
        source = host.session.last_source if host.session is not None else None
        if source is None:  # pragma: no cover - applied rounds set a source
            return
        for downstream, address in links:
            link = (host.name, downstream)
            queue = self._relay_queues.get(link)
            if queue is None:
                queue = asyncio.Queue(maxsize=max(1, self.max_queue))
                self._relay_queues[link] = queue
                self._relay_tasks.append(
                    asyncio.create_task(
                        self._relay_pump(link, address, queue),
                        name=f"netd-relay-{host.name}->{downstream}",
                    )
                )
            if queue.full():
                try:
                    queue.get_nowait()
                    self.stats["queue_evicted"] += 1
                except asyncio.QueueEmpty:  # pragma: no cover - racefree loop
                    pass
            queue.put_nowait((stamp, source.copy()))
            self.stats["forwarded"] += 1
            if self.metrics is not None:
                self.metrics.counter("netd.forwarded").inc()

    async def _relay_pump(
        self, link: tuple[str, str], address: Any, queue: asyncio.Queue
    ) -> None:
        """Drive one relay link: a long-lived client pushing applied state.

        The downstream daemon may be dead for minutes (crash tests kill
        it mid-chain): a failed dial scores the link ``unreachable`` and
        drops the forward — the downstream watermark treats it as any
        other loss, and anti-entropy (or the next forward after the
        daemon returns) repairs the gap.
        """
        # Local import: repro.netd.client imports this module for
        # open_stream, so the dependency must stay one-way at load time.
        from repro.netd.client import PublisherClient

        sender, downstream = link
        client = None
        while True:
            stamp, snapshot = await queue.get()
            if client is None:
                candidate = PublisherClient(
                    address,
                    peer=downstream,
                    sender=sender,
                    max_frame=self.max_frame,
                    tracer=self.tracer,
                    metrics=self.metrics,
                )
                try:
                    await candidate.start()
                except (SimulationError, ConnectionError, OSError):
                    self.scorer.record(link, "unreachable")
                    self.recorder.record(
                        "netd.relay_unreachable",
                        link=f"{sender}->{downstream}",
                        stamp=str(stamp),
                    )
                    continue
                client = candidate
                self._relay_clients.append(client)
            outcome = await client.publish(stamp, snapshot)
            self.scorer.record(link, outcome.replace("-", "_"))
            self.recorder.record(
                "netd.relay_forwarded",
                link=f"{sender}->{downstream}",
                stamp=str(stamp),
                outcome=outcome,
            )

    async def _stop_relays(self) -> None:
        """Cancel relay pumps and close their clients (orderly)."""
        for task in self._relay_tasks:
            task.cancel()
        for task in self._relay_tasks:
            try:
                await task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
        self._relay_tasks.clear()
        for client in self._relay_clients:
            try:
                await client.close()
            except Exception:  # noqa: BLE001 - best-effort teardown
                pass
        self._relay_clients.clear()
        self._relay_queues.clear()

    async def _ingest(self, host: _PeerHost, message: Message) -> dict[str, Any]:
        """Run one stamped round for ``host``; returns the ACK payload."""
        self._observe_stamp(message.stamp)
        if host.session is None:
            host.stats["unavailable"] += 1
            self.recorder.record(
                "netd.ingest",
                peer=host.name,
                stamp=str(message.stamp),
                outcome="unavailable",
            )
            return {
                "recipient": host.name,
                "stamp": [message.stamp.epoch, message.stamp.seq],
                "outcome": "unavailable",
                "reason": f"peer {host.name!r} is crashed",
            }
        session = host.session
        budget = self._budget(host.name)
        context = message.context
        with self.tracer.span(
            "netd.ingest", peer=host.name, lane=host.name,
            stamp=str(message.stamp),
        ) as span:
            if context is not None:
                context.child(f"{host.name}:ingest").annotate(span)
            if message.is_delta:
                delta = message.payload
                outcome = await asyncio.to_thread(
                    session.sync_delta,
                    delta.added,
                    delta.withdrawn,
                    base=delta.base,
                    stamp=message.stamp,
                    budget=budget,
                    metrics=self.metrics,
                )
            else:
                outcome = await asyncio.to_thread(
                    session.sync,
                    message.payload,
                    stamp=message.stamp,
                    budget=budget,
                    metrics=self.metrics,
                )
            if outcome.stale:
                verdict = "stale"
            elif outcome.chain_broken:
                verdict = "chain-broken"
            elif outcome.degraded:
                verdict = "degraded"
            elif outcome.ok:
                verdict = "applied"
            else:
                verdict = "rejected"
            key = verdict.replace("-", "_")
            host.stats[key] = host.stats.get(key, 0) + 1
            if self.tracer.enabled:
                span.set("outcome", verdict)
        self.recorder.record(
            "netd.ingest",
            peer=host.name,
            stamp=str(message.stamp),
            outcome=verdict,
            trace=context.trace_id if context is not None else None,
        )
        if self.metrics is not None:
            self.metrics.counter(f"netd.rounds.{key}").inc()
            if verdict == "chain-broken":
                self.metrics.counter("netd.chain_broken").inc()
            if (
                verdict == "applied"
                and context is not None
                and context.published_at is not None
            ):
                self.metrics.histogram("netd.publish_apply_ms").observe(
                    max(0.0, (time.time() - context.published_at) * 1000.0)
                )
            self.metrics.gauge(f"netd.lag.{host.name}").set(
                self.lag(host.name)
            )
        if verdict == "applied":
            self._relay_enqueue(host, message.stamp)
        watermark = host.watermark
        return {
            "recipient": host.name,
            "stamp": [message.stamp.epoch, message.stamp.seq],
            "outcome": verdict,
            "reason": outcome.reason,
            "state": len(outcome.state),
            "watermark": (
                [watermark.epoch, watermark.seq] if watermark is not None else None
            ),
        }

    # ------------------------------------------------------------------
    # connections
    # ------------------------------------------------------------------

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        connection = _Connection(self, reader, writer)
        self._connections.add(connection)
        self.stats["connections"] += 1
        if self.metrics is not None:
            self.metrics.counter("netd.connections").inc()
        try:
            await connection.run()
        finally:
            self._connections.discard(connection)


class _Connection:
    """One accepted publisher connection: reader, writer, heartbeats."""

    def __init__(
        self,
        daemon: SyncDaemon,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self.daemon = daemon
        self.reader = reader
        self.writer = writer
        self.decoder = FrameDecoder(max_frame=daemon.max_frame)
        self.send_queue = SendQueue(
            depth=daemon.max_queue, metrics=daemon.metrics
        )
        self.peer_name = "?"
        self.closed = False
        self.last_received = asyncio.get_running_loop().time()
        self._writer_task: asyncio.Task | None = None
        self._heartbeat_task: asyncio.Task | None = None

    async def run(self) -> None:
        self._writer_task = asyncio.create_task(self._write_loop())
        self._heartbeat_task = asyncio.create_task(self._heartbeat_loop())
        try:
            await self._read_loop()
        except ProtocolError as error:
            self.daemon.stats["protocol_errors"] += 1
            self.daemon.tracer.event("netd.protocol_error", error=str(error))
            self.daemon.recorder.record(
                "netd.protocol_error", peer=self.peer_name, error=str(error)
            )
            if self.daemon.metrics is not None:
                self.daemon.metrics.counter("netd.protocol_errors").inc()
            await self.send(
                encode_frame(FrameKind.ERROR, {"error": str(error)}),
                evictable=False,
            )
            await asyncio.sleep(0)  # let the writer flush the ERROR frame
        except (ConnectionError, asyncio.IncompleteReadError, OSError):
            pass
        finally:
            await self.close(send_bye=False)

    async def _read_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while not self.closed:
            try:
                data = await asyncio.wait_for(
                    self.reader.read(64 * 1024),
                    timeout=self.daemon.idle_timeout,
                )
            except asyncio.TimeoutError:
                # Silent for a full idle window: treat as half-open.
                self.daemon.stats["idle_closed"] += 1
                self.daemon.tracer.event("netd.idle_closed", peer=self.peer_name)
                return
            if not data:
                return  # orderly EOF
            self.last_received = loop.time()
            if self.daemon.tracer.enabled:
                with self.daemon.tracer.span(
                    "netd.frame-decode", bytes=len(data)
                ):
                    frames = self.decoder.feed(data)
            else:
                frames = self.decoder.feed(data)
            for frame in frames:
                self.daemon.stats["frames_received"] += 1
                await self._handle(frame)

    async def _handle(self, frame: Frame) -> None:
        daemon = self.daemon
        if frame.kind is FrameKind.HELLO:
            self.peer_name = str(frame.payload.get("peer", "?"))
            version = frame.payload.get("protocol")
            if version != PROTOCOL_VERSION:
                raise ProtocolError(
                    f"peer {self.peer_name!r} speaks protocol {version!r}, "
                    f"daemon speaks {PROTOCOL_VERSION}"
                )
            watermark = None
            if self.peer_name in daemon.hosts:
                stamp = daemon.hosts[self.peer_name].watermark
                watermark = [stamp.epoch, stamp.seq] if stamp is not None else None
            await self.send(
                encode_frame(
                    FrameKind.WELCOME,
                    {
                        "protocol": PROTOCOL_VERSION,
                        "peer": self.peer_name,
                        "watermark": watermark,
                        "peers": sorted(daemon.hosts),
                        "state": daemon.state.value,
                    },
                ),
                evictable=False,
            )
        elif frame.kind in (FrameKind.SNAPSHOT, FrameKind.DELTA):
            message = decode_message(
                frame, schema=daemon.setting.source_schema
            )
            host = daemon.hosts.get(message.recipient)
            if host is None:
                raise ProtocolError(
                    f"frame addressed to unhosted peer {message.recipient!r}"
                )
            # Bounded ingest queue: awaiting put() pauses this reader,
            # which stops draining the socket — TCP backpressure reaches
            # the publisher instead of the daemon buffering unboundedly.
            await host.queue.put((message, self))
        elif frame.kind is FrameKind.STATS:
            await self.send(
                encode_frame(
                    FrameKind.STATS, daemon.stats_payload(), daemon.max_frame
                ),
                evictable=False,
            )
        elif frame.kind is FrameKind.HEARTBEAT:
            pass  # already refreshed last_received
        elif frame.kind is FrameKind.BYE:
            await self.close(send_bye=False)
        else:
            raise ProtocolError(
                f"daemon cannot accept a {frame.kind.name} frame"
            )

    async def _heartbeat_loop(self) -> None:
        while not self.closed:
            await asyncio.sleep(self.daemon.heartbeat_interval)
            if self.closed:
                return
            await self.send(encode_frame(FrameKind.HEARTBEAT, {}))
            self.daemon.stats["heartbeats_sent"] += 1

    async def _write_loop(self) -> None:
        try:
            while True:
                data = await self.send_queue.get()
                if data is None:
                    return
                self.writer.write(data)
                await self.writer.drain()
        except (ConnectionError, OSError):
            pass

    async def send(self, data: bytes, evictable: bool = True) -> None:
        await self.send_queue.put(data, evictable=evictable)

    async def close(self, send_bye: bool, reason: str = "") -> None:
        if self.closed:
            return
        self.closed = True
        if send_bye:
            try:
                self.writer.write(
                    encode_frame(FrameKind.BYE, {"reason": reason})
                )
                await self.writer.drain()
            except (ConnectionError, OSError):
                pass
        self.daemon.stats["queue_evicted"] += self.send_queue.evicted
        self.send_queue.close()
        if self._heartbeat_task is not None:
            self._heartbeat_task.cancel()
        if self._writer_task is not None:
            self._writer_task.cancel()
        try:
            self.writer.close()
        except (ConnectionError, OSError):
            pass

    def abort(self) -> None:
        """Tear down with no goodbye (the kill-9 path)."""
        self.closed = True
        self.send_queue.close()
        if self._heartbeat_task is not None:
            self._heartbeat_task.cancel()
        if self._writer_task is not None:
            self._writer_task.cancel()
        transport = self.writer.transport
        if transport is not None:
            transport.abort()
