"""A crash-tolerant asyncio sync daemon for peer data exchange.

:mod:`repro.netd` moves the :mod:`repro.net` protocol stack — stamped
idempotent ingestion, journal-backed resume, delta transfer,
anti-entropy — from the in-memory simulator onto real TCP and unix
sockets, without changing a line of the protocol itself:

* :mod:`repro.netd.frames` — the wire codec: length-prefixed, versioned
  frames carrying the simulator's own ``Message``/``Stamp``/``Delta``
  payloads, with a max-frame guard and a close-don't-corrupt
  :class:`~repro.exceptions.ProtocolError` contract;
* :class:`SyncDaemon` — an asyncio daemon multiplexing one journaled
  :class:`~repro.sync.SyncSession` per hosted peer behind heartbeats,
  idle timeouts, bounded send queues (backpressure, then degrade), and
  a graceful drain-on-shutdown;
* :class:`PublisherClient` — the publisher side: jittered reconnect
  backoff on :meth:`~repro.runtime.RetryPolicy.pause_async`'s
  deterministic schedule, a bounded pending queue, and delta transfer
  with full-snapshot fallback;
* :class:`ChaosProxy` — a socket-level fault proxy driven by the same
  seeded :class:`~repro.runtime.FaultSchedule` objects as the
  simulator, so every scripted scenario re-runs as an integration test
  against real sockets;
* :func:`run_scenario_netd` — the harness tying them together and
  judging the result with the simulator's own
  :func:`~repro.net.check_convergence` oracle.

The CLI front door is ``repro.cli serve`` / ``repro.cli connect``.
"""

from repro.netd.chaos import ChaosProxy
from repro.netd.client import PublisherClient, fetch_stats
from repro.netd.daemon import DaemonState, SendQueue, SyncDaemon, open_stream
from repro.netd.frames import (
    DEFAULT_MAX_FRAME,
    Frame,
    FrameDecoder,
    FrameKind,
    PROTOCOL_VERSION,
    decode_message,
    encode_frame,
    encode_message,
)
from repro.netd.harness import NetdReport, run_scenario_netd

__all__ = [
    "ChaosProxy",
    "DEFAULT_MAX_FRAME",
    "DaemonState",
    "Frame",
    "FrameDecoder",
    "FrameKind",
    "NetdReport",
    "PROTOCOL_VERSION",
    "PublisherClient",
    "SendQueue",
    "SyncDaemon",
    "decode_message",
    "encode_frame",
    "encode_message",
    "fetch_stats",
    "open_stream",
    "run_scenario_netd",
]
