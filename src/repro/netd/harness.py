"""Run simulator scenarios against the real daemon over real sockets.

:func:`run_scenario_netd` takes the *same* :class:`~repro.net.Scenario`
values the in-memory :class:`~repro.net.NetworkSimulator` executes and
replays them against live machinery: one :class:`~repro.netd.SyncDaemon`
hosting every subscriber peer, one :class:`~repro.netd.ChaosProxy` per
publisher→peer link carrying that link's seeded
:class:`~repro.runtime.FaultSchedule`, and one
:class:`~repro.netd.PublisherClient` per link walking the scenario's
publish timeline (scaled from virtual seconds to wall clock by
``time_scale``).  Control events map one-to-one:
:class:`~repro.net.Partition` / :class:`~repro.net.Heal` become proxy
partitions, :class:`~repro.net.Crash` / :class:`~repro.net.Restart`
crash and journal-resume the daemon-hosted peer, and
:class:`~repro.net.BumpEpoch` bumps the stamp epoch and re-baselines
every client's delta chain.

After the timeline drains the harness runs the same bounded
**anti-entropy** repair the simulator runs — lagging reachable peers are
re-offered the latest snapshot over a clean connection (no proxy) — and
then judges the final states with the very same transport-independent
:func:`~repro.net.check_convergence` oracle.  That shared oracle is the
point: a scenario that converges in simulation must converge over real
sockets, and the chaos integration tests additionally assert the final
states *agree* (:func:`~repro.net.states_agree`) between the two runs.
"""

from __future__ import annotations

import asyncio
import shutil
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.instance import Instance
from repro.net.scenarios import (
    BumpEpoch,
    Crash,
    Heal,
    Partition,
    Restart,
    Scenario,
)
from repro.net.simulator import ConvergenceReport, check_convergence
from repro.netd.chaos import ChaosProxy
from repro.netd.client import PublisherClient
from repro.netd.daemon import SyncDaemon
from repro.obs.exporters import write_trace_jsonl
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.runtime.retry import RetryPolicy
from repro.sync.session import Stamp

__all__ = ["NetdReport", "run_scenario_netd"]

#: Tie-break ranks matching the simulator: control events before
#: publishes at the same timeline instant.
_CONTROL, _PUBLISH = 0, 1


@dataclass
class NetdReport:
    """Everything one real-socket scenario run produced.

    The socket twin of :class:`~repro.net.SimulationReport`: the same
    identifying fields, a convergence verdict from the same oracle, the
    final per-peer states (so tests can compare them against a
    simulator run of the same scenario), and merged ``netd.*`` /
    ``chaos.*`` counters.
    """

    scenario: str
    seed: int
    published: int
    final_stamp: Stamp | None
    states: dict[str, Instance]
    unreachable: list[str]
    stats: dict[str, int]
    convergence: ConvergenceReport | None = None
    drained: bool = True
    log: list[str] = field(repr=False, default_factory=list)
    trace_files: dict[str, Path] = field(default_factory=dict)
    postmortems: list[Path] = field(default_factory=list)

    @property
    def converged(self) -> bool:
        return self.convergence is not None and self.convergence.converged

    @property
    def lag(self) -> dict[str, int]:
        """Per-peer watermark lag at the end of the run (0 = caught up)."""
        return dict(self.convergence.lag) if self.convergence is not None else {}


def run_scenario_netd(
    scenario: Scenario,
    deltas: bool = False,
    journal_dir: str | Path | None = None,
    time_scale: float = 0.02,
    use_chaos: bool = True,
    max_queue: int = 32,
    ack_timeout: float = 0.3,
    anti_entropy_limit: int = 8,
    node_cap: int | None = None,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
    trace_dir: str | Path | None = None,
) -> NetdReport:
    """Execute ``scenario`` over real sockets; blocking wrapper.

    Args:
        scenario: the same scenario value the simulator runs.
        deltas: ship incremental payloads when they beat the snapshot.
        journal_dir: per-peer journal directory (a temp dir when None,
            removed after the run).
        time_scale: wall-clock seconds per virtual scenario second.
        use_chaos: route each link through a fault-injecting
            :class:`~repro.netd.ChaosProxy`; False connects directly
            (a clean-network baseline, also used by the benchmarks).
        max_queue: bound for client pending queues and daemon queues.
        ack_timeout: per-message ACK wait before the client moves on.
        anti_entropy_limit: bounded repair rounds after the timeline.
        node_cap: optional per-round node cap on the daemon's budgets.
        tracer / metrics: optional shared :mod:`repro.obs` sinks.
        trace_dir: when set, the run records one distributed-tracing
            lane per component — ``publisher.jsonl``, ``daemon.jsonl``,
            and (under chaos) ``chaos.jsonl`` are written there for
            :func:`repro.obs.stitch`; overrides ``tracer``.
    """
    return asyncio.run(
        _run(
            scenario,
            deltas=deltas,
            journal_dir=journal_dir,
            time_scale=time_scale,
            use_chaos=use_chaos,
            max_queue=max_queue,
            ack_timeout=ack_timeout,
            anti_entropy_limit=anti_entropy_limit,
            node_cap=node_cap,
            tracer=tracer if tracer is not None else NULL_TRACER,
            metrics=metrics,
            trace_dir=trace_dir,
        )
    )


async def _run(
    scenario: Scenario,
    deltas: bool,
    journal_dir: str | Path | None,
    time_scale: float,
    use_chaos: bool,
    max_queue: int,
    ack_timeout: float,
    anti_entropy_limit: int,
    node_cap: int | None,
    tracer: Tracer,
    metrics: MetricsRegistry | None,
    trace_dir: str | Path | None = None,
) -> NetdReport:
    owns_journal_dir = journal_dir is None
    if owns_journal_dir:
        journal_dir = tempfile.mkdtemp(prefix=f"repro-netd-{scenario.name}-")
    log: list[str] = []
    virtual_now = 0.0

    # One tracer per component when trace_dir is set: each writes its own
    # JSONL lane, and the three files stitch into one timeline because
    # every lane shares this process's perf_counter clock.
    lane_tracers: dict[str, Tracer] = {}
    if trace_dir is not None:
        trace_dir = Path(trace_dir)
        trace_dir.mkdir(parents=True, exist_ok=True)
        lane_tracers["publisher"] = Tracer()
        lane_tracers["daemon"] = Tracer()
        if use_chaos:
            lane_tracers["chaos"] = Tracer()
    publisher_tracer = lane_tracers.get("publisher", tracer)
    daemon_tracer = lane_tracers.get("daemon", tracer)
    chaos_tracer = lane_tracers.get("chaos", tracer)

    def note(text: str) -> None:
        log.append(f"t={virtual_now:07.3f} {text}")

    daemon = SyncDaemon(
        scenario.setting,
        scenario.peers,
        journal_dir=journal_dir,
        pinned=scenario.pinned,
        node_cap=node_cap,
        heartbeat_interval=5.0,
        idle_timeout=60.0,
        max_queue=max_queue,
        tracer=daemon_tracer,
        metrics=metrics,
    )
    await daemon.start()
    note(f"daemon serving {daemon.address}")

    proxies: dict[str, ChaosProxy] = {}
    clients: dict[str, PublisherClient] = {}
    crashed: set[str] = set()
    try:
        for peer in scenario.peers:
            address = daemon.address
            if use_chaos:
                proxy = ChaosProxy(
                    upstream=daemon.address,
                    schedule=scenario.faults.get((scenario.publisher, peer)),
                    latency=scenario.latency,
                    reorder_delay=scenario.reorder_delay,
                    time_scale=time_scale,
                    tracer=chaos_tracer,
                    metrics=metrics,
                )
                await proxy.start()
                proxies[peer] = proxy
                address = proxy.address
            client = PublisherClient(
                address,
                peer,
                sender=scenario.publisher,
                deltas=deltas,
                retry=RetryPolicy(
                    max_attempts=3,
                    base_delay=0.02,
                    max_delay=0.1,
                    seed=scenario.seed,
                ),
                max_queue=max_queue,
                ack_timeout=ack_timeout,
                heartbeat_interval=1.0,
                tracer=publisher_tracer,
                metrics=metrics,
            )
            await client.start()
            clients[peer] = client

        # ---- the timeline: publishes + control events, simulator order
        timeline: list[tuple[float, int, int, object]] = []
        order = 0
        for index in range(len(scenario.snapshots)):
            timeline.append((index * scenario.interval, _PUBLISH, order, index))
            order += 1
        for event in scenario.events:
            timeline.append((event.at, _CONTROL, order, event))
            order += 1
        timeline.sort()

        epoch, seq = 1, 0
        published = 0
        published_stamps: list[Stamp] = []
        latest_stamp: Stamp | None = None
        latest_snapshot: Instance | None = None

        for at, kind, _order, payload in timeline:
            if at > virtual_now:
                await asyncio.sleep((at - virtual_now) * time_scale)
                virtual_now = at
            if kind == _PUBLISH:
                snapshot = scenario.snapshots[payload]
                seq += 1
                stamp = Stamp(epoch, seq)
                latest_stamp, latest_snapshot = stamp, snapshot
                published_stamps.append(stamp)
                published += 1
                note(f"publish stamp={stamp} facts={len(snapshot)}")
                for peer in scenario.peers:
                    await clients[peer].offer(stamp, snapshot)
            elif isinstance(payload, Partition):
                rendered = [",".join(sorted(group)) for group in payload.groups]
                note(f"partition {'|'.join(rendered)}")
                for peer in scenario.peers:
                    if peer in proxies:
                        if _severed(scenario.publisher, peer, payload.groups):
                            proxies[peer].partition()
                        else:
                            proxies[peer].heal()
            elif isinstance(payload, Heal):
                note("heal")
                for proxy in proxies.values():
                    proxy.heal()
            elif isinstance(payload, Crash):
                note(f"crash {payload.peer}")
                daemon.crash_peer(payload.peer)
                crashed.add(payload.peer)
            elif isinstance(payload, Restart):
                daemon.restart_peer(payload.peer)
                crashed.discard(payload.peer)
                note(
                    f"restart {payload.peer} "
                    f"stamp={daemon.watermark(payload.peer)}"
                )
            elif isinstance(payload, BumpEpoch):
                epoch += 1
                seq = 0
                for client in clients.values():
                    client.rebase()
                note(f"epoch-bump epoch={epoch}")

        # ---- quiescence: let every client finish its pending sends
        for client in clients.values():
            await client.drain(timeout=30.0)
        note("quiescent")

        # ---- anti-entropy over clean connections, like the simulator's
        # reliable repair channel: bounded rounds, lagging peers only.
        anti_entropy = 0
        if latest_snapshot is not None:
            for round_number in range(1, anti_entropy_limit + 1):
                lagging = [
                    peer
                    for peer in scenario.peers
                    if _reachable(peer, crashed, proxies)
                    and _behind(daemon.watermark(peer), latest_stamp)
                ]
                if not lagging:
                    break
                for peer in lagging:
                    anti_entropy += 1
                    if metrics is not None:
                        metrics.counter("netd.anti_entropy").inc()
                    repair = PublisherClient(
                        daemon.address,
                        peer,
                        sender=scenario.publisher,
                        ack_timeout=max(1.0, ack_timeout),
                        tracer=publisher_tracer,
                        metrics=metrics,
                    )
                    await repair.start()
                    outcome = await repair.publish(latest_stamp, latest_snapshot)
                    await repair.close()
                    note(
                        f"anti-entropy round={round_number} peer={peer} "
                        f"stamp={latest_stamp} -> {outcome}"
                    )

        # ---- collect final states and judge with the shared oracle
        states: dict[str, Instance] = {}
        unreachable: list[str] = []
        watermarks: dict[str, Stamp | None] = {}
        for peer in scenario.peers:
            watermarks[peer] = daemon.watermark(peer)
            if _reachable(peer, crashed, proxies):
                states[peer] = daemon.peer_state(peer)
            else:
                unreachable.append(peer)
        convergence = check_convergence(
            scenario, states, unreachable,
            watermarks=watermarks, published=published_stamps,
        )
        note(
            "convergence "
            + (
                " ".join(
                    f"{name}={'ok' if ok else 'DIVERGED'}"
                    for name, ok in sorted(convergence.peers.items())
                )
                if convergence.peers
                else "vacuous (no reachable peers)"
            )
        )

        stats: dict[str, int] = {"anti_entropy": anti_entropy}
        for peer, client in clients.items():
            for key, value in client.stats.items():
                stats[key] = stats.get(key, 0) + value
        for proxy in proxies.values():
            for key, value in proxy.stats.items():
                stats[f"chaos_{key}"] = stats.get(f"chaos_{key}", 0) + value
        for host in daemon.hosts.values():
            for key, value in host.stats.items():
                stats[f"daemon_{key}"] = stats.get(f"daemon_{key}", 0) + value

        # Orderly teardown *inside* the run so the report can record
        # whether the daemon drained cleanly (the finally below is an
        # idempotent safety net for the exception paths).
        for client in clients.values():
            await client.close(bye=True)
        drained = await daemon.stop(drain=True)
        note(f"daemon stopped drained={drained}")

        trace_files = _write_lanes(lane_tracers, trace_dir)
        for label, path in trace_files.items():
            note(f"trace lane {label} -> {path}")

        return NetdReport(
            scenario=scenario.name,
            seed=scenario.seed,
            published=published,
            final_stamp=latest_stamp,
            states=states,
            unreachable=unreachable,
            stats=stats,
            convergence=convergence,
            drained=drained,
            log=log,
            trace_files=trace_files,
            postmortems=list(daemon.postmortems),
        )
    finally:
        for client in clients.values():
            await client.close(bye=False)
        for proxy in proxies.values():
            await proxy.stop()
        await daemon.stop(drain=False)
        _write_lanes(lane_tracers, trace_dir)
        if owns_journal_dir:
            shutil.rmtree(journal_dir, ignore_errors=True)


def _write_lanes(
    lane_tracers: dict[str, Tracer], trace_dir: str | Path | None
) -> dict[str, Path]:
    """Write one JSONL trace file per component lane (idempotent)."""
    if trace_dir is None or not lane_tracers:
        return {}
    trace_files: dict[str, Path] = {}
    for label, lane in lane_tracers.items():
        path = Path(trace_dir) / f"{label}.jsonl"
        write_trace_jsonl(lane, path)
        trace_files[label] = path
    return trace_files


def _severed(
    publisher: str, peer: str, groups: tuple[frozenset[str], ...]
) -> bool:
    """Does this partition separate ``peer`` from ``publisher``?

    Mirrors :meth:`repro.net.SimTransport.connected`: peers named in no
    group share an implicit remainder group.
    """
    group_of_publisher = group_of_peer = None
    for group in groups:
        if publisher in group:
            group_of_publisher = group
        if peer in group:
            group_of_peer = group
    return group_of_publisher is not group_of_peer


def _reachable(
    peer: str, crashed: set[str], proxies: dict[str, ChaosProxy]
) -> bool:
    if peer in crashed:
        return False
    proxy = proxies.get(peer)
    return proxy is None or not proxy.partitioned


def _behind(watermark: Stamp | None, latest: Stamp | None) -> bool:
    if latest is None:
        return False
    return watermark is None or watermark < latest
