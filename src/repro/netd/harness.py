"""Run simulator scenarios against the real daemon over real sockets.

:func:`run_scenario_netd` takes the *same* :class:`~repro.net.Scenario`
values the in-memory :class:`~repro.net.NetworkSimulator` executes and
replays them against live machinery: one :class:`~repro.netd.SyncDaemon`
hosting every subscriber peer, one :class:`~repro.netd.ChaosProxy` per
publisher→peer link carrying that link's seeded
:class:`~repro.runtime.FaultSchedule`, and one
:class:`~repro.netd.PublisherClient` per link walking the scenario's
publish timeline (scaled from virtual seconds to wall clock by
``time_scale``).  Control events map one-to-one:
:class:`~repro.net.Partition` / :class:`~repro.net.Heal` become proxy
partitions, :class:`~repro.net.Crash` / :class:`~repro.net.Restart`
crash and journal-resume the daemon-hosted peer, and
:class:`~repro.net.BumpEpoch` bumps the stamp epoch and re-baselines
every client's delta chain.

After the timeline drains the harness runs the same bounded
**anti-entropy** repair the simulator runs — lagging reachable peers are
re-offered the latest snapshot over a clean connection (no proxy) — and
then judges the final states with the very same transport-independent
:func:`~repro.net.check_convergence` oracle.  That shared oracle is the
point: a scenario that converges in simulation must converge over real
sockets, and the chaos integration tests additionally assert the final
states *agree* (:func:`~repro.net.states_agree`) between the two runs.
"""

from __future__ import annotations

import asyncio
import shutil
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.instance import Instance
from repro.net.scenarios import (
    BumpEpoch,
    Crash,
    Heal,
    Partition,
    Restart,
    Scenario,
)
from repro.net.scoring import PeerScorer
from repro.net.simulator import ConvergenceReport, check_convergence
from repro.netd.chaos import ChaosProxy
from repro.netd.client import PublisherClient
from repro.netd.daemon import SyncDaemon
from repro.obs.exporters import write_trace_jsonl
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.runtime.retry import RetryPolicy
from repro.sync.session import Stamp

__all__ = ["NetdReport", "run_scenario_netd"]

#: Tie-break ranks matching the simulator: control events before
#: publishes at the same timeline instant.
_CONTROL, _PUBLISH = 0, 1


@dataclass
class NetdReport:
    """Everything one real-socket scenario run produced.

    The socket twin of :class:`~repro.net.SimulationReport`: the same
    identifying fields, a convergence verdict from the same oracle, the
    final per-peer states (so tests can compare them against a
    simulator run of the same scenario), and merged ``netd.*`` /
    ``chaos.*`` counters.
    """

    scenario: str
    seed: int
    published: int
    final_stamp: Stamp | None
    states: dict[str, Instance]
    unreachable: list[str]
    stats: dict[str, int]
    convergence: ConvergenceReport | None = None
    drained: bool = True
    log: list[str] = field(repr=False, default_factory=list)
    trace_files: dict[str, Path] = field(default_factory=dict)
    postmortems: list[Path] = field(default_factory=list)
    #: Per-link peer scores (``"sender->recipient"``) merged from every
    #: daemon's scorer plus the publisher's own links; empty for star runs
    #: before any score-worthy traffic.
    scores: dict[str, float] = field(default_factory=dict)

    @property
    def converged(self) -> bool:
        return self.convergence is not None and self.convergence.converged

    @property
    def lag(self) -> dict[str, int]:
        """Per-peer watermark lag at the end of the run (0 = caught up)."""
        return dict(self.convergence.lag) if self.convergence is not None else {}


def run_scenario_netd(
    scenario: Scenario,
    deltas: bool = False,
    journal_dir: str | Path | None = None,
    time_scale: float = 0.02,
    use_chaos: bool = True,
    max_queue: int = 32,
    ack_timeout: float = 0.3,
    anti_entropy_limit: int = 8,
    node_cap: int | None = None,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
    trace_dir: str | Path | None = None,
) -> NetdReport:
    """Execute ``scenario`` over real sockets; blocking wrapper.

    Args:
        scenario: the same scenario value the simulator runs.
        deltas: ship incremental payloads when they beat the snapshot.
        journal_dir: per-peer journal directory (a temp dir when None,
            removed after the run).
        time_scale: wall-clock seconds per virtual scenario second.
        use_chaos: route each link through a fault-injecting
            :class:`~repro.netd.ChaosProxy`; False connects directly
            (a clean-network baseline, also used by the benchmarks).
        max_queue: bound for client pending queues and daemon queues.
        ack_timeout: per-message ACK wait before the client moves on.
        anti_entropy_limit: bounded repair rounds after the timeline.
        node_cap: optional per-round node cap on the daemon's budgets.
        tracer / metrics: optional shared :mod:`repro.obs` sinks.
        trace_dir: when set, the run records one distributed-tracing
            lane per component — ``publisher.jsonl``, ``daemon.jsonl``,
            and (under chaos) ``chaos.jsonl`` are written there for
            :func:`repro.obs.stitch`; overrides ``tracer``.
    """
    return asyncio.run(
        _run(
            scenario,
            deltas=deltas,
            journal_dir=journal_dir,
            time_scale=time_scale,
            use_chaos=use_chaos,
            max_queue=max_queue,
            ack_timeout=ack_timeout,
            anti_entropy_limit=anti_entropy_limit,
            node_cap=node_cap,
            tracer=tracer if tracer is not None else NULL_TRACER,
            metrics=metrics,
            trace_dir=trace_dir,
        )
    )


async def _run(
    scenario: Scenario,
    deltas: bool,
    journal_dir: str | Path | None,
    time_scale: float,
    use_chaos: bool,
    max_queue: int,
    ack_timeout: float,
    anti_entropy_limit: int,
    node_cap: int | None,
    tracer: Tracer,
    metrics: MetricsRegistry | None,
    trace_dir: str | Path | None = None,
) -> NetdReport:
    if scenario.topology:
        return await _run_mesh(
            scenario,
            deltas=deltas,
            journal_dir=journal_dir,
            time_scale=time_scale,
            use_chaos=use_chaos,
            max_queue=max_queue,
            ack_timeout=ack_timeout,
            anti_entropy_limit=anti_entropy_limit,
            node_cap=node_cap,
            tracer=tracer,
            metrics=metrics,
            trace_dir=trace_dir,
        )
    owns_journal_dir = journal_dir is None
    if owns_journal_dir:
        journal_dir = tempfile.mkdtemp(prefix=f"repro-netd-{scenario.name}-")
    log: list[str] = []
    virtual_now = 0.0

    # One tracer per component when trace_dir is set: each writes its own
    # JSONL lane, and the three files stitch into one timeline because
    # every lane shares this process's perf_counter clock.
    lane_tracers: dict[str, Tracer] = {}
    if trace_dir is not None:
        trace_dir = Path(trace_dir)
        trace_dir.mkdir(parents=True, exist_ok=True)
        lane_tracers["publisher"] = Tracer()
        lane_tracers["daemon"] = Tracer()
        if use_chaos:
            lane_tracers["chaos"] = Tracer()
    publisher_tracer = lane_tracers.get("publisher", tracer)
    daemon_tracer = lane_tracers.get("daemon", tracer)
    chaos_tracer = lane_tracers.get("chaos", tracer)

    def note(text: str) -> None:
        log.append(f"t={virtual_now:07.3f} {text}")

    daemon = SyncDaemon(
        scenario.setting,
        scenario.peers,
        journal_dir=journal_dir,
        pinned=scenario.pinned,
        node_cap=node_cap,
        heartbeat_interval=5.0,
        idle_timeout=60.0,
        max_queue=max_queue,
        tracer=daemon_tracer,
        metrics=metrics,
    )
    await daemon.start()
    note(f"daemon serving {daemon.address}")

    proxies: dict[str, ChaosProxy] = {}
    clients: dict[str, PublisherClient] = {}
    crashed: set[str] = set()
    try:
        for peer in scenario.peers:
            address = daemon.address
            if use_chaos:
                proxy = ChaosProxy(
                    upstream=daemon.address,
                    schedule=scenario.faults.get((scenario.publisher, peer)),
                    latency=scenario.latency,
                    reorder_delay=scenario.reorder_delay,
                    time_scale=time_scale,
                    tracer=chaos_tracer,
                    metrics=metrics,
                )
                await proxy.start()
                proxies[peer] = proxy
                address = proxy.address
            client = PublisherClient(
                address,
                peer,
                sender=scenario.publisher,
                deltas=deltas,
                retry=RetryPolicy(
                    max_attempts=3,
                    base_delay=0.02,
                    max_delay=0.1,
                    seed=scenario.seed,
                ),
                max_queue=max_queue,
                ack_timeout=ack_timeout,
                heartbeat_interval=1.0,
                tracer=publisher_tracer,
                metrics=metrics,
            )
            await client.start()
            clients[peer] = client

        # ---- the timeline: publishes + control events, simulator order
        timeline: list[tuple[float, int, int, object]] = []
        order = 0
        for index in range(len(scenario.snapshots)):
            timeline.append((index * scenario.interval, _PUBLISH, order, index))
            order += 1
        for event in scenario.events:
            timeline.append((event.at, _CONTROL, order, event))
            order += 1
        timeline.sort()

        epoch, seq = 1, 0
        published = 0
        published_stamps: list[Stamp] = []
        latest_stamp: Stamp | None = None
        latest_snapshot: Instance | None = None

        for at, kind, _order, payload in timeline:
            if at > virtual_now:
                await asyncio.sleep((at - virtual_now) * time_scale)
                virtual_now = at
            if kind == _PUBLISH:
                snapshot = scenario.snapshots[payload]
                seq += 1
                stamp = Stamp(epoch, seq)
                latest_stamp, latest_snapshot = stamp, snapshot
                published_stamps.append(stamp)
                published += 1
                note(f"publish stamp={stamp} facts={len(snapshot)}")
                for peer in scenario.peers:
                    await clients[peer].offer(stamp, snapshot)
            elif isinstance(payload, Partition):
                rendered = [",".join(sorted(group)) for group in payload.groups]
                note(f"partition {'|'.join(rendered)}")
                for peer in scenario.peers:
                    if peer in proxies:
                        if _severed(scenario.publisher, peer, payload.groups):
                            proxies[peer].partition()
                        else:
                            proxies[peer].heal()
            elif isinstance(payload, Heal):
                note("heal")
                for proxy in proxies.values():
                    proxy.heal()
            elif isinstance(payload, Crash):
                note(f"crash {payload.peer}")
                daemon.crash_peer(payload.peer)
                crashed.add(payload.peer)
            elif isinstance(payload, Restart):
                daemon.restart_peer(payload.peer)
                crashed.discard(payload.peer)
                note(
                    f"restart {payload.peer} "
                    f"stamp={daemon.watermark(payload.peer)}"
                )
            elif isinstance(payload, BumpEpoch):
                epoch += 1
                seq = 0
                for client in clients.values():
                    client.rebase()
                note(f"epoch-bump epoch={epoch}")

        # ---- quiescence: let every client finish its pending sends
        for client in clients.values():
            await client.drain(timeout=30.0)
        note("quiescent")

        # ---- anti-entropy over clean connections, like the simulator's
        # reliable repair channel: bounded rounds, lagging peers only.
        anti_entropy = 0
        if latest_snapshot is not None:
            for round_number in range(1, anti_entropy_limit + 1):
                lagging = [
                    peer
                    for peer in scenario.peers
                    if _reachable(peer, crashed, proxies)
                    and _behind(daemon.watermark(peer), latest_stamp)
                ]
                if not lagging:
                    break
                for peer in lagging:
                    anti_entropy += 1
                    if metrics is not None:
                        metrics.counter("netd.anti_entropy").inc()
                    repair = PublisherClient(
                        daemon.address,
                        peer,
                        sender=scenario.publisher,
                        ack_timeout=max(1.0, ack_timeout),
                        tracer=publisher_tracer,
                        metrics=metrics,
                    )
                    await repair.start()
                    outcome = await repair.publish(latest_stamp, latest_snapshot)
                    await repair.close()
                    note(
                        f"anti-entropy round={round_number} peer={peer} "
                        f"stamp={latest_stamp} -> {outcome}"
                    )

        # ---- collect final states and judge with the shared oracle
        states: dict[str, Instance] = {}
        unreachable: list[str] = []
        watermarks: dict[str, Stamp | None] = {}
        for peer in scenario.peers:
            watermarks[peer] = daemon.watermark(peer)
            if _reachable(peer, crashed, proxies):
                states[peer] = daemon.peer_state(peer)
            else:
                unreachable.append(peer)
        convergence = check_convergence(
            scenario, states, unreachable,
            watermarks=watermarks, published=published_stamps,
        )
        note(
            "convergence "
            + (
                " ".join(
                    f"{name}={'ok' if ok else 'DIVERGED'}"
                    for name, ok in sorted(convergence.peers.items())
                )
                if convergence.peers
                else "vacuous (no reachable peers)"
            )
        )

        stats: dict[str, int] = {"anti_entropy": anti_entropy}
        for peer, client in clients.items():
            for key, value in client.stats.items():
                stats[key] = stats.get(key, 0) + value
        for proxy in proxies.values():
            for key, value in proxy.stats.items():
                stats[f"chaos_{key}"] = stats.get(f"chaos_{key}", 0) + value
        for host in daemon.hosts.values():
            for key, value in host.stats.items():
                stats[f"daemon_{key}"] = stats.get(f"daemon_{key}", 0) + value

        # Orderly teardown *inside* the run so the report can record
        # whether the daemon drained cleanly (the finally below is an
        # idempotent safety net for the exception paths).
        for client in clients.values():
            await client.close(bye=True)
        drained = await daemon.stop(drain=True)
        note(f"daemon stopped drained={drained}")

        trace_files = _write_lanes(lane_tracers, trace_dir)
        for label, path in trace_files.items():
            note(f"trace lane {label} -> {path}")

        return NetdReport(
            scenario=scenario.name,
            seed=scenario.seed,
            published=published,
            final_stamp=latest_stamp,
            states=states,
            unreachable=unreachable,
            stats=stats,
            convergence=convergence,
            drained=drained,
            log=log,
            trace_files=trace_files,
            postmortems=list(daemon.postmortems),
        )
    finally:
        for client in clients.values():
            await client.close(bye=False)
        for proxy in proxies.values():
            await proxy.stop()
        await daemon.stop(drain=False)
        _write_lanes(lane_tracers, trace_dir)
        if owns_journal_dir:
            shutil.rmtree(journal_dir, ignore_errors=True)


async def _run_mesh(
    scenario: Scenario,
    deltas: bool,
    journal_dir: str | Path | None,
    time_scale: float,
    use_chaos: bool,
    max_queue: int,
    ack_timeout: float,
    anti_entropy_limit: int,
    node_cap: int | None,
    tracer: Tracer,
    metrics: MetricsRegistry | None,
    trace_dir: str | Path | None = None,
) -> NetdReport:
    """Run a relay-topology scenario: one daemon *per peer*, real hops.

    The mesh twin of the star path above.  Every peer runs in its own
    :class:`~repro.netd.SyncDaemon` on a unix socket; relay links are
    the daemons' own relay subscriptions (an applied round is pushed to
    the downstream daemon over the frame protocol), so a 3-hop chain
    exchanges state over three real socket connections.  Chaos proxies
    sit on faulted links, :class:`~repro.net.Crash` maps to
    :meth:`~repro.netd.SyncDaemon.abort` — ``kill -9`` of that whole
    daemon — and :class:`~repro.net.Restart` boots a fresh daemon on the
    same journals and socket path.  Anti-entropy is path-aware: a
    lagging peer is repaired from its healthiest caught-up upstream
    (per-link scores), never from an origin it may not be adjacent to.
    """
    owns_journal_dir = journal_dir is None
    if owns_journal_dir:
        journal_dir = tempfile.mkdtemp(prefix=f"repro-netd-{scenario.name}-")
    journal_dir = Path(journal_dir)
    journal_dir.mkdir(parents=True, exist_ok=True)
    # Unix socket paths live in their own short-lived directory: journal
    # dirs (pytest tmp paths) can exceed the ~100-char sun_path limit.
    socket_dir = Path(tempfile.mkdtemp(prefix="repro-mesh-"))
    log: list[str] = []
    virtual_now = 0.0

    lane_tracers: dict[str, Tracer] = {}
    if trace_dir is not None:
        trace_dir = Path(trace_dir)
        trace_dir.mkdir(parents=True, exist_ok=True)
        lane_tracers["publisher"] = Tracer()
        lane_tracers["daemon"] = Tracer()
        if use_chaos:
            lane_tracers["chaos"] = Tracer()
    publisher_tracer = lane_tracers.get("publisher", tracer)
    daemon_tracer = lane_tracers.get("daemon", tracer)
    chaos_tracer = lane_tracers.get("chaos", tracer)

    def note(text: str) -> None:
        log.append(f"t={virtual_now:07.3f} {text}")

    feed = scenario.publisher
    links = scenario.relay_links
    socket_of = {peer: str(socket_dir / f"{peer}.sock") for peer in scenario.peers}

    proxies: dict[tuple[str, str], ChaosProxy] = {}
    daemons: dict[str, SyncDaemon] = {}
    clients: dict[str, PublisherClient] = {}
    crashed: set[str] = set()
    groups: tuple[frozenset[str], ...] | None = None
    scorer = PeerScorer(metrics=metrics, prefix="netd")
    postmortems: list[Path] = []

    def link_address(sender: str, recipient: str):
        proxy = proxies.get((sender, recipient))
        return proxy.address if proxy is not None else socket_of[recipient]

    def relay_config(peer: str) -> dict[str, list[tuple[str, object]]]:
        downstream = [
            (link.recipient, link_address(peer, link.recipient))
            for link in scenario.downstream(peer, feed)
        ]
        return {peer: downstream} if downstream else {}

    async def boot_daemon(peer: str) -> SyncDaemon:
        path = Path(socket_of[peer])
        if path.exists():
            # A previous incarnation's socket file; the new server must
            # bind the same address relay pumps keep dialing.
            path.unlink()
        daemon = SyncDaemon(
            scenario.setting,
            [peer],
            listen=socket_of[peer],
            journal_dir=journal_dir / peer,
            pinned={peer: scenario.pinned[peer]} if peer in scenario.pinned else None,
            node_cap=node_cap,
            heartbeat_interval=5.0,
            idle_timeout=60.0,
            max_queue=max_queue,
            tracer=daemon_tracer,
            metrics=metrics,
            relays=relay_config(peer),
        )
        await daemon.start()
        daemons[peer] = daemon
        return daemon

    try:
        # Chaos proxies first: relay configs point at them.  Every link
        # gets one under chaos (schedule may be None — the proxy still
        # enforces partitions); clean runs dial daemons directly.
        if use_chaos:
            for link in links:
                proxy = ChaosProxy(
                    upstream=socket_of[link.recipient],
                    schedule=scenario.faults.get((link.sender, link.recipient)),
                    latency=scenario.latency,
                    reorder_delay=scenario.reorder_delay,
                    time_scale=time_scale,
                    tracer=chaos_tracer,
                    metrics=metrics,
                )
                await proxy.start()
                proxies[(link.sender, link.recipient)] = proxy
        for peer in scenario.peers:
            await boot_daemon(peer)
            note(f"daemon {peer} serving {socket_of[peer]}")
        for link in scenario.downstream(feed, feed):
            client = PublisherClient(
                link_address(feed, link.recipient),
                link.recipient,
                sender=feed,
                deltas=deltas,
                retry=RetryPolicy(
                    max_attempts=3,
                    base_delay=0.02,
                    max_delay=0.1,
                    seed=scenario.seed,
                ),
                max_queue=max_queue,
                ack_timeout=ack_timeout,
                heartbeat_interval=1.0,
                tracer=publisher_tracer,
                metrics=metrics,
            )
            await client.start()
            clients[link.recipient] = client

        # ---- the timeline, in simulator order
        timeline: list[tuple[float, int, int, object]] = []
        order = 0
        for index in range(len(scenario.snapshots)):
            timeline.append((index * scenario.interval, _PUBLISH, order, index))
            order += 1
        for event in scenario.events:
            timeline.append((event.at, _CONTROL, order, event))
            order += 1
        timeline.sort()

        epoch, seq = 1, 0
        published = 0
        published_stamps: list[Stamp] = []
        latest_stamp: Stamp | None = None
        latest_snapshot: Instance | None = None

        def apply_partition() -> None:
            for (sender, recipient), proxy in proxies.items():
                if groups is not None and _severed(sender, recipient, groups):
                    proxy.partition()
                else:
                    proxy.heal()

        for at, kind, _order, payload in timeline:
            if at > virtual_now:
                await asyncio.sleep((at - virtual_now) * time_scale)
                virtual_now = at
            if kind == _PUBLISH:
                snapshot = scenario.snapshots[payload]
                seq += 1
                stamp = Stamp(epoch, seq)
                latest_stamp, latest_snapshot = stamp, snapshot
                published_stamps.append(stamp)
                published += 1
                note(f"publish stamp={stamp} facts={len(snapshot)}")
                for peer, client in clients.items():
                    await client.offer(stamp, snapshot)
            elif isinstance(payload, Partition):
                rendered = [",".join(sorted(group)) for group in payload.groups]
                note(f"partition {'|'.join(rendered)}")
                groups = payload.groups
                apply_partition()
            elif isinstance(payload, Heal):
                note("heal")
                groups = None
                apply_partition()
            elif isinstance(payload, Crash):
                # kill -9 of that peer's whole daemon: no drain, no BYE;
                # only its fsynced journal survives for the restart.
                note(f"crash {payload.peer} (daemon abort)")
                daemon = daemons[payload.peer]
                daemon.abort()
                postmortems.extend(daemon.postmortems)
                crashed.add(payload.peer)
            elif isinstance(payload, Restart):
                daemon = await boot_daemon(payload.peer)
                crashed.discard(payload.peer)
                note(
                    f"restart {payload.peer} "
                    f"stamp={daemon.watermark(payload.peer)}"
                )
            elif isinstance(payload, BumpEpoch):
                epoch += 1
                seq = 0
                for client in clients.values():
                    client.rebase()
                note(f"epoch-bump epoch={epoch}")

        # ---- quiescence: drain the publisher, then let forwards settle
        for client in clients.values():
            await client.drain(timeout=30.0)
        await _settle(daemons, crashed)
        note("quiescent")

        # Fold the publisher's own link outcomes into the mesh scorer so
        # repair ranking sees first-hop health too.
        for peer, client in clients.items():
            for outcome in client.outcomes.values():
                scorer.record((feed, peer), outcome.replace("-", "_"))

        def link_score(sender: str, recipient: str) -> float:
            if sender in daemons:
                return daemons[sender].scorer.score((sender, recipient))
            return scorer.score((sender, recipient))

        # ---- path-aware anti-entropy: repair each lagging peer from its
        # healthiest caught-up upstream neighbor, cascading hop by hop.
        anti_entropy = 0
        if latest_snapshot is not None:
            for round_number in range(1, anti_entropy_limit + 1):
                lagging = [
                    peer
                    for peer in scenario.peers
                    if peer not in crashed
                    and _mesh_reachable(scenario, peer, crashed, groups)
                    and _behind(daemons[peer].watermark(peer), latest_stamp)
                ]
                if not lagging:
                    break
                repaired_any = False
                for peer in lagging:
                    candidates = []
                    for link in scenario.upstreams(peer, feed):
                        sender = link.sender
                        if groups is not None and _severed(sender, peer, groups):
                            continue
                        if sender != feed:
                            if sender in crashed or _behind(
                                daemons[sender].watermark(sender), latest_stamp
                            ):
                                continue
                        candidates.append(sender)
                    if not candidates:
                        continue
                    upstream = sorted(
                        candidates,
                        key=lambda sender: (-link_score(sender, peer), sender),
                    )[0]
                    if upstream == feed:
                        payload_snapshot = latest_snapshot
                    else:
                        payload_snapshot = daemons[upstream].peer_source(upstream)
                        if payload_snapshot is None:
                            continue
                    anti_entropy += 1
                    repaired_any = True
                    if metrics is not None:
                        metrics.counter("netd.anti_entropy").inc()
                    repair = PublisherClient(
                        socket_of[peer],
                        peer,
                        sender=upstream,
                        ack_timeout=max(1.0, ack_timeout),
                        tracer=publisher_tracer,
                        metrics=metrics,
                    )
                    await repair.start()
                    outcome = await repair.publish(latest_stamp, payload_snapshot)
                    await repair.close()
                    scorer.record((upstream, peer), outcome.replace("-", "_"))
                    note(
                        f"anti-entropy round={round_number} peer={peer} "
                        f"via={upstream} stamp={latest_stamp} -> {outcome}"
                    )
                if not repaired_any:
                    break

        # ---- collect final states and judge with the shared oracle
        states: dict[str, Instance] = {}
        unreachable: list[str] = []
        watermarks: dict[str, Stamp | None] = {}
        for peer in scenario.peers:
            watermarks[peer] = (
                daemons[peer].watermark(peer) if peer not in crashed else None
            )
            if peer not in crashed and _mesh_reachable(
                scenario, peer, crashed, groups
            ):
                states[peer] = daemons[peer].peer_state(peer)
            else:
                unreachable.append(peer)
        convergence = check_convergence(
            scenario, states, unreachable,
            watermarks=watermarks, published=published_stamps,
        )
        note(
            "convergence "
            + (
                " ".join(
                    f"{name}={'ok' if ok else 'DIVERGED'}"
                    for name, ok in sorted(convergence.peers.items())
                )
                if convergence.peers
                else "vacuous (no reachable peers)"
            )
        )

        stats: dict[str, int] = {"anti_entropy": anti_entropy}
        for client in clients.values():
            for key, value in client.stats.items():
                stats[key] = stats.get(key, 0) + value
        for proxy in proxies.values():
            for key, value in proxy.stats.items():
                stats[f"chaos_{key}"] = stats.get(f"chaos_{key}", 0) + value
        for peer, daemon in daemons.items():
            stats["forwarded"] = stats.get("forwarded", 0) + daemon.stats["forwarded"]
            for host in daemon.hosts.values():
                for key, value in host.stats.items():
                    stats[f"daemon_{key}"] = stats.get(f"daemon_{key}", 0) + value

        scores = scorer.snapshot()
        for daemon in daemons.values():
            scores.update(daemon.scorer.snapshot())

        drained = True
        for peer, client in clients.items():
            await client.close(bye=True)
        for peer, daemon in daemons.items():
            if peer in crashed:
                continue
            drained = await daemon.stop(drain=True) and drained
            postmortems.extend(
                path for path in daemon.postmortems if path not in postmortems
            )
        note(f"daemons stopped drained={drained}")

        trace_files = _write_lanes(lane_tracers, trace_dir)
        for label, path in trace_files.items():
            note(f"trace lane {label} -> {path}")

        return NetdReport(
            scenario=scenario.name,
            seed=scenario.seed,
            published=published,
            final_stamp=latest_stamp,
            states=states,
            unreachable=unreachable,
            stats=stats,
            convergence=convergence,
            drained=drained,
            log=log,
            trace_files=trace_files,
            postmortems=postmortems,
            scores=scores,
        )
    finally:
        for client in clients.values():
            await client.close(bye=False)
        for proxy in proxies.values():
            await proxy.stop()
        for daemon in daemons.values():
            await daemon.stop(drain=False)
        _write_lanes(lane_tracers, trace_dir)
        shutil.rmtree(socket_dir, ignore_errors=True)
        if owns_journal_dir:
            shutil.rmtree(journal_dir, ignore_errors=True)


async def _settle(
    daemons: dict[str, SyncDaemon], crashed: set[str], deadline: float = 5.0
) -> None:
    """Wait for relay forwards to stop propagating (watermarks stable).

    The publisher's drain only covers first-hop deliveries; forwarded
    rounds are still in flight down the mesh.  Settling = every live
    daemon's relay queues empty and no watermark moved for a few ticks.
    """
    loop = asyncio.get_running_loop()
    end = loop.time() + deadline
    last: tuple = ()
    stable = 0
    while loop.time() < end:
        snapshot = tuple(
            (peer, daemon.watermark(peer))
            for peer, daemon in sorted(daemons.items())
            if peer not in crashed
        )
        busy = any(
            not queue.empty()
            for peer, daemon in daemons.items()
            if peer not in crashed
            for queue in daemon._relay_queues.values()
        )
        if snapshot == last and not busy:
            stable += 1
            if stable >= 3:
                return
        else:
            stable = 0
        last = snapshot
        await asyncio.sleep(0.05)


def _mesh_reachable(
    scenario: Scenario,
    peer: str,
    crashed: set[str],
    groups: tuple[frozenset[str], ...] | None,
) -> bool:
    """Does a live, unsevered relay path lead from the feed to ``peer``?

    The harness twin of the simulator's path-based reachability: BFS
    over custody-carrying links, skipping crashed daemons and links the
    current partition severs.
    """
    feed = scenario.publisher
    seen = {feed}
    frontier = [feed]
    while frontier:
        current = frontier.pop(0)
        for link in scenario.downstream(current, feed):
            nxt = link.recipient
            if nxt in seen or nxt in crashed:
                continue
            if groups is not None and _severed(current, nxt, groups):
                continue
            if nxt == peer:
                return True
            seen.add(nxt)
            frontier.append(nxt)
    return False


def _write_lanes(
    lane_tracers: dict[str, Tracer], trace_dir: str | Path | None
) -> dict[str, Path]:
    """Write one JSONL trace file per component lane (idempotent)."""
    if trace_dir is None or not lane_tracers:
        return {}
    trace_files: dict[str, Path] = {}
    for label, lane in lane_tracers.items():
        path = Path(trace_dir) / f"{label}.jsonl"
        write_trace_jsonl(lane, path)
        trace_files[label] = path
    return trace_files


def _severed(
    publisher: str, peer: str, groups: tuple[frozenset[str], ...]
) -> bool:
    """Does this partition separate ``peer`` from ``publisher``?

    Mirrors :meth:`repro.net.SimTransport.connected`: peers named in no
    group share an implicit remainder group.
    """
    group_of_publisher = group_of_peer = None
    for group in groups:
        if publisher in group:
            group_of_publisher = group
        if peer in group:
            group_of_peer = group
    return group_of_publisher is not group_of_peer


def _reachable(
    peer: str, crashed: set[str], proxies: dict[str, ChaosProxy]
) -> bool:
    if peer in crashed:
        return False
    proxy = proxies.get(peer)
    return proxy is None or not proxy.partitioned


def _behind(watermark: Stamp | None, latest: Stamp | None) -> bool:
    if latest is None:
        return False
    return watermark is None or watermark < latest
