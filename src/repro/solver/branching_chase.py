"""Complete solver for settings with target constraints (Σ_t ≠ ∅).

Theorem 1 places ``SOL(P)`` in NP when ``Σ_t`` is a union of egds and a
weakly acyclic set of tgds.  The certificate behind that bound is a *small*
solution produced by a solution-aware chase (Lemma 2): every existential
variable is witnessed either by a fresh value or by a value already
present.  This module searches that certificate space directly:

* **egd steps** are deterministic: the two values are merged (nulls give
  way to constants); equating two distinct constants kills the branch
  (the ``⊥`` of Definition 6);
* **tgd steps** (for violated ``Σ_st`` or ``Σ_t`` tgds) branch over the
  possible witnesses of each existential variable — any value of
  ``adom(I) ∪ adom(K)`` or a fresh null;
* **Σ_ts pruning**: a premise of a target-to-source tgd whose exported
  values are all constants and whose conclusion cannot embed into ``I``
  can never be repaired (the source is immutable and target facts are
  never retracted), so the branch dies immediately.  Premises exporting
  nulls are re-checked only at branch completion, because an egd may still
  merge the null into a usable constant.

A branch with no applicable dependency whose instance satisfies ``Σ_ts``
is a solution.  Failed sub-states are memoized, which collapses the many
witness orderings that lead to the same instance.

Weak acyclicity of the target tgds (checked up front) bounds the chase
depth of every branch, so the search terminates; a node budget guards
experiment code against the exponential worst case that Theorem 3 makes
unavoidable.
"""

from __future__ import annotations

import itertools
from typing import Iterator

from repro.core.atoms import Atom, Fact
from repro.core.dependencies import EGD, TGD, DisjunctiveTGD
from repro.core.homomorphism import find_homomorphism, iter_homomorphisms
from repro.core.instance import Instance
from repro.core.setting import PDESetting
from repro.core.terms import (
    Constant,
    InstanceTerm,
    Null,
    NullFactory,
    Variable,
    is_null,
    is_variable,
    term_sort_key,
)
from repro.exceptions import BudgetExceeded, SolverError
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.runtime.budget import DEFAULT_NODE_CAP, Budget, SolveStatus
from repro.solver.results import SolveResult

__all__ = ["BranchingChaseSolver", "exists_solution_branching"]

#: Default ceiling on search nodes (one shared home: :mod:`repro.runtime`).
DEFAULT_NODE_BUDGET = DEFAULT_NODE_CAP


def _instantiate(atoms: tuple[Atom, ...], assignment: dict[Variable, InstanceTerm]) -> list[Fact]:
    facts = []
    for atom in atoms:
        args = [
            assignment[arg] if is_variable(arg) else arg  # type: ignore[index]
            for arg in atom.args
        ]
        facts.append(Fact(atom.relation, args))  # type: ignore[arg-type]
    return facts


class BranchingChaseSolver:
    """Search over solution-aware chase branches for one ``(I, J)`` input."""

    def __init__(
        self,
        setting: PDESetting,
        source: Instance,
        target: Instance,
        node_budget: int | None = DEFAULT_NODE_BUDGET,
        require_weak_acyclicity: bool = True,
        budget: Budget | None = None,
    ):
        setting.validate_source_instance(source)
        setting.validate_target_instance(target)
        if require_weak_acyclicity and not setting.target_tgds_weakly_acyclic():
            raise SolverError(
                "the branching-chase solver requires weakly acyclic target "
                "tgds (the hypothesis of Theorem 1); pass "
                "require_weak_acyclicity=False to try anyway"
            )
        self.setting = setting
        self.source = source
        self.target = target
        if budget is None:
            budget = Budget.from_legacy(node_budget)
        self.budget = budget
        self.stats: dict[str, int] = {"nodes": 0, "egd_merges": 0, "branch_failures": 0}
        self._nulls = NullFactory.above(target.nulls())
        self._failed: set[frozenset] = set()

    # ------------------------------------------------------------------
    # dependency checks
    # ------------------------------------------------------------------

    def _state_key(self, k: Instance) -> frozenset:
        return frozenset((fact.relation, fact.args) for fact in k)

    def _apply_egds(self, k: Instance) -> Instance | None:
        """Apply the target egds to a fixpoint; None signals branch failure."""
        changed = True
        while changed:
            changed = False
            for egd in self.setting.target_egds():
                for assignment in iter_homomorphisms(egd.body, k):
                    left = assignment[egd.left]
                    right = assignment[egd.right]
                    if left == right:
                        continue
                    if isinstance(left, Constant) and isinstance(right, Constant):
                        self.stats["branch_failures"] += 1
                        return None
                    if isinstance(left, Constant):
                        kept, dropped = left, right
                    elif isinstance(right, Constant):
                        kept, dropped = right, left
                    else:
                        kept, dropped = sorted((left, right))  # type: ignore[type-var]
                    k = k.rename({dropped: kept})
                    self.stats["egd_merges"] += 1
                    changed = True
                    break
                if changed:
                    break
        return k

    def _ts_violation(self, k: Instance, constants_only: bool) -> bool:
        """Is some ``Σ_ts`` premise in ``k`` without a conclusion in ``I``?

        With ``constants_only`` True, only premises whose exported values
        are all constants count (the irreparable ones used for pruning).
        """
        for dependency in self.setting.sigma_ts:
            body_variables = dependency.body_variables()
            for assignment in iter_homomorphisms(dependency.body, k):
                exported = {
                    variable: value
                    for variable, value in assignment.items()
                    if variable in body_variables
                }
                if constants_only and any(is_null(v) for v in exported.values()):
                    continue
                if not self._conclusion_holds(dependency, exported):
                    return True
        return False

    def _conclusion_holds(self, dependency, exported: dict[Variable, InstanceTerm]) -> bool:
        if isinstance(dependency, TGD):
            relevant = self._restrict(exported, dependency.head)
            return find_homomorphism(dependency.head, self.source, relevant) is not None
        for disjunct in dependency.disjuncts:
            relevant = self._restrict(exported, disjunct)
            if find_homomorphism(list(disjunct), self.source, relevant) is not None:
                return True
        return False

    @staticmethod
    def _restrict(exported: dict[Variable, InstanceTerm], atoms) -> dict[Variable, InstanceTerm]:
        used: set[Variable] = set()
        for atom in atoms:
            used |= atom.variables()
        return {v: value for v, value in exported.items() if v in used}

    def _violated_tgd(
        self, k: Instance
    ) -> tuple[TGD, dict[Variable, InstanceTerm]] | None:
        """Find a violated Σ_st or Σ_t tgd, with its body assignment."""
        combined = self.setting.combine(self.source, k)
        for tgd in self.setting.sigma_st:
            for assignment in iter_homomorphisms(tgd.body, combined):
                frontier = {
                    v: assignment[v] for v in tgd.frontier_variables()
                }
                if find_homomorphism(tgd.head, k, frontier) is None:
                    return tgd, assignment
        for tgd in self.setting.target_tgds():
            for assignment in iter_homomorphisms(tgd.body, k):
                frontier = {
                    v: assignment[v] for v in tgd.frontier_variables()
                }
                if find_homomorphism(tgd.head, k, frontier) is None:
                    return tgd, assignment
        return None

    # ------------------------------------------------------------------
    # the search
    # ------------------------------------------------------------------

    def iter_solutions(self) -> Iterator[Instance]:
        """Yield the solutions reachable by the branching chase.

        The yielded family contains a sub-instance of every solution, so it
        suffices both for deciding existence and for certain answers of
        monotone queries.
        """
        yield from self._expand(self.target.copy())

    def _expand(self, k: Instance) -> Iterator[Instance]:
        self.stats["nodes"] += 1
        if self.budget is not None:
            self.budget.charge_node()
        merged = self._apply_egds(k)
        if merged is None:
            return
        k = merged
        key = self._state_key(k)
        if key in self._failed:
            return
        if self._ts_violation(k, constants_only=True):
            self.stats["branch_failures"] += 1
            self._failed.add(key)
            return

        violated = self._violated_tgd(k)
        if violated is None:
            # Chase-complete: accept iff Σ_ts holds in full.
            if self._ts_violation(k, constants_only=False):
                self.stats["branch_failures"] += 1
                self._failed.add(key)
                return
            yield k
            return

        tgd, assignment = violated
        existentials = sorted(tgd.existential_variables(), key=lambda v: v.name)
        domain: list[InstanceTerm] = sorted(
            set(self.source.active_domain()) | set(k.active_domain()),
            key=term_sort_key,
        )
        produced = False
        fresh = {variable: self._nulls.fresh(hint=variable.name) for variable in existentials}
        # With Σ_ts obligations, witnesses usually must be source constants,
        # so try the active domain first; without them, a fresh null always
        # works (plain data exchange) and should be tried first.
        if self.setting.sigma_ts:
            options = [[*domain, fresh[variable]] for variable in existentials]
        else:
            options = [[fresh[variable], *domain] for variable in existentials]
        for choice in itertools.product(*options):
            extended = dict(assignment)
            extended.update(zip(existentials, choice))
            child = k.copy()
            child.add_all(_instantiate(tgd.head, extended))
            for solution in self._expand(child):
                produced = True
                yield solution
        if not produced:
            self._failed.add(key)


def exists_solution_branching(
    setting: PDESetting,
    source: Instance,
    target: Instance,
    node_budget: int | None = DEFAULT_NODE_BUDGET,
    require_weak_acyclicity: bool = True,
    budget: Budget | None = None,
    tracer: Tracer | None = None,
) -> SolveResult:
    """Decide ``SOL(P)(I, J)`` with the branching-chase solver.

    Complete for ``Σ_t`` = egds + weakly acyclic tgds (and, a fortiori,
    ``Σ_t = ∅``, though the valuation search is faster there).

    With a non-strict ``budget``, exhaustion (caps, deadline, or
    cancellation) degrades into a partial :class:`SolveResult` whose
    ``status`` names what ran out; the legacy ``node_budget`` path (and
    any ``strict`` budget) raises :class:`~repro.exceptions.BudgetExceeded`
    instead.

    A ``tracer`` records one ``branching-chase`` span; the solver's
    counters (nodes, egd merges, branch failures) are folded into the
    span at exit.
    """
    if tracer is None:
        tracer = NULL_TRACER
    solver = BranchingChaseSolver(
        setting,
        source,
        target,
        node_budget=node_budget,
        require_weak_acyclicity=require_weak_acyclicity,
        budget=budget,
    )

    def stats() -> dict:
        merged = dict(solver.stats)
        if solver.budget is not None:
            merged.update(solver.budget.snapshot())
        return merged

    def note(span, exists: bool | None) -> None:
        if not tracer.enabled:
            return
        for key, value in solver.stats.items():
            span.add(key, value)
        if exists is not None:
            span.set("exists", exists)

    with tracer.span("branching-chase") as span:
        try:
            for solution in solver.iter_solutions():
                note(span, True)
                return SolveResult(
                    exists=True,
                    solution=solution,
                    method="branching-chase",
                    stats=stats(),
                )
        except BudgetExceeded as exhausted:
            note(span, None)
            if solver.budget is None or solver.budget.strict:
                raise
            return SolveResult(
                exists=False,
                method="branching-chase",
                stats=stats(),
                status=SolveStatus(exhausted.status),
                reason=str(exhausted),
            )
        note(span, False)
        return SolveResult(exists=False, method="branching-chase", stats=stats())
