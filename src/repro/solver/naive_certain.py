"""Naive evaluation on the canonical instance: a sound, polynomial
under-approximation of certain answers.

The paper leaves the complexity of certain answers for ``C_tract`` open
(Conclusions).  This module implements the classical *naive evaluation*
technique from data exchange, adapted to PDE: evaluate the query over the
canonical pre-solution ``J_can`` (the ``Σ_st``-chase of ``(I, J)``) and
keep only the null-free answers.

**Soundness.**  Every solution ``J_sol`` contains a constant-preserving
homomorphic image ``h(J_can)`` (Lemma 3).  If ``t ∈ q(J_can)`` is
null-free, then by monotonicity and homomorphism-preservation
``h(t) = t ∈ q(J_sol)`` — so ``t`` is a certain answer whenever at least
one solution exists (and vacuously otherwise).

**Incompleteness.**  The converse can fail: an answer may be certain
because *every* consistent valuation of the nulls produces it, without
being witnessed null-freely in ``J_can`` itself (e.g. when ``Σ_ts`` forces
a null to a unique constant).  ``certain_answers`` remains the exact
procedure; this one is the polynomial-time screen to run first.

For plain data exchange (``Σ_ts = ∅``, ``Σ_t`` weakly acyclic), naive
evaluation over the chase is exact for unions of conjunctive queries
[FKMP03]; the tests exercise both the agreement there and the strictness
of the approximation in genuine PDE settings.
"""

from __future__ import annotations

from repro.core.chase import chase
from repro.core.instance import Instance
from repro.core.query import ConjunctiveQuery, UnionOfConjunctiveQueries
from repro.core.setting import PDESetting
from repro.core.terms import InstanceTerm
from repro.solver.results import CertainAnswerResult

__all__ = ["naive_certain_answers"]

Query = ConjunctiveQuery | UnionOfConjunctiveQueries


def naive_certain_answers(
    setting: PDESetting,
    query: Query,
    source: Instance,
    target: Instance,
) -> CertainAnswerResult:
    """Compute the naive-evaluation under-approximation of certain answers.

    Evaluates ``query`` over ``J_can`` (the ``Σ_st ∪ Σ_t``-chase of
    ``(I, J)``) and returns its null-free answers.  Every returned tuple is
    a genuine certain answer *provided a solution exists*; the result's
    ``stats["sound_if_solvable"]`` flag records this caveat — callers that
    need an unconditional answer should first check solvability (or use
    :func:`repro.solver.certain_answers`).

    Runs in polynomial time: one chase plus one query evaluation — no
    search over valuations.
    """
    from repro.exceptions import ChaseFailure

    combined = setting.combine(source, target)
    dependencies = list(setting.sigma_st)
    # Target tgds/egds refine J_can and can only make naive evaluation more
    # precise; they are safe to chase alongside (still a sub-instance of
    # every solution up to homomorphism).
    dependencies += list(setting.sigma_t)
    try:
        chased = chase(combined, dependencies)
    except ChaseFailure:
        # A failing egd chase certifies that no solution exists: the
        # canonical instance maps into every solution, so the constant
        # clash would occur there too.  Certain answers are vacuous.
        vacuous: set[tuple[InstanceTerm, ...]] = {()} if query.arity == 0 else set()
        return CertainAnswerResult(
            answers=vacuous,
            solutions_exist=False,
            stats={"chase_failed": True},
        )
    j_can = chased.instance.restrict_to(setting.target_schema)

    answers: set[tuple[InstanceTerm, ...]]
    if query.arity == 0:
        answers = {()} if query.holds(j_can) else set()
    else:
        answers = query.answers(j_can, allow_nulls=False)
    return CertainAnswerResult(
        answers=answers,
        solutions_exist=True,  # not decided here; see the docstring
        stats={
            "j_can_size": len(j_can),
            "chase_steps": chased.step_count,
            "sound_if_solvable": True,
        },
    )
