"""Solution enumeration and the brute-force reference solver.

``enumerate_solutions`` yields a family of solutions that contains a
sub-instance of every solution (the "minimal" family used by the certain-
answers machinery).  ``brute_force_exists`` is an independent, maximally
naive decision procedure used by the test suite to cross-validate the real
solvers on tiny inputs: it enumerates *every* target instance over a
bounded value pool and tests Definition 2 directly.
"""

from __future__ import annotations

import itertools
import warnings
from typing import Iterator

from repro.core.atoms import Fact
from repro.core.instance import Instance
from repro.core.setting import PDESetting
from repro.core.terms import Constant, InstanceTerm, term_sort_key
from repro.runtime.budget import DEFAULT_NODE_CAP, Budget
from repro.solver.branching_chase import BranchingChaseSolver
from repro.solver.valuation_search import (
    iter_minimal_solutions,
    supports_valuation_search,
)

__all__ = ["enumerate_solutions", "brute_force_exists", "minimal_solution_sizes"]


def enumerate_solutions(
    setting: PDESetting,
    source: Instance,
    target: Instance,
    limit: int | None = None,
    node_budget: int | None = None,
    budget: Budget | None = None,
) -> Iterator[Instance]:
    """Yield (deduplicated) minimal solutions for ``(source, target)``.

    For ``Σ_t = ∅`` these are the consistent valuations of the nulls of
    ``J_can``; otherwise they are the terminal instances of the branching
    chase.  ``limit`` caps the number of yielded solutions.

    Generators cannot return a partial result, so budget exhaustion always
    raises :class:`~repro.exceptions.BudgetExceeded`, strict or not.

    .. deprecated::
        ``node_budget`` — pass ``budget=Budget(node_cap=..., strict=True)``
        (or :meth:`Budget.from_node_budget`) instead.  When both are given,
        ``budget`` wins.
    """
    if node_budget is not None:
        warnings.warn(
            "enumerate_solutions(node_budget=...) is deprecated; pass "
            "budget=Budget.from_node_budget(node_budget) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        if budget is None:
            budget = Budget.from_node_budget(node_budget)
    if supports_valuation_search(setting):
        iterator: Iterator[Instance] = iter_minimal_solutions(
            setting, source, target, budget=budget
        )
    else:
        solver = BranchingChaseSolver(
            setting, source, target,
            budget=budget if budget is not None
            else Budget.from_node_budget(DEFAULT_NODE_CAP),
        )

        def deduplicated() -> Iterator[Instance]:
            seen: set[frozenset] = set()
            for solution in solver.iter_solutions():
                key = frozenset((fact.relation, fact.args) for fact in solution)
                if key not in seen:
                    seen.add(key)
                    yield solution

        iterator = deduplicated()
    for index, solution in enumerate(iterator):
        if limit is not None and index >= limit:
            return
        yield solution


def minimal_solution_sizes(
    setting: PDESetting,
    source: Instance,
    target: Instance,
    limit: int | None = 64,
) -> list[int]:
    """Return the sizes of (up to ``limit``) minimal solutions.

    Used by the Lemma 2 experiment: every size must be polynomial in
    ``len(source) + len(target)`` — in fact bounded by ``|J_can|``.
    """
    return [len(s) for s in enumerate_solutions(setting, source, target, limit=limit)]


def _candidate_facts(
    setting: PDESetting, values: list[InstanceTerm]
) -> list[Fact]:
    """Every possible target fact over the given value pool."""
    facts = []
    for relation in setting.target_schema:
        for combo in itertools.product(values, repeat=relation.arity):
            facts.append(Fact(relation.name, combo))
    return facts


def brute_force_exists(
    setting: PDESetting,
    source: Instance,
    target: Instance,
    extra_fresh: int = 1,
    max_added_facts: int | None = None,
) -> bool:
    """Decide SOL(P) by exhaustive enumeration (tiny inputs only).

    Enumerates every superset of ``target`` over the active domain plus
    ``extra_fresh`` fresh constants, up to ``max_added_facts`` added facts,
    and applies Definition 2 verbatim.

    Two approximations make this tractable, both justified by the paper:

    * *value pool*: by Lemma 2's small-solution argument, solutions only
      ever need values from the active domain plus a bounded number of
      fresh ones; ``extra_fresh`` controls the latter;
    * *size bound*: minimal solutions have at most ``|J_can|`` facts plus
      the closure under ``Σ_t``; when ``max_added_facts`` is None, a bound
      derived from the ``Σ_st``-chase of the input is used.

    The test suite uses this solely as a cross-check oracle on tiny inputs.
    """
    values: list[InstanceTerm] = sorted(
        set(source.active_domain()) | set(target.active_domain()),
        key=term_sort_key,
    )
    values += [Constant(f"__fresh{i}") for i in range(extra_fresh)]
    pool = [fact for fact in _candidate_facts(setting, values) if fact not in target]

    if max_added_facts is None:
        from repro.core.chase import chase

        combined = setting.combine(source, target)
        chased = chase(combined, setting.sigma_st)
        j_can_size = len(chased.instance.restrict_to(setting.target_schema))
        # Slack for Σ_t tgd closures of the valued facts.
        max_added_facts = j_can_size + 2 * len(setting.target_tgds()) + 1

    for size in range(min(max_added_facts, len(pool)) + 1):
        for combo in itertools.combinations(pool, size):
            candidate = target.copy()
            candidate.add_all(combo)
            if setting.is_solution(source, target, candidate):
                return True
    return False
