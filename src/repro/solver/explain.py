"""Explanations for solution-existence outcomes.

When a sync fails, "no solution exists" is rarely enough for the person
operating the target peer — they need to know *which* data the source
refuses to vouch for.  This module turns solver outcomes into structured
explanations:

* ``solution-found`` — a witness and the solver that produced it;
* ``failing-block`` — for ``C_tract`` settings: the block of the canonical
  source requirement ``I_can`` that has no homomorphism into ``I``
  (Theorem 5's certificate of unsolvability), together with the ``Σ_ts``
  dependencies that generated it;
* ``ground-premise-violation`` — a target-to-source premise over *ground*
  facts (often facts of ``J`` itself) whose conclusion the source does not
  contain; such a premise can never be repaired, whatever the valuation;
* ``exhausted-search`` — the NP search ruled out every candidate; the
  explanation carries the search statistics, drawn from the
  :class:`repro.obs.MetricsRegistry` the solve is run under.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.blocks import decompose_into_blocks
from repro.core.dependencies import TGD, DisjunctiveTGD
from repro.core.homomorphism import find_homomorphism, has_instance_homomorphism, iter_homomorphisms
from repro.core.instance import Instance
from repro.core.setting import PDESetting
from repro.obs.metrics import MetricsRegistry
from repro.solver.exists_solution import solve
from repro.solver.tractable import canonical_instances
from repro.tractability.classifier import classify

__all__ = ["Explanation", "explain"]


@dataclass
class Explanation:
    """A structured account of a solution-existence outcome.

    Attributes:
        exists: whether a solution exists.
        reason: one of ``solution-found``, ``failing-block``,
            ``ground-premise-violation``, ``exhausted-search``.
        narrative: a human-readable multi-line summary.
        details: machine-readable payload (witness, failing facts, stats).
    """

    exists: bool
    reason: str
    narrative: str
    details: dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        return self.narrative


def _ground_premise_violation(
    setting: PDESetting, source: Instance, target_facts: Instance
) -> tuple | None:
    """Find a ``Σ_ts`` premise over ground target facts with no conclusion.

    Returns ``(dependency, bound_facts)`` or None.  Such a violation is a
    definitive certificate: the matched facts are in every candidate
    solution, the source is immutable, so no solution exists.
    """
    ground = Instance(schema=target_facts.schema)
    for fact in target_facts:
        if fact.is_ground():
            ground.add(fact)
    for dependency in setting.sigma_ts:
        body_variables = dependency.body_variables()
        for assignment in iter_homomorphisms(dependency.body, ground):
            exported = {
                variable: value
                for variable, value in assignment.items()
                if variable in body_variables
            }
            satisfied = False
            if isinstance(dependency, TGD):
                used = set().union(*(atom.variables() for atom in dependency.head))
                relevant = {v: value for v, value in exported.items() if v in used}
                satisfied = find_homomorphism(dependency.head, source, relevant) is not None
            elif isinstance(dependency, DisjunctiveTGD):
                for disjunct in dependency.disjuncts:
                    used = set().union(*(atom.variables() for atom in disjunct))
                    relevant = {v: value for v, value in exported.items() if v in used}
                    if find_homomorphism(list(disjunct), source, relevant) is not None:
                        satisfied = True
                        break
            if not satisfied:
                bound = [atom.substitute(assignment) for atom in dependency.body]
                return dependency, bound
    return None


def explain(setting: PDESetting, source: Instance, target: Instance) -> Explanation:
    """Solve ``(source, target)`` and explain the outcome.

    For ``C_tract`` settings, failures come with the Theorem 5 certificate
    (the non-embeddable block of ``I_can``); otherwise the explanation
    reports a definitive ground premise violation when one exists, or the
    exhausted-search statistics (taken from the
    :class:`repro.obs.MetricsRegistry` the solve runs under, so they are
    the same instruments a traced run would report).
    """
    registry = MetricsRegistry()
    result = solve(setting, source, target, metrics=registry)
    if result.exists:
        return Explanation(
            exists=True,
            reason="solution-found",
            narrative=(
                f"A solution exists (found by the {result.method} solver); "
                f"the witness adds {len(result.solution) - len(target)} facts "
                f"to the target."
            ),
            details={"solution": result.solution, "method": result.method,
                     "stats": result.stats},
        )

    report = classify(setting)
    if report.in_ctract:
        j_can, i_can, _stats = canonical_instances(setting, source, target)
        for block in decompose_into_blocks(i_can):
            if not has_instance_homomorphism(block.facts, source):
                if block.is_ground():
                    # For the ground block the certificate is exactly the
                    # missing facts; don't drown them in satisfied ones.
                    missing = Instance(schema=block.facts.schema)
                    for fact in block.facts:
                        if fact not in source:
                            missing.add(fact)
                    certificate = missing
                else:
                    certificate = block.facts
                facts = sorted(str(fact) for fact in certificate)
                narrative = (
                    "No solution exists. The target-to-source constraints "
                    "require the source to contain an embedding of these "
                    "I_can facts, and it does not:\n  "
                    + "\n  ".join(facts)
                )
                return Explanation(
                    exists=False,
                    reason="failing-block",
                    narrative=narrative,
                    details={"block": certificate, "nulls": set(block.nulls),
                             "j_can": j_can, "i_can": i_can},
                )

    # Generic settings: look for a definitive ground violation first.
    from repro.core.chase import chase

    combined = setting.combine(source, target)
    chased = chase(combined, setting.sigma_st)
    j_can = chased.instance.restrict_to(setting.target_schema)
    violation = _ground_premise_violation(setting, source, j_can)
    if violation is not None:
        dependency, bound = violation
        rendered = ", ".join(str(atom) for atom in bound)
        narrative = (
            f"No solution exists. The premise {{{rendered}}} of the "
            f"target-to-source dependency\n  {dependency}\nis forced into "
            f"every candidate solution, but the source contains no matching "
            f"conclusion (and the source cannot be modified)."
        )
        return Explanation(
            exists=False,
            reason="ground-premise-violation",
            narrative=narrative,
            details={"dependency": dependency, "premise": bound},
        )

    snapshot = registry.snapshot()
    narrative = (
        "No solution exists: the search ruled out every way of completing "
        "the canonical target instance "
        f"({snapshot['counters'].get('solve.nodes', '?')} search nodes "
        "explored)."
    )
    return Explanation(
        exists=False,
        reason="exhausted-search",
        narrative=narrative,
        details={"stats": result.stats, "metrics": snapshot},
    )
