"""Certain answers of target queries (Definition 4, Theorem 2).

A tuple ``t`` is a *certain answer* of a query ``q`` on ``(I, J)`` when
every solution ``J'`` satisfies ``q[t]``.  For monotone queries, Lemma 2
reduces the universal quantification over all (infinitely many) solutions
to the finite family of *minimal* solutions: if any solution falsifies
``q[t]``, the minimal solution beneath it falsifies it too, by
monotonicity.  The procedures here therefore search the minimal-solution
family for a falsifying witness — the complement problem is in NP, placing
certain answers in coNP exactly as Theorem 2 states.

For settings with ``Σ_t = ∅`` the minimal solutions are the consistent
valuations of the nulls of ``J_can`` (see
:mod:`repro.solver.valuation_search`); the falsification test is pushed
into the leaf predicate of that search, so pruning still applies.  For
settings with target constraints the branching-chase family is used.

Conventions: when *no* solution exists, every tuple is vacuously certain;
:class:`~repro.solver.results.CertainAnswerResult.solutions_exist` reports
this case so callers can distinguish it.
"""

from __future__ import annotations

import time
from typing import Iterable, Iterator

from repro.core.instance import Instance
from repro.core.query import ConjunctiveQuery, UnionOfConjunctiveQueries
from repro.core.setting import PDESetting
from repro.core.terms import InstanceTerm
from repro.exceptions import BudgetExceeded
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.runtime.budget import DEFAULT_NODE_CAP, Budget, SolveStatus
from repro.solver.branching_chase import BranchingChaseSolver
from repro.solver.results import CertainAnswerResult
from repro.solver.valuation_search import ValuationSearch, supports_valuation_search

__all__ = ["certain_answers", "is_certain"]

Query = ConjunctiveQuery | UnionOfConjunctiveQueries


def _minimal_solutions(
    setting: PDESetting,
    source: Instance,
    target: Instance,
    node_budget: int | None,
    query: Query | None = None,
    budget: Budget | None = None,
    tracer: Tracer | None = None,
) -> Iterator[Instance]:
    """Yield a family of solutions containing a sub-instance of every
    solution (up to renaming of nulls invisible to ``Σ_ts`` and ``query``)."""
    if supports_valuation_search(setting):
        relevant = (query,) if query is not None else ()
        search = ValuationSearch(
            setting,
            source,
            target,
            relevant_queries=relevant,
            budget=budget,
            tracer=tracer,
        )
        yield from search.iter_valuations(node_budget=node_budget)
    else:
        solver = BranchingChaseSolver(
            setting,
            source,
            target,
            node_budget=node_budget if node_budget is not None else DEFAULT_NODE_CAP,
            budget=budget,
        )
        yield from solver.iter_solutions()


def is_certain(
    setting: PDESetting,
    query: Query,
    source: Instance,
    target: Instance,
    answer: tuple[InstanceTerm, ...] = (),
    node_budget: int | None = None,
    budget: Budget | None = None,
    tracer: Tracer | None = None,
) -> bool:
    """Is ``answer`` a certain answer of ``query`` on ``(source, target)``?

    For a Boolean query pass the empty tuple.  Vacuously True when no
    solution exists.  ``query`` must be monotone (conjunctive queries and
    UCQs are); the procedure is unsound for non-monotone queries.

    A Boolean answer cannot express partiality, so budget exhaustion
    always raises :class:`~repro.exceptions.BudgetExceeded` here (strict
    or not); :func:`certain_answers` catches it and degrades.
    """
    if supports_valuation_search(setting):
        # Push the falsification test into the valuation search so its
        # pruning applies: accept only valuations falsifying q[answer].
        search = ValuationSearch(
            setting,
            source,
            target,
            relevant_queries=(query,),
            budget=budget,
            tracer=tracer,
        )
        for _falsifier in search.iter_valuations(
            leaf_predicate=lambda candidate: not query.holds(candidate, answer),
            node_budget=node_budget,
        ):
            return False
        return True
    for solution in _minimal_solutions(
        setting, source, target, node_budget, query=query, budget=budget, tracer=tracer
    ):
        if not query.holds(solution, answer):
            return False
    return True


def certain_answers(
    setting: PDESetting,
    query: Query,
    source: Instance,
    target: Instance,
    node_budget: int | None = None,
    budget: Budget | None = None,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
) -> CertainAnswerResult:
    """Compute the certain answers of ``query`` on ``(source, target)``.

    The candidate answers are the null-free answers of ``query`` on one
    (arbitrary) minimal solution — every certain answer must be among
    them.  Each candidate is then checked with :func:`is_certain`.

    For a Boolean query the result's :attr:`boolean_value` is the certain
    truth value.

    A single ``budget`` governs the whole computation (candidate discovery
    plus every per-candidate check).  With a non-strict budget, exhaustion
    degrades into a partial result: ``answers`` then holds only the tuples
    *confirmed* certain before the budget ran out (a sound
    under-approximation) and ``status`` names what ran out.

    Returns:
        a :class:`CertainAnswerResult`.  When no solution exists,
        ``solutions_exist`` is False and, per the standard convention,
        ``answers`` is ``{()}`` for Boolean queries (vacuously true) and
        the empty set otherwise (there are no candidate tuples to report).
    """
    stats: dict = {}
    if tracer is None:
        tracer = NULL_TRACER
    started = time.perf_counter() if metrics is not None else 0.0

    # As in solve(): when the caller supplies no budget, thread a strict
    # accounting substitute through the search so successful results still
    # carry the final node/step/fact consumption.  Raise-vs-degrade stays
    # keyed on the caller's ``budget``.  The substitute must never change
    # exhaustion behavior, so it is only used where it cannot raise: an
    # uncapped budget on the valuation route with no legacy cap.  With a
    # legacy ``node_budget`` (a *per-search* cap that a shared budget would
    # turn cumulative) or on the branching route (per-search default cap),
    # the historical plumbing is kept and no snapshot is recorded.
    if budget is not None:
        accounting: Budget | None = budget
    elif node_budget is None and supports_valuation_search(setting):
        accounting = Budget(strict=True)
    else:
        accounting = None

    def degraded(
        certain: set[tuple], solutions_exist: bool, exhausted: BudgetExceeded
    ) -> CertainAnswerResult:
        assert budget is not None
        stats.update(budget.snapshot())
        return CertainAnswerResult(
            answers=certain,
            solutions_exist=solutions_exist,
            stats=stats,
            status=SolveStatus(exhausted.status),
            reason=str(exhausted),
        )

    def finish(result: CertainAnswerResult) -> CertainAnswerResult:
        if metrics is not None:
            metrics.annotate("certain.status", result.status.value)
            metrics.gauge("certain.solutions_exist").set(int(result.solutions_exist))
            metrics.counter("certain.answers").inc(len(result.answers))
            metrics.absorb(result.stats, prefix="certain.")
            metrics.histogram("certain.duration_ms").observe(
                (time.perf_counter() - started) * 1000.0
            )
            result.metrics = metrics
        return result

    with tracer.span("certain-answers", arity=query.arity) as span:
        first_solution: Instance | None = None
        try:
            for solution in _minimal_solutions(
                setting, source, target, node_budget, query=query,
                budget=accounting, tracer=tracer,
            ):
                first_solution = solution
                break
        except BudgetExceeded as exhausted:
            if budget is None or budget.strict:
                raise
            return finish(degraded(set(), False, exhausted))
        if first_solution is None:
            vacuous: set[tuple] = {()} if query.arity == 0 else set()
            if accounting is not None:
                stats.update(accounting.snapshot())
            if tracer.enabled:
                span.set("solutions_exist", False)
            return finish(
                CertainAnswerResult(
                    answers=vacuous, solutions_exist=False, stats=stats
                )
            )

        candidates: list[tuple[InstanceTerm, ...]]
        if query.arity == 0:
            candidates = [()] if query.holds(first_solution) else []
        else:
            candidates = sorted(query.answers(first_solution, allow_nulls=False))
        stats["candidates"] = len(candidates)
        if tracer.enabled:
            span.set("solutions_exist", True)
            span.set("candidates", len(candidates))

        certain: set[tuple] = set()
        try:
            for candidate in candidates:
                if is_certain(
                    setting,
                    query,
                    source,
                    target,
                    candidate,
                    node_budget=node_budget,
                    budget=accounting,
                    tracer=tracer,
                ):
                    certain.add(candidate)
        except BudgetExceeded as exhausted:
            if budget is None or budget.strict:
                raise
            return finish(degraded(certain, True, exhausted))
        if accounting is not None:
            stats.update(accounting.snapshot())
        if tracer.enabled:
            span.set("certain", len(certain))
        return finish(
            CertainAnswerResult(answers=certain, solutions_exist=True, stats=stats)
        )
