"""The polynomial-time ``ExistsSolution`` algorithm of Figure 3.

For a PDE setting in ``C_tract`` (no target constraints), the algorithm:

1. chases ``(I, J)`` with ``Σ_st``, obtaining the canonical target
   pre-solution ``J_can``;
2. chases ``(J_can, ∅)`` with ``Σ_ts``, obtaining the canonical source
   requirement ``I_can`` (which may contain nulls from ``J_can`` as well as
   fresh nulls for the existentials of ``Σ_ts``);
3. decomposes ``I_can`` into blocks (Definition 10) and tests, per block,
   whether it maps homomorphically into ``I``.

Theorem 5 shows a solution exists iff ``I_can`` maps homomorphically into
``I``; Proposition 1 justifies the per-block decomposition; Theorem 6 shows
each block has a constant number of nulls for ``C_tract`` settings, making
every per-block test polynomial.

When all blocks embed, a witness solution ``J_img`` is assembled exactly as
in the proof of Theorem 5: the nulls of ``J_can`` that made it into
``I_can`` are replaced by their homomorphic images; the remaining nulls are
kept as values.
"""

from __future__ import annotations

from repro.core.blocks import decompose_into_blocks
from repro.core.chase import chase
from repro.core.instance import Instance
from repro.core.setting import PDESetting
from repro.core.terms import InstanceTerm, Null
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.runtime.budget import Budget, SolveStatus
from repro.solver.results import SolveResult
from repro.tractability.classifier import classify
from repro.exceptions import BudgetExceeded, SolverError

__all__ = ["canonical_instances", "exists_solution_tractable"]


def canonical_instances(
    setting: PDESetting,
    source: Instance,
    target: Instance,
    budget: Budget | None = None,
    tracer: Tracer | None = None,
) -> tuple[Instance, Instance, dict]:
    """Compute ``(J_can, I_can)`` for ``(source, target)``.

    ``J_can`` is the result of chasing ``(I, J)`` with ``Σ_st`` (target
    part); ``I_can`` is the result of chasing ``(J_can, ∅)`` with ``Σ_ts``
    (source part).  Also returns chase statistics.  Both chases charge
    ``budget`` when one is given, and record ``sigma-st-chase`` /
    ``sigma-ts-chase`` spans on ``tracer``.
    """
    if tracer is None:
        tracer = NULL_TRACER
    combined = setting.combine(source, target)
    with tracer.span("sigma-st-chase"):
        st_result = chase(combined, setting.sigma_st, budget=budget, tracer=tracer)
    j_can = st_result.instance.restrict_to(setting.target_schema)

    # Chase (J_can, ∅): start from J_can alone over the combined schema so
    # the Σ_ts heads land in (what becomes) I_can, not in I.
    j_can_combined = Instance(schema=setting.combined_schema)
    j_can_combined.add_all(j_can)
    with tracer.span("sigma-ts-chase"):
        ts_result = chase(j_can_combined, setting.sigma_ts, budget=budget, tracer=tracer)
    i_can = ts_result.instance.restrict_to(setting.source_schema)

    stats = {
        "st_chase_steps": st_result.step_count,
        "ts_chase_steps": ts_result.step_count,
        "j_can_size": len(j_can),
        "i_can_size": len(i_can),
    }
    return j_can, i_can, stats


def _assemble_solution(
    j_can: Instance,
    i_can: Instance,
    homomorphism: dict[Null, InstanceTerm],
) -> Instance:
    """Build ``J_img = h_J(J_can)`` as in the proof of Theorem 5.

    ``h_J`` agrees with the block homomorphism on the nulls shared between
    ``J_can`` and ``I_can`` and is the identity elsewhere.
    """
    shared = j_can.nulls() & i_can.nulls()
    mapping = {
        null: homomorphism[null] for null in shared if null in homomorphism
    }
    return j_can.rename(mapping)


def exists_solution_tractable(
    setting: PDESetting,
    source: Instance,
    target: Instance,
    check_membership: bool = True,
    budget: Budget | None = None,
    tracer: Tracer | None = None,
) -> SolveResult:
    """Run the ``ExistsSolution`` algorithm of Figure 3.

    Args:
        setting: the PDE setting; must be in ``C_tract`` for the algorithm
            to be correct (Theorem 4).
        source: the source instance ``I`` (null-free).
        target: the target instance ``J``.
        check_membership: verify ``C_tract`` membership first and raise
            :class:`SolverError` otherwise.  Disable only for experiments
            that deliberately run the algorithm outside its class.
        budget: optional :class:`~repro.runtime.Budget`.  The algorithm is
            polynomial, but governed deployments still deadline it; a
            non-strict budget degrades into a partial result on exhaustion.
        tracer: optional :class:`repro.obs.Tracer`; records a
            ``tractable`` span covering both chases plus a ``hom_tests``
            counter, one per block embedding test.

    Returns:
        a :class:`SolveResult`; when a solution exists, ``solution`` holds
        the witness ``J_img`` of Theorem 5.
    """
    if check_membership:
        report = classify(setting)
        if not report.in_ctract:
            raise SolverError(
                "setting is not in C_tract; the Figure 3 algorithm would be "
                "unsound: " + "; ".join(report.violations)
            )
    setting.validate_source_instance(source)
    setting.validate_target_instance(target)
    if tracer is None:
        tracer = NULL_TRACER

    with tracer.span("tractable") as span:
        try:
            j_can, i_can, stats = canonical_instances(
                setting, source, target, budget=budget, tracer=tracer
            )
            blocks = decompose_into_blocks(i_can)
            stats["blocks"] = len(blocks)
            stats["max_nulls_per_block"] = max(
                (block.null_count for block in blocks), default=0
            )
            if tracer.enabled:
                span.set("blocks", len(blocks))
                span.set("max_nulls_per_block", stats["max_nulls_per_block"])

            # Import locally to avoid a hard cycle with the homomorphism helpers.
            from repro.core.homomorphism import find_instance_homomorphism

            combined_mapping: dict[Null, InstanceTerm] = {}
            for block in blocks:
                if budget is not None:
                    budget.charge_node()  # one per-block embedding test
                span.add("hom_tests")
                mapping = find_instance_homomorphism(block.facts, source)
                if mapping is None:
                    if budget is not None:
                        stats.update(budget.snapshot())
                    span.set("exists", False)
                    return SolveResult(exists=False, method="tractable", stats=stats)
                combined_mapping.update(mapping)
        except BudgetExceeded as exhausted:
            if budget is None or budget.strict:
                raise
            stats = dict(budget.snapshot())
            return SolveResult(
                exists=False,
                method="tractable",
                stats=stats,
                status=SolveStatus(exhausted.status),
                reason=str(exhausted),
            )

        if budget is not None:
            stats.update(budget.snapshot())
        span.set("exists", True)
        solution = _assemble_solution(j_can, i_can, combined_mapping)
        return SolveResult(
            exists=True, solution=solution, method="tractable", stats=stats
        )
