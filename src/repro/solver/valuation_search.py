"""Complete NP decision procedure via valuation of the nulls of ``J_can``.

The procedure implements the small-solution argument behind Theorem 1.
Let ``J_can`` be the ``Σ_st``-chase of ``(I, J)``:

* every solution contains a constant-preserving homomorphic image of
  ``J_can`` (Lemma 3), and for ``Σ_t`` consisting of *egds and full tgds*
  the ``Σ_t``-closure of that image (plus ``J``) is itself a solution —
  ``Σ_st`` holds because homomorphic images preserve the witnessed
  conjunctions, ``Σ_ts`` because target-to-source tgds are anti-monotone
  in the target (removing target facts only removes premises; the source
  side is immutable), and full-tgd closures of sub-instances of a model
  stay inside the model;
* conversely, any constant-preserving valuation ``v`` of the nulls of
  ``J_can`` whose closed instance satisfies ``Σ_ts`` and the target egds
  yields a solution.

The complete valuation space maps each null of ``J_can`` independently to
``adom(I) ∪ adom(J_can) ∪ {itself}``; when ``Σ_t`` contains egds, a null
may additionally merge into an earlier null (two nulls equated by an egd
must receive the same value).  Inventing values outside the active domain
is never needed: a fresh shared value can only create additional ``Σ_ts``
premises that no source fact can discharge.

Settings whose ``Σ_t`` contains an *existential* target tgd are rejected —
their closures mint new nulls that would need valuation in turn; the
branching-chase solver handles them.

The search assigns nulls one at a time with incremental violation
detection: whenever a fact of ``J_can`` becomes fully valued, every
``Σ_ts`` premise and every target egd completed by that fact is checked.
Because every assigned value is final (egd repairs are represented as
merge choices, never applied after the fact), a detected violation prunes
the subtree soundly.  A leaf predicate hook lets the certain-answers
machinery reject valuations whose induced solution satisfies a query
(searching for a falsifying solution).
"""

from __future__ import annotations

from typing import Callable, Iterator, Sequence

from repro.core.atoms import Atom, Fact
from repro.core.chase import chase
from repro.core.dependencies import EGD, TGD, DisjunctiveTGD
from repro.core.homomorphism import find_homomorphism, iter_homomorphisms
from repro.core.instance import Instance
from repro.core.setting import PDESetting
from repro.core.terms import InstanceTerm, Null, Variable, is_variable, term_sort_key
from repro.exceptions import BudgetExceeded, SolverError
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.runtime.budget import Budget, SolveStatus
from repro.solver.results import SolveResult

__all__ = [
    "ValuationSearch",
    "supports_valuation_search",
    "exists_solution_valuation",
    "iter_minimal_solutions",
]


def supports_valuation_search(setting: PDESetting) -> bool:
    """True when ``Σ_t`` contains only egds and full tgds (or is empty)."""
    for dependency in setting.sigma_t:
        if isinstance(dependency, TGD) and not dependency.is_full():
            return False
    return True


class ValuationSearch:
    """Backtracking search over valuations of the nulls of ``J_can``.

    Instances of this class are single-use per ``(setting, I, J)``; the
    entry points below wrap it.
    """

    def __init__(
        self,
        setting: PDESetting,
        source: Instance,
        target: Instance,
        relevant_queries: Sequence = (),
        budget: Budget | None = None,
        tracer: Tracer | None = None,
    ):
        if not supports_valuation_search(setting):
            raise SolverError(
                "the valuation search handles Σ_t consisting of egds and "
                "full tgds only; use the branching-chase solver for "
                "existential target tgds"
            )
        setting.validate_source_instance(source)
        setting.validate_target_instance(target)
        self.setting = setting
        self.source = source
        self.target = target
        self.budget = budget
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._egds = setting.target_egds()
        self._full_tgds = setting.target_tgds()
        self.stats: dict[str, int] = {"nodes": 0, "violations": 0, "backtracks": 0}

        combined = setting.combine(source, target)
        with self.tracer.span("sigma-st-chase"):
            st_result = chase(
                combined, setting.sigma_st, budget=budget, tracer=self.tracer
            )
        self.j_can = st_result.instance.restrict_to(setting.target_schema)
        self.stats["st_chase_steps"] = st_result.step_count
        self.stats["j_can_size"] = len(self.j_can)

        self.nulls = sorted(self.j_can.nulls())
        self.stats["null_count"] = len(self.nulls)
        self._domain = self._candidate_domain()
        self._facts = list(self.j_can)
        self._facts_of_null: dict[Null, list[int]] = {null: [] for null in self.nulls}
        self._pending: list[int] = []
        for index, fact in enumerate(self._facts):
            fact_nulls = fact.nulls()
            self._pending.append(len(fact_nulls))
            for null in fact_nulls:
                self._facts_of_null[null].append(index)
        # Order nulls by how many facts they touch (most constrained first).
        self.nulls.sort(key=lambda null: -len(self._facts_of_null[null]))
        self._fixable = self._fixable_nulls(relevant_queries)
        self.stats["fixed_nulls"] = len(self._fixable)

    def _fixable_nulls(self, relevant_queries: Sequence) -> set[Null]:
        """Nulls whose valuation cannot matter: fix them to themselves.

        A position ``(R, i)`` is *sensitive* when some atom over ``R`` in a
        ``Σ_ts`` body (or in a caller-supplied query body) holds, at index
        ``i``, a constant, a variable with more than one occurrence in the
        dependency body, a variable exported to the conclusion, or a free
        variable of the query.  A null occurring only at insensitive
        positions can never influence premise matching, exported values, or
        query answers, so the single valuation "itself" is exhaustive —
        this collapses e.g. unconstrained provenance/batch columns that
        would otherwise multiply the search space by |adom| each.

        Only applied when ``Σ_t = ∅``: target constraints can copy values
        between positions, which would require propagating sensitivity.
        """
        if self.setting.sigma_t:
            return set()
        sensitive: set[tuple[str, int]] = set()

        def mark(atoms, protected_variables, occurrence_counts) -> None:
            for atom in atoms:
                for index, term in enumerate(atom.args):
                    if not is_variable(term):
                        sensitive.add((atom.relation, index))
                    elif (
                        occurrence_counts.get(term, 0) > 1
                        or term in protected_variables
                    ):
                        sensitive.add((atom.relation, index))

        for dependency in self.setting.sigma_ts:
            counts: dict = {}
            for atom in dependency.body:
                for term in atom.args:
                    if is_variable(term):
                        counts[term] = counts.get(term, 0) + 1
            exported = set()
            if isinstance(dependency, TGD):
                for atom in dependency.head:
                    exported |= atom.variables()
            else:
                for disjunct in dependency.disjuncts:
                    for atom in disjunct:
                        exported |= atom.variables()
            mark(dependency.body, exported, counts)

        for query in relevant_queries:
            parts = getattr(query, "disjuncts", None) or [query]
            for part in parts:
                counts = {}
                for atom in part.body:
                    for term in atom.args:
                        if is_variable(term):
                            counts[term] = counts.get(term, 0) + 1
                mark(part.body, set(part.free), counts)

        fixable: set[Null] = set()
        for null in self.nulls:
            touches_sensitive = False
            for index in self._facts_of_null[null]:
                fact = self._facts[index]
                for position, value in enumerate(fact.args):
                    if value == null and (fact.relation, position) in sensitive:
                        touches_sensitive = True
                        break
                if touches_sensitive:
                    break
            if not touches_sensitive:
                fixable.add(null)
        return fixable

    def _candidate_domain(self) -> list[InstanceTerm]:
        """Constants a null may be assigned to (besides staying itself)."""
        values: set[InstanceTerm] = set(self.source.constants())
        values |= self.j_can.constants()
        for dependency in self.setting.all_dependencies():
            atoms: list[Atom] = list(dependency.body)
            if isinstance(dependency, TGD):
                atoms += list(dependency.head)
            elif isinstance(dependency, DisjunctiveTGD):
                for disjunct in dependency.disjuncts:
                    atoms += list(disjunct)
            for atom in atoms:
                values |= atom.constants()
        return sorted(values, key=term_sort_key)

    # ------------------------------------------------------------------
    # incremental violation checks
    # ------------------------------------------------------------------

    def _premise_violated(self, decided: Instance, new_fact: Fact) -> bool:
        """Check every ``Σ_ts`` premise completed by ``new_fact``.

        Returns True when a premise matches within ``decided`` (pinning one
        body atom to the new fact) but its conclusion cannot be embedded in
        the source instance.  Sound because assigned values are final.
        """
        for dependency in self.setting.sigma_ts:
            body = list(dependency.body)
            for pin_index, atom in enumerate(body):
                if atom.relation != new_fact.relation:
                    continue
                pinned = self._unify(atom, new_fact)
                if pinned is None:
                    continue
                rest = body[:pin_index] + body[pin_index + 1:]
                for assignment in iter_homomorphisms(rest, decided, pinned):
                    if not self._conclusion_holds(dependency, assignment):
                        self.stats["violations"] += 1
                        return True
        return False

    def _egd_violated(self, decided: Instance, new_fact: Fact) -> bool:
        """Check every target egd whose body is completed by ``new_fact``."""
        for egd in self._egds:
            body = list(egd.body)
            for pin_index, atom in enumerate(body):
                if atom.relation != new_fact.relation:
                    continue
                pinned = self._unify(atom, new_fact)
                if pinned is None:
                    continue
                rest = body[:pin_index] + body[pin_index + 1:]
                for assignment in iter_homomorphisms(rest, decided, pinned):
                    if assignment[egd.left] != assignment[egd.right]:
                        self.stats["violations"] += 1
                        return True
        return False

    @staticmethod
    def _unify(atom: Atom, fact: Fact) -> dict[Variable, InstanceTerm] | None:
        """Match one body atom against one fact, returning variable bindings."""
        bindings: dict[Variable, InstanceTerm] = {}
        for term, value in zip(atom.args, fact.args):
            if is_variable(term):
                bound = bindings.get(term)
                if bound is None:
                    bindings[term] = value
                elif bound != value:
                    return None
            elif term != value:
                return None
        return bindings

    def _conclusion_holds(
        self,
        dependency: TGD | DisjunctiveTGD,
        assignment: dict[Variable, InstanceTerm],
    ) -> bool:
        """Can the dependency's conclusion be embedded in the source?"""
        body_variables = dependency.body_variables()
        exported = {
            variable: value
            for variable, value in assignment.items()
            if variable in body_variables
        }
        if isinstance(dependency, TGD):
            relevant = self._restrict(exported, dependency.head)
            return find_homomorphism(dependency.head, self.source, relevant) is not None
        for disjunct in dependency.disjuncts:
            relevant = self._restrict(exported, disjunct)
            if find_homomorphism(list(disjunct), self.source, relevant) is not None:
                return True
        return False

    @staticmethod
    def _restrict(
        exported: dict[Variable, InstanceTerm], atoms: Sequence[Atom]
    ) -> dict[Variable, InstanceTerm]:
        used: set[Variable] = set()
        for atom in atoms:
            used |= atom.variables()
        return {v: value for v, value in exported.items() if v in used}

    # ------------------------------------------------------------------
    # incremental closure under the full target tgds
    # ------------------------------------------------------------------

    def _absorb(self, decided: Instance, fact: Fact, added: list[Fact]) -> bool:
        """Register ``fact`` (already added) and derive its consequences.

        Checks the ``Σ_ts`` premises and target egds completed by the fact,
        then fires every full target tgd whose body is completed by it,
        cascading through the derived facts.  Every fact this call adds to
        ``decided`` is appended to ``added`` so the caller can undo it on
        backtrack.  Returns False as soon as a violation is found.

        Keeping ``decided`` closed under the full tgds during the search is
        what lets ``Σ_t``-routed consistency constraints (e.g. the
        full-tgd boundary setting of Section 4) prune high in the tree
        instead of only at the leaves.
        """
        queue = [fact]
        while queue:
            current = queue.pop()
            if self._premise_violated(decided, current):
                return False
            if self._egds and self._egd_violated(decided, current):
                return False
            derived: list[Fact] = []
            for tgd in self._full_tgds:
                body = list(tgd.body)
                for pin_index, atom in enumerate(body):
                    if atom.relation != current.relation:
                        continue
                    pinned = self._unify(atom, current)
                    if pinned is None:
                        continue
                    rest = body[:pin_index] + body[pin_index + 1:]
                    for assignment in iter_homomorphisms(rest, decided, pinned):
                        for head_atom in tgd.head:
                            args = [
                                assignment[arg] if is_variable(arg) else arg
                                for arg in head_atom.args
                            ]
                            derived.append(Fact(head_atom.relation, args))  # type: ignore[arg-type]
            for new_fact in derived:
                if decided.add(new_fact):
                    added.append(new_fact)
                    queue.append(new_fact)
        return True

    # ------------------------------------------------------------------
    # leaf closure for Σ_t (full tgds + egds)
    # ------------------------------------------------------------------

    def _close_candidate(self, candidate: Instance) -> Instance | None:
        """Close ``candidate`` under the full target tgds; reject on egds.

        Full tgds only ever add fully determined facts, so the closure is
        deterministic.  Egds are *tested*, never applied: a merge of two
        values is represented in the search space as a valuation choice, so
        an actual inequality here means this valuation yields no solution.
        Returns the closed instance, or None on an egd or ``Σ_ts`` failure.
        """
        closed = candidate.copy()
        changed = True
        while changed:
            changed = False
            for egd in self._egds:
                for assignment in iter_homomorphisms(egd.body, closed):
                    if assignment[egd.left] != assignment[egd.right]:
                        return None
            for tgd in self._full_tgds:
                for assignment in iter_homomorphisms(tgd.body, closed):
                    for atom in tgd.head:
                        args = [
                            assignment[arg] if is_variable(arg) else arg
                            for arg in atom.args
                        ]
                        if closed.add(Fact(atom.relation, args)):  # type: ignore[arg-type]
                            changed = True
        # Closure facts may introduce new Σ_ts premises: re-check in full.
        from repro.core.chase import satisfies

        combined = self.setting.combine(self.source, closed)
        if not satisfies(combined, self.setting.sigma_ts):
            return None
        return closed

    # ------------------------------------------------------------------
    # the search
    # ------------------------------------------------------------------

    def iter_valuations(
        self,
        leaf_predicate: Callable[[Instance], bool] | None = None,
        node_budget: int | None = None,
    ) -> Iterator[Instance]:
        """Yield every candidate solution induced by a consistent valuation.

        For ``Σ_t = ∅`` these are the valued instances ``v(J_can)``; with
        target constraints they are the ``Σ_t``-closures of those
        instances.  Every yielded instance is a solution and every solution
        contains one of them.

        Args:
            leaf_predicate: optional extra acceptance test on the candidate
                solution; valuations failing it are skipped (but the search
                continues).
            node_budget: optional cap on visited search nodes (legacy;
                ignored when the search was built with a ``budget``);
                exhaustion raises :class:`~repro.exceptions.BudgetExceeded`,
                a :class:`SolverError`.
        """
        budget = self.budget
        if budget is None:
            budget = Budget.from_legacy(node_budget)
            self.budget = budget
        decided = Instance(schema=self.setting.target_schema)
        pending = list(self._pending)
        valuation: dict[Null, InstanceTerm] = {}

        # Seed with the facts of J_can that contain no nulls at all.
        seed_added: list[Fact] = []
        for index, fact in enumerate(self._facts):
            if pending[index] == 0:
                if decided.add(fact):
                    seed_added.append(fact)
                    if not self._absorb(decided, fact, seed_added):
                        return

        yield from self._search(
            0, decided, pending, valuation, leaf_predicate, budget
        )

    def _leaf(
        self,
        decided: Instance,
        leaf_predicate: Callable[[Instance], bool] | None,
    ) -> Iterator[Instance]:
        candidate = decided.copy()
        if self.setting.sigma_t:
            closed = self._close_candidate(candidate)
            if closed is None:
                return
            candidate = closed
        if leaf_predicate is None or leaf_predicate(candidate):
            yield candidate

    def _search(
        self,
        depth: int,
        decided: Instance,
        pending: list[int],
        valuation: dict[Null, InstanceTerm],
        leaf_predicate: Callable[[Instance], bool] | None,
        budget: Budget | None,
    ) -> Iterator[Instance]:
        self.stats["nodes"] += 1
        if budget is not None:
            budget.charge_node()
        if depth == len(self.nulls):
            yield from self._leaf(decided, leaf_predicate)
            return

        null = self.nulls[depth]
        if null in self._fixable:
            options: list[InstanceTerm] = [null]
        else:
            options = [null, *self._domain]
            if self._egds:
                # With egds, two nulls may have to be equated: allow merging
                # into any earlier (already decided) null.
                options += self.nulls[:depth]
        for value in options:
            valuation[null] = value
            completed: list[Fact] = []
            consistent = True
            for index in self._facts_of_null[null]:
                pending[index] -= 1
                if pending[index] == 0:
                    fact = self._facts[index].substitute(valuation)
                    if decided.add(fact):
                        completed.append(fact)
                        if not self._absorb(decided, fact, completed):
                            consistent = False
                            break
            if consistent:
                yield from self._search(
                    depth + 1, decided, pending, valuation, leaf_predicate, budget
                )
            # Undo.
            self.stats["backtracks"] += 1
            for fact in completed:
                decided.discard(fact)
            for index in self._facts_of_null[null]:
                pending[index] += 1
        del valuation[null]


def exists_solution_valuation(
    setting: PDESetting,
    source: Instance,
    target: Instance,
    node_budget: int | None = None,
    budget: Budget | None = None,
    tracer: Tracer | None = None,
) -> SolveResult:
    """Decide ``SOL(P)(I, J)`` when ``Σ_t`` has only egds and full tgds.

    Complete for arbitrary ``Σ_st`` tgds and arbitrary (possibly
    disjunctive) ``Σ_ts`` tgds.  Worst-case exponential, as Theorem 3 says
    it must be (unless P = NP).

    With a non-strict ``budget``, exhaustion (caps, deadline, or
    cancellation) degrades into a partial :class:`SolveResult` whose
    ``status`` names what ran out; the legacy ``node_budget`` path (and
    any ``strict`` budget) raises :class:`~repro.exceptions.BudgetExceeded`
    instead.

    A ``tracer`` records one ``valuation-search`` span covering the
    ``Σ_st`` chase and the search itself; the search's counters (nodes,
    backtracks, violations) are folded into the span at exit.
    """
    if tracer is None:
        tracer = NULL_TRACER

    def degraded(search: "ValuationSearch | None", exhausted: BudgetExceeded) -> SolveResult:
        stats = dict(search.stats) if search is not None else {}
        if budget is not None:
            stats.update(budget.snapshot())
        return SolveResult(
            exists=False,
            method="valuation-search",
            stats=stats,
            status=SolveStatus(exhausted.status),
            reason=str(exhausted),
        )

    def note(span, search: "ValuationSearch | None", exists: bool | None) -> None:
        if not tracer.enabled:
            return
        if search is not None:
            for key, value in search.stats.items():
                if isinstance(value, (int, float)):
                    span.add(key, value)
        if exists is not None:
            span.set("exists", exists)

    with tracer.span("valuation-search") as span:
        try:
            search = ValuationSearch(
                setting, source, target, budget=budget, tracer=tracer
            )
        except BudgetExceeded as exhausted:
            # The Σ_st chase that builds J_can is itself governed.
            if budget is None or budget.strict:
                raise
            return degraded(None, exhausted)
        try:
            for candidate in search.iter_valuations(node_budget=node_budget):
                stats = dict(search.stats)
                if search.budget is not None:
                    stats.update(search.budget.snapshot())
                note(span, search, True)
                return SolveResult(
                    exists=True,
                    solution=candidate,
                    method="valuation-search",
                    stats=stats,
                )
        except BudgetExceeded as exhausted:
            note(span, search, None)
            if search.budget is None or search.budget.strict:
                raise
            return degraded(search, exhausted)
        stats = dict(search.stats)
        if search.budget is not None:
            stats.update(search.budget.snapshot())
        note(span, search, False)
        return SolveResult(exists=False, method="valuation-search", stats=stats)


def iter_minimal_solutions(
    setting: PDESetting,
    source: Instance,
    target: Instance,
    node_budget: int | None = None,
    relevant_queries: Sequence = (),
    budget: Budget | None = None,
    tracer: Tracer | None = None,
) -> Iterator[Instance]:
    """Yield the canonical minimal solutions (duplicates suppressed).

    Every solution of the setting contains one of the yielded instances up
    to renaming of nulls that neither ``Σ_ts`` nor the ``relevant_queries``
    can observe, so this family suffices for deciding certain answers of
    those monotone queries (Lemma 2 / Theorem 2).  Callers that will
    evaluate a query over the yielded solutions must list it in
    ``relevant_queries`` so the sensitivity analysis keeps the nulls it can
    observe unfixed.

    Generators cannot return a partial result, so budget exhaustion always
    raises :class:`~repro.exceptions.BudgetExceeded` here, strict or not;
    governed callers catch it and degrade.
    """
    search = ValuationSearch(
        setting,
        source,
        target,
        relevant_queries=relevant_queries,
        budget=budget,
        tracer=tracer,
    )
    seen: set[frozenset] = set()
    for candidate in search.iter_valuations(node_budget=node_budget):
        key = frozenset((fact.relation, fact.args) for fact in candidate)
        if key in seen:
            continue
        seen.add(key)
        yield candidate
