"""Solving multi-PDE settings directly.

Section 2's observation — a multi-PDE setting is equivalent to the merged
single PDE over the union of its sources — makes solving trivial to
delegate; this module packages the delegation (merge, combine, solve,
verify per member) behind one call.
"""

from __future__ import annotations

import warnings
from typing import Sequence

from repro.core.instance import Instance
from repro.core.setting import MultiPDESetting
from repro.runtime.budget import Budget
from repro.solver.exists_solution import solve
from repro.solver.results import SolveResult
from repro.exceptions import DependencyError, InvariantViolation

__all__ = ["solve_multi"]


def solve_multi(
    multi: MultiPDESetting,
    sources: Sequence[Instance],
    target: Instance,
    method: str = "auto",
    node_budget: int | None = None,
    budget: Budget | None = None,
) -> SolveResult:
    """Decide solution existence for a multi-PDE setting.

    Args:
        multi: the family of member settings (shared target schema).
        sources: one source instance per member, in member order.
        target: the target peer's instance ``J``.
        method, budget: forwarded to :func:`repro.solver.solve`.
        node_budget: deprecated — pass ``budget=Budget(node_cap=...,
            strict=True)`` (or :meth:`Budget.from_node_budget`) instead.
            When both are given, ``budget`` wins.

    Returns:
        the merged-setting :class:`SolveResult`; when a witness exists it
        is additionally verified against every member setting (defense in
        depth for the Section 2 equivalence).

    Raises:
        InvariantViolation: if the merged-setting witness is rejected by a
            member setting — the Section 2 equivalence failed, which
            signals a library bug, never bad input.
    """
    if node_budget is not None:
        warnings.warn(
            "solve_multi(node_budget=...) is deprecated; pass "
            "budget=Budget.from_node_budget(node_budget) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        if budget is None:
            budget = Budget.from_node_budget(node_budget)
    if len(sources) != len(multi.members):
        raise DependencyError(
            f"expected {len(multi.members)} source instances, got {len(sources)}"
        )
    merged = multi.merge()
    union = multi.combine_sources(sources)
    result = solve(merged, union, target, method=method, budget=budget)
    if result.exists and result.solution is not None:
        if not multi.is_solution(list(sources), target, result.solution):
            raise InvariantViolation(
                "merged-setting witness failed a member setting: the "
                "Section 2 equivalence was violated (library bug)"
            )
    return result
