"""Lemma 2, constructively: shrink any solution to a small one.

Lemma 2 of the paper proves that whenever a solution exists, a solution of
polynomial size exists *inside it*, by running the solution-aware chase
(Definitions 6-7) of ``(I, J)`` against the given solution: existential
witnesses are drawn from the solution, so the chase result is a
sub-instance of it, and its length is polynomially bounded (Lemma 1).

``minimize_solution`` packages that construction as a public operation:
hand it any (possibly bloated) solution and get back the small solution
``J*`` the lemma promises.  The result

* contains the protected target instance ``J``;
* is a sub-instance of the given solution;
* satisfies ``Σ_st`` and ``Σ_t`` by chase fixpoint, and ``Σ_ts`` because
  target-to-source constraints are anti-monotone in the target.

Combine with :func:`repro.core.cores.core` for the smallest witnesses:
Lemma 2 trims to the chase-needed facts; coring then folds redundant
null-carrying facts.
"""

from __future__ import annotations

from repro.core.chase import solution_aware_chase
from repro.core.instance import Instance
from repro.core.setting import PDESetting
from repro.exceptions import SolverError

__all__ = ["minimize_solution"]


def minimize_solution(
    setting: PDESetting,
    source: Instance,
    target: Instance,
    solution: Instance,
) -> Instance:
    """Extract the Lemma 2 small solution ``J*`` from ``solution``.

    Args:
        setting: the PDE setting; ``Σ_t`` must be egds plus a weakly
            acyclic set of tgds (the hypothesis of Lemmas 1-2).
        source: the source instance ``I``.
        target: the target instance ``J`` (survives into the result).
        solution: any solution for ``(source, target)``.

    Returns:
        a solution ``J*`` with ``target ⊆ J* ⊆ solution`` whose size is
        bounded by the solution-aware chase of ``(I, J)``.

    Raises:
        SolverError: if ``solution`` is not actually a solution, or the
            target tgds are not weakly acyclic.
    """
    if not setting.target_tgds_weakly_acyclic():
        raise SolverError(
            "Lemma 2 requires a weakly acyclic set of target tgds"
        )
    if not setting.is_solution(source, target, solution):
        raise SolverError("the given instance is not a solution for (I, J)")

    combined_start = setting.combine(source, target)
    combined_solution = setting.combine(source, solution)
    dependencies = [*setting.sigma_st, *setting.sigma_t]
    result = solution_aware_chase(combined_start, dependencies, combined_solution)
    j_star = result.instance.restrict_to(setting.target_schema)

    # Σ_ts holds on any sub-instance of a solution (anti-monotonicity);
    # the assertion below is defense in depth, not part of the argument.
    if not setting.is_solution(source, target, j_star):
        raise AssertionError(
            "solution-aware chase produced a non-solution; this contradicts "
            "Lemma 2 and indicates a library bug"
        )
    return j_star
