"""Incremental ``ExistsSolution`` for churny peers (semi-naive Figure 3).

:class:`IncrementalTractableSolver` keeps the Figure 3 pipeline state of
the *previous* round — the chased ``Σ_st`` fixpoint, the chased ``Σ_ts``
fixpoint, and one persistent :class:`~repro.core.terms.NullFactory` — and
answers the next round by pushing the ``(source, target)`` delta through
:func:`repro.core.chase.chase_incremental` twice instead of re-chasing
from scratch:

1. diff the new ``(I, J)`` against the cached bases and chase the delta
   through ``Σ_st``, obtaining the updated ``J_can``;
2. diff the new ``J_can`` against the previous one and chase *that* delta
   through ``Σ_ts``, obtaining the updated ``I_can``;
3. test ``I_can ⊆hom I`` — containment when ``I_can`` is ground (the
   common case for back-mapping ``Σ_ts``), per-block embedding otherwise.

Correctness leans on the incremental chase contract: its result is
homomorphically equivalent to the from-scratch chase of the patched base,
and both are universal, so existence answers and witnesses agree with
:func:`repro.solver.tractable.exists_solution_tractable` up to null
renaming.  One null factory spans both stages and every round, so fresh
nulls never collide with cached ones.

The solver is *self-healing*: any precondition failure
(:class:`~repro.exceptions.IncrementalChaseUnsupported`) or interrupted
round (budget exhaustion mid-chase) resets the cache, and the next call
simply rebuilds from scratch.  Callers never need to distinguish the
cold path from the warm path — only ``method`` in the result
(``"tractable-incremental"`` vs ``"tractable"``) and the ``chase.*``
metrics tell them apart.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.blocks import decompose_into_blocks
from repro.core.chase import ChaseResult, chase, chase_incremental
from repro.core.instance import Instance
from repro.core.setting import PDESetting
from repro.core.terms import InstanceTerm, Null, NullFactory
from repro.exceptions import IncrementalChaseUnsupported, SolverError
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.runtime.budget import Budget
from repro.solver.results import SolveResult
from repro.solver.tractable import _assemble_solution
from repro.tractability.classifier import classify

__all__ = ["IncrementalTractableSolver"]


@dataclass
class IncrementalTractableSolver:
    """Stateful Figure 3 solver that re-chases only deltas between rounds.

    One instance serves one logical peer pair: rounds must form a single
    evolving ``(source, target)`` timeline (exactly what a
    :class:`~repro.sync.SyncSession` provides).  :meth:`reset` drops the
    cache — call it on epoch bumps or chain breaks, where the new
    snapshot shares no lineage with the cached one.

    The cache is only committed after a fully successful round, so an
    exception mid-round (budget, unsupported delta) leaves the solver
    consistent; the next round falls back to a cold build.
    """

    setting: PDESetting
    check_membership: bool = True
    _factory: NullFactory = field(default_factory=NullFactory, repr=False)
    _source: Instance | None = field(default=None, repr=False)
    _target: Instance | None = field(default=None, repr=False)
    _st_result: ChaseResult | None = field(default=None, repr=False)
    _j_can: Instance | None = field(default=None, repr=False)
    _ts_result: ChaseResult | None = field(default=None, repr=False)
    #: Occurrence counts of each null in the source-schema part of the
    #: ``Σ_ts`` fixpoint, maintained from chase deltas so the per-round
    #: "is I_can ground?" test never rescans the instance.
    _i_can_nulls: dict[Null, int] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.check_membership and not classify(self.setting).in_ctract:
            raise SolverError(
                "incremental solving uses the Figure 3 algorithm, which is "
                "only sound for C_tract settings"
            )

    @property
    def warm(self) -> bool:
        """True when the next round can run incrementally."""
        return self._st_result is not None

    def reset(self) -> None:
        """Drop all cached pipeline state (next round rebuilds cold)."""
        self._source = None
        self._target = None
        self._st_result = None
        self._j_can = None
        self._ts_result = None
        self._i_can_nulls = {}

    def solve(
        self,
        source: Instance,
        target: Instance,
        budget: Budget | None = None,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> SolveResult:
        """Decide ``SOL(P)(source, target)``, incrementally when warm.

        Matches :func:`~repro.solver.tractable.exists_solution_tractable`
        on answers and (up to null renaming) witnesses.  Exceptions
        propagate exactly as from the from-scratch solver — but any
        partially-applied incremental state is reset first, so a caller
        that degrades and retries gets a consistent cold rebuild.
        """
        if tracer is None:
            tracer = NULL_TRACER
        incremental = self.warm
        try:
            return self._solve(source, target, incremental, budget, tracer, metrics)
        except IncrementalChaseUnsupported:
            # Unsupported delta (e.g. an egd became applicable): rebuild
            # from scratch this round; the caller never sees the raise.
            self.reset()
            if metrics is not None:
                metrics.counter("chase.fallback").inc()
            tracer.event("incremental-fallback", reason="unsupported-delta")
            return self._solve(source, target, False, budget, tracer, metrics)
        except Exception:
            # Mid-round interruption (budget, cancellation, chase overrun):
            # the cache may hold a consumed support index — drop it.
            self.reset()
            raise

    # -- internals --------------------------------------------------------

    def _solve(
        self,
        source: Instance,
        target: Instance,
        incremental: bool,
        budget: Budget | None,
        tracer: Tracer,
        metrics: MetricsRegistry | None,
    ) -> SolveResult:
        with tracer.span(
            "tractable-incremental", warm=incremental
        ) as span:
            if incremental:
                st_result, j_can, ts_result, stats = self._advance(
                    source, target, budget, tracer
                )
            else:
                st_result, j_can, ts_result, stats = self._rebuild(
                    source, target, budget, tracer
                )
            i_can = ts_result.instance.restrict_to(self.setting.source_schema)
            self._track_i_can_nulls(incremental, i_can, ts_result)
            stats["j_can_size"] = len(j_can)
            stats["i_can_size"] = len(i_can)
            if metrics is not None:
                metrics.counter("chase.incremental").inc(1 if incremental else 0)
                metrics.counter("chase.retracted").inc(stats.get("retracted", 0))
                metrics.counter("chase.refired").inc(stats.get("refired", 0))

            method = "tractable-incremental" if incremental else "tractable"
            exists, mapping = self._embeds(i_can, source, budget, stats, span)
            if not exists:
                solution = None
            elif mapping:
                solution = _assemble_solution(j_can, i_can, mapping)
            else:
                # No shared nulls to rename: the witness is J_can itself.
                solution = j_can.copy()
            if budget is not None:
                stats.update(budget.snapshot())
            if tracer.enabled:
                span.set("exists", exists)

            # Commit the cache only now: every stage of the round landed.
            self._source = source.copy()
            self._target = target.copy()
            self._st_result = st_result
            self._j_can = j_can
            self._ts_result = ts_result
            return SolveResult(
                exists=exists, solution=solution, method=method, stats=stats
            )

    def _rebuild(
        self,
        source: Instance,
        target: Instance,
        budget: Budget | None,
        tracer: Tracer,
    ) -> tuple[ChaseResult, Instance, ChaseResult, dict]:
        """Cold path: the ordinary Figure 3 chases, but with cached state."""
        self.setting.validate_source_instance(source)
        self.setting.validate_target_instance(target)
        combined = self.setting.combine(source, target)
        with tracer.span("sigma-st-chase"):
            st_result = chase(
                combined,
                self.setting.sigma_st,
                null_factory=self._factory,
                budget=budget,
                tracer=tracer,
            )
        j_can = st_result.instance.restrict_to(self.setting.target_schema)
        j_can_combined = Instance(schema=self.setting.combined_schema)
        j_can_combined.add_all(j_can)
        with tracer.span("sigma-ts-chase"):
            ts_result = chase(
                j_can_combined,
                self.setting.sigma_ts,
                null_factory=self._factory,
                budget=budget,
                tracer=tracer,
            )
        stats = {
            "st_chase_steps": st_result.step_count,
            "ts_chase_steps": ts_result.step_count,
            "retracted": 0,
            "refired": 0,
        }
        return st_result, j_can, ts_result, stats

    def _advance(
        self,
        source: Instance,
        target: Instance,
        budget: Budget | None,
        tracer: Tracer,
    ) -> tuple[ChaseResult, Instance, ChaseResult, dict]:
        """Warm path: push the round's delta through both chase stages.

        The input delta is computed against the cached bases, never by
        re-validating the combined instance; the ``Σ_ts`` stage's delta is
        the change in ``J_can`` itself, so derived facts that did not
        change never reach the second stage's matcher.
        """
        assert self._source is not None and self._target is not None
        assert self._st_result is not None and self._j_can is not None
        assert self._ts_result is not None
        added, withdrawn = source.diff(self._source)
        t_added, t_withdrawn = target.diff(self._target)
        added.extend(t_added)
        withdrawn.extend(t_withdrawn)
        # The cached results are dead after this round (the cache commits
        # the successors), so both chases may consume them in place.
        st_result = chase_incremental(
            self._st_result,
            added,
            withdrawn,
            self.setting.sigma_st,
            null_factory=self._factory,
            budget=budget,
            tracer=tracer,
            consume=True,
        )
        j_can = st_result.instance.restrict_to(self.setting.target_schema)
        j_added, j_withdrawn = j_can.diff(self._j_can)
        ts_result = chase_incremental(
            self._ts_result,
            j_added,
            j_withdrawn,
            self.setting.sigma_ts,
            null_factory=self._factory,
            budget=budget,
            tracer=tracer,
            consume=True,
        )
        stats = {
            "st_chase_steps": st_result.refired,
            "ts_chase_steps": ts_result.refired,
            "retracted": len(st_result.retracted) + len(ts_result.retracted),
            "refired": st_result.refired + ts_result.refired,
        }
        return st_result, j_can, ts_result, stats

    def _track_i_can_nulls(
        self, incremental: bool, i_can: Instance, ts_result: ChaseResult
    ) -> None:
        """Maintain the null occurrence counts of ``I_can``.

        Cold rounds scan the fresh ``I_can`` once; warm rounds fold in the
        ``Σ_ts`` chase's reported delta (facts added/retracted relative to
        the prior fixpoint), restricted to source relations, so keeping
        the counts current costs O(delta).
        """
        if not incremental:
            counts: dict[Null, int] = {}
            for fact in i_can:
                for value in fact.args:
                    if isinstance(value, Null):
                        counts[value] = counts.get(value, 0) + 1
            self._i_can_nulls = counts
            return
        counts = self._i_can_nulls
        names = set(self.setting.source_schema.names())
        for fact in ts_result.delta_added:
            if fact.relation in names:
                for value in fact.args:
                    if isinstance(value, Null):
                        counts[value] = counts.get(value, 0) + 1
        for fact in ts_result.retracted:
            if fact.relation in names:
                for value in fact.args:
                    if isinstance(value, Null):
                        remaining = counts.get(value, 0) - 1
                        if remaining <= 0:
                            counts.pop(value, None)
                        else:
                            counts[value] = remaining

    def _embeds(
        self,
        i_can: Instance,
        source: Instance,
        budget: Budget | None,
        stats: dict,
        span,
    ) -> tuple[bool, dict[Null, InstanceTerm]]:
        """Does ``I_can`` map homomorphically into ``I``? (Theorem 5 test.)

        Ground ``I_can`` needs no block machinery: the only homomorphism
        candidate is the identity, so the test is pure containment at
        set-operation speed.  Groundness comes from the maintained null
        occurrence counts, not a per-round instance scan.
        """
        if not self._i_can_nulls:
            if budget is not None:
                budget.charge_node()
            span.add("hom_tests")
            return source.contains_instance(i_can), {}

        from repro.core.homomorphism import find_instance_homomorphism

        blocks = decompose_into_blocks(i_can)
        stats["blocks"] = len(blocks)
        mapping: dict[Null, InstanceTerm] = {}
        for block in blocks:
            if budget is not None:
                budget.charge_node()
            span.add("hom_tests")
            found = find_instance_homomorphism(block.facts, source)
            if found is None:
                return False, {}
            mapping.update(found)
        return True, mapping
