"""Result types returned by the solvers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.instance import Instance
from repro.runtime.budget import SolveStatus

__all__ = ["SolveResult", "CertainAnswerResult"]


@dataclass
class SolveResult:
    """The outcome of an existence-of-solutions decision (``SOL(P)``).

    Attributes:
        exists: whether a solution exists for the given ``(I, J)``.
            Meaningful only when ``status`` is ``DECIDED``; a degraded
            result reports False here because no witness was found, not
            because non-existence was proved.
        solution: a witness solution when one exists and the solver can
            produce one cheaply (all solvers in this library can); None
            when ``exists`` is False.
        method: which procedure decided the instance (``"tractable"``,
            ``"valuation-search"``, or ``"branching-chase"``).
        stats: solver-specific counters (chase steps, blocks, nulls per
            block, search nodes, ...), useful for the benchmark harness.
            On a degraded result these reflect the work done before the
            budget ran out.
        status: a :class:`~repro.runtime.SolveStatus`.  ``DECIDED`` means
            the answer is definitive; ``BUDGET_EXHAUSTED`` / ``DEADLINE``
            / ``CANCELLED`` mean the governed solver stopped early and
            this is a partial result.
        reason: human-readable detail for non-``DECIDED`` statuses.
        metrics: the :class:`repro.obs.MetricsRegistry` the caller passed
            into :func:`~repro.solver.solve`, populated with the run's
            instruments; None when no registry was supplied.  Typed
            loosely so this module stays import-light.
    """

    exists: bool
    solution: Instance | None = None
    method: str = ""
    stats: dict[str, Any] = field(default_factory=dict)
    status: SolveStatus = SolveStatus.DECIDED
    reason: str = ""
    metrics: Any | None = None

    @property
    def decided(self) -> bool:
        """True when the outcome is definitive (not a degraded partial)."""
        return self.status is SolveStatus.DECIDED

    def __bool__(self) -> bool:
        return self.exists


@dataclass
class CertainAnswerResult:
    """The outcome of a certain-answers computation.

    Attributes:
        answers: the set of certain answer tuples (for a Boolean query,
            either ``{()}`` for true or ``set()`` for false).  On a
            degraded result (``status`` not ``DECIDED``) this holds only
            the tuples *confirmed* certain before the budget ran out — a
            sound under-approximation.
        solutions_exist: whether any solution exists at all.  When False,
            the certain answers are vacuously "everything"; ``answers``
            then holds the candidate tuples that were requested (or ``{()}``
            for Boolean queries), and callers should consult this flag.
        stats: solver counters.
        status: a :class:`~repro.runtime.SolveStatus`; anything but
            ``DECIDED`` marks a partial computation.
        reason: human-readable detail for non-``DECIDED`` statuses.
        metrics: the :class:`repro.obs.MetricsRegistry` supplied by the
            caller, populated with the run's instruments; None when no
            registry was supplied.
    """

    answers: set[tuple]
    solutions_exist: bool
    stats: dict[str, Any] = field(default_factory=dict)
    status: SolveStatus = SolveStatus.DECIDED
    reason: str = ""
    metrics: Any | None = None

    @property
    def decided(self) -> bool:
        """True when the outcome is definitive (not a degraded partial)."""
        return self.status is SolveStatus.DECIDED

    @property
    def boolean_value(self) -> bool:
        """For a Boolean query: is the query certainly true?"""
        return () in self.answers
