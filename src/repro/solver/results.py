"""Result types returned by the solvers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.instance import Instance

__all__ = ["SolveResult", "CertainAnswerResult"]


@dataclass
class SolveResult:
    """The outcome of an existence-of-solutions decision (``SOL(P)``).

    Attributes:
        exists: whether a solution exists for the given ``(I, J)``.
        solution: a witness solution when one exists and the solver can
            produce one cheaply (all solvers in this library can); None
            when ``exists`` is False.
        method: which procedure decided the instance (``"tractable"``,
            ``"valuation-search"``, or ``"branching-chase"``).
        stats: solver-specific counters (chase steps, blocks, nulls per
            block, search nodes, ...), useful for the benchmark harness.
    """

    exists: bool
    solution: Instance | None = None
    method: str = ""
    stats: dict[str, Any] = field(default_factory=dict)

    def __bool__(self) -> bool:
        return self.exists


@dataclass
class CertainAnswerResult:
    """The outcome of a certain-answers computation.

    Attributes:
        answers: the set of certain answer tuples (for a Boolean query,
            either ``{()}`` for true or ``set()`` for false).
        solutions_exist: whether any solution exists at all.  When False,
            the certain answers are vacuously "everything"; ``answers``
            then holds the candidate tuples that were requested (or ``{()}``
            for Boolean queries), and callers should consult this flag.
        stats: solver counters.
    """

    answers: set[tuple]
    solutions_exist: bool
    stats: dict[str, Any] = field(default_factory=dict)

    @property
    def boolean_value(self) -> bool:
        """For a Boolean query: is the query certainly true?"""
        return () in self.answers
