"""Solvers for the algorithmic problems of peer data exchange.

* :func:`solve` / :func:`find_solution` — the existence-of-solutions
  problem SOL(P), with automatic dispatch between the polynomial Figure 3
  algorithm (``C_tract``), the NP valuation search (``Σ_t = ∅``), and the
  branching chase (target constraints).
* :func:`certain_answers` / :func:`is_certain` — certain answers of
  monotone target queries (Theorem 2 semantics).
* :func:`enumerate_solutions` — the minimal-solution family.
* :func:`brute_force_exists` — the naive oracle used in tests.
"""

from repro.solver.branching_chase import BranchingChaseSolver, exists_solution_branching
from repro.solver.certain_answers import certain_answers, is_certain
from repro.solver.enumeration import (
    brute_force_exists,
    enumerate_solutions,
    minimal_solution_sizes,
)
from repro.solver.exists_solution import find_solution, solve
from repro.solver.incremental import IncrementalTractableSolver
from repro.solver.explain import Explanation, explain
from repro.solver.minimize import minimize_solution
from repro.solver.multi import solve_multi
from repro.solver.naive_certain import naive_certain_answers
from repro.solver.results import CertainAnswerResult, SolveResult
from repro.solver.tractable import canonical_instances, exists_solution_tractable
from repro.solver.valuation_search import (
    ValuationSearch,
    exists_solution_valuation,
    iter_minimal_solutions,
)

__all__ = [
    "BranchingChaseSolver",
    "exists_solution_branching",
    "certain_answers",
    "is_certain",
    "brute_force_exists",
    "enumerate_solutions",
    "minimal_solution_sizes",
    "find_solution",
    "solve",
    "IncrementalTractableSolver",
    "Explanation",
    "explain",
    "naive_certain_answers",
    "solve_multi",
    "minimize_solution",
    "CertainAnswerResult",
    "SolveResult",
    "canonical_instances",
    "exists_solution_tractable",
    "ValuationSearch",
    "exists_solution_valuation",
    "iter_minimal_solutions",
]
