"""Top-level entry point for the existence-of-solutions problem SOL(P).

``solve`` dispatches to the appropriate procedure:

* settings in ``C_tract`` (Definition 9) run the polynomial-time
  ``ExistsSolution`` algorithm of Figure 3;
* settings whose ``Σ_t`` consists of egds and full tgds (including
  ``Σ_t = ∅``) outside ``C_tract`` run the complete NP valuation search
  over the nulls of ``J_can``;
* settings with existential target tgds run the branching-chase solver
  (complete for egds + weakly acyclic target tgds, per Theorem 1).

Every auto-dispatched result carries a ``stats["dispatch"]`` line from
:func:`repro.analysis.dispatch_explanation` quoting the static-analysis
codes (``PDE101``...) that pushed the setting off the polynomial path; the
same explanation is attached to the :class:`SolverError` raised when the
tractable algorithm is forced on a setting outside ``C_tract``.

Resource governance: every route accepts a
:class:`~repro.runtime.Budget`.  With a non-strict budget, exhaustion —
a cap, the wall-clock deadline, or cooperative cancellation — degrades
into a :class:`SolveResult` whose ``status`` says what ran out instead
of raising; a chase that exceeds its step ceiling
(:class:`~repro.exceptions.ChaseNonTermination`) degrades the same way,
since under governance "the chase did not finish" is a budget fact, not
a crash.  The legacy ``node_budget`` int keeps its historical
raise-on-exhaustion contract.

``find_solution`` additionally returns a witness solution.
"""

from __future__ import annotations

import time

from repro.core.instance import Instance
from repro.core.setting import PDESetting
from repro.exceptions import BudgetExceeded, ChaseNonTermination, SolverError
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.runtime.budget import DEFAULT_NODE_CAP, Budget, SolveStatus
from repro.solver.branching_chase import exists_solution_branching
from repro.solver.results import SolveResult
from repro.solver.tractable import exists_solution_tractable
from repro.solver.valuation_search import (
    exists_solution_valuation,
    supports_valuation_search,
)
from repro.tractability.classifier import classify

__all__ = ["solve", "find_solution"]


def _governed(result_method: str, budget: Budget | None, run) -> SolveResult:
    """Run ``run()`` and degrade exhaustion when ``budget`` is non-strict."""
    try:
        return run()
    except BudgetExceeded as exhausted:
        if budget is None or budget.strict:
            raise
        return SolveResult(
            exists=False,
            method=result_method,
            stats=dict(budget.snapshot()),
            status=SolveStatus(exhausted.status),
            reason=str(exhausted),
        )
    except ChaseNonTermination as overrun:
        if budget is None or budget.strict:
            raise
        return SolveResult(
            exists=False,
            method=result_method,
            stats=dict(budget.snapshot()),
            status=SolveStatus.BUDGET_EXHAUSTED,
            reason=str(overrun),
        )


def solve(
    setting: PDESetting,
    source: Instance,
    target: Instance,
    method: str = "auto",
    node_budget: int | None = None,
    budget: Budget | None = None,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
) -> SolveResult:
    """Decide whether a solution exists for ``(source, target)`` in ``setting``.

    Args:
        setting: the PDE setting.
        source: the source instance ``I`` (immutable peer; must be
            null-free).
        target: the target instance ``J``.
        method: ``"auto"`` (default dispatch), or force one of
            ``"tractable"``, ``"valuation"``, ``"branching"``.
        node_budget: legacy cap on search nodes for the NP procedures;
            exhaustion raises.  Ignored when ``budget`` is given.
        budget: a :class:`~repro.runtime.Budget` governing the whole
            solve.  Non-strict budgets degrade gracefully: the returned
            result carries ``status`` / ``reason`` instead of raising.
            When no budget is given, an uncapped strict accounting budget
            is still threaded through the chosen route, so every result's
            ``stats`` carry the final node/step/fact consumption.
        tracer: optional :class:`repro.obs.Tracer`; records a ``solve``
            span (dispatched solver, outcome, status) over the route's
            own spans, plus a ``dispatch`` event on the auto path.
        metrics: optional :class:`repro.obs.MetricsRegistry`; populated
            with the run's labels (solver, status), counters (absorbed
            from the result's stats under a ``solve.`` prefix), and a
            ``solve.duration_ms`` histogram observation.  The same
            registry is attached to the result as ``result.metrics``.

    Returns:
        a :class:`SolveResult`; ``result.solution`` is a witness when one
        exists and ``result.status`` says whether the answer is a theorem
        (``DECIDED``) or a partial, budget-bounded attempt.

    Raises:
        SolverError: if a forced method is unsound/unsupported for the
            setting, or a strict/legacy budget is exhausted.
    """
    # Imported lazily: repro.analysis depends on the tractability layer, and
    # keeping it out of module import time keeps the solver import-light.
    from repro.analysis import dispatch_explanation

    if tracer is None:
        tracer = NULL_TRACER
    started = time.perf_counter() if metrics is not None else 0.0

    with tracer.span("solve", method=method) as span:
        result = _solve_routed(
            setting, source, target, method, node_budget, budget, tracer,
            dispatch_explanation,
        )
        if tracer.enabled:
            span.set("dispatched", result.method)
            span.set("exists", result.exists)
            span.set("status", result.status.value)
    if metrics is not None:
        metrics.annotate("solve.solver", result.method)
        metrics.annotate("solve.status", result.status.value)
        metrics.absorb(result.stats, prefix="solve.")
        metrics.histogram("solve.duration_ms").observe(
            (time.perf_counter() - started) * 1000.0
        )
        result.metrics = metrics
    return result


def _solve_routed(
    setting: PDESetting,
    source: Instance,
    target: Instance,
    method: str,
    node_budget: int | None,
    budget: Budget | None,
    tracer: Tracer,
    dispatch_explanation,
) -> SolveResult:
    """Route one solve call; ``budget`` is the caller's (possibly None).

    Each route passes the solver an *accounting* budget: the caller's
    when one was given, otherwise a strict substitute that never changes
    raise-vs-degrade behavior — uncapped for the polynomial routes, the
    legacy node cap for the NP ones — so ``Budget.snapshot()`` counters
    reach the stats of *successful* results too.  :func:`_governed`'s
    degrade-vs-raise decision stays keyed on the caller's ``budget``.
    """

    if method == "tractable":
        if not classify(setting).in_ctract:
            raise SolverError(
                "the ExistsSolution algorithm of Figure 3 is only sound for "
                "C_tract settings "
                f"[{dispatch_explanation(setting, in_ctract=False)}]"
            )
        accounting = budget if budget is not None else Budget(strict=True)
        return _governed(
            "tractable",
            budget,
            lambda: exists_solution_tractable(
                setting, source, target, check_membership=False,
                budget=accounting, tracer=tracer,
            ),
        )
    if method == "valuation":
        accounting = (
            budget
            if budget is not None
            else Budget.from_legacy(node_budget) or Budget(strict=True)
        )
        return _governed(
            "valuation-search",
            budget,
            lambda: exists_solution_valuation(
                setting, source, target, budget=accounting, tracer=tracer
            ),
        )
    if method == "branching":
        legacy_cap = node_budget if node_budget is not None else DEFAULT_NODE_CAP
        accounting = (
            budget if budget is not None else Budget(node_cap=legacy_cap, strict=True)
        )
        return _governed(
            "branching-chase",
            budget,
            lambda: exists_solution_branching(
                setting, source, target, budget=accounting, tracer=tracer
            ),
        )
    if method != "auto":
        raise ValueError(f"unknown method {method!r}")

    report = classify(setting)
    if report.in_ctract:
        tracer.event("dispatch", chosen="tractable", reason="setting is in C_tract")
        accounting = budget if budget is not None else Budget(strict=True)
        return _governed(
            "tractable",
            budget,
            lambda: exists_solution_tractable(
                setting, source, target, check_membership=False,
                budget=accounting, tracer=tracer,
            ),
        )
    explanation = dispatch_explanation(setting, in_ctract=False)
    if supports_valuation_search(setting):
        tracer.event("dispatch", chosen="valuation-search", reason=explanation)
        accounting = (
            budget
            if budget is not None
            else Budget.from_legacy(node_budget) or Budget(strict=True)
        )
        result = _governed(
            "valuation-search",
            budget,
            lambda: exists_solution_valuation(
                setting, source, target, budget=accounting, tracer=tracer
            ),
        )
    else:
        tracer.event("dispatch", chosen="branching-chase", reason=explanation)
        legacy_cap = node_budget if node_budget is not None else DEFAULT_NODE_CAP
        accounting = (
            budget if budget is not None else Budget(node_cap=legacy_cap, strict=True)
        )
        result = _governed(
            "branching-chase",
            budget,
            lambda: exists_solution_branching(
                setting, source, target, budget=accounting, tracer=tracer
            ),
        )
    result.stats.setdefault("dispatch", explanation)
    return result


def find_solution(
    setting: PDESetting,
    source: Instance,
    target: Instance,
    method: str = "auto",
    node_budget: int | None = None,
    budget: Budget | None = None,
    tracer: Tracer | None = None,
) -> Instance | None:
    """Return a witness solution for ``(source, target)``, or None.

    Thin wrapper over :func:`solve` for callers that only need the witness.
    Degraded (non-``DECIDED``) results report None: no witness was found.
    """
    result = solve(
        setting,
        source,
        target,
        method=method,
        node_budget=node_budget,
        budget=budget,
        tracer=tracer,
    )
    return result.solution if result.exists else None
