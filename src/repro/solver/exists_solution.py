"""Top-level entry point for the existence-of-solutions problem SOL(P).

``solve`` dispatches to the appropriate procedure:

* settings in ``C_tract`` (Definition 9) run the polynomial-time
  ``ExistsSolution`` algorithm of Figure 3;
* settings whose ``Σ_t`` consists of egds and full tgds (including
  ``Σ_t = ∅``) outside ``C_tract`` run the complete NP valuation search
  over the nulls of ``J_can``;
* settings with existential target tgds run the branching-chase solver
  (complete for egds + weakly acyclic target tgds, per Theorem 1).

Every auto-dispatched result carries a ``stats["dispatch"]`` line from
:func:`repro.analysis.dispatch_explanation` quoting the static-analysis
codes (``PDE101``...) that pushed the setting off the polynomial path; the
same explanation is attached to the :class:`SolverError` raised when the
tractable algorithm is forced on a setting outside ``C_tract``.

``find_solution`` additionally returns a witness solution.
"""

from __future__ import annotations

from repro.core.instance import Instance
from repro.core.setting import PDESetting
from repro.exceptions import SolverError
from repro.solver.branching_chase import exists_solution_branching
from repro.solver.results import SolveResult
from repro.solver.tractable import exists_solution_tractable
from repro.solver.valuation_search import (
    exists_solution_valuation,
    supports_valuation_search,
)
from repro.tractability.classifier import classify

__all__ = ["solve", "find_solution"]


def solve(
    setting: PDESetting,
    source: Instance,
    target: Instance,
    method: str = "auto",
    node_budget: int | None = None,
) -> SolveResult:
    """Decide whether a solution exists for ``(source, target)`` in ``setting``.

    Args:
        setting: the PDE setting.
        source: the source instance ``I`` (immutable peer; must be
            null-free).
        target: the target instance ``J``.
        method: ``"auto"`` (default dispatch), or force one of
            ``"tractable"``, ``"valuation"``, ``"branching"``.
        node_budget: optional cap on search nodes for the NP procedures.

    Returns:
        a :class:`SolveResult`; ``result.solution`` is a witness when one
        exists.

    Raises:
        SolverError: if a forced method is unsound/unsupported for the
            setting, or a node budget is exhausted.
    """
    # Imported lazily: repro.analysis depends on the tractability layer, and
    # keeping it out of module import time keeps the solver import-light.
    from repro.analysis import dispatch_explanation

    if method == "tractable":
        if not classify(setting).in_ctract:
            raise SolverError(
                "the ExistsSolution algorithm of Figure 3 is only sound for "
                "C_tract settings "
                f"[{dispatch_explanation(setting, in_ctract=False)}]"
            )
        return exists_solution_tractable(setting, source, target, check_membership=False)
    if method == "valuation":
        return exists_solution_valuation(setting, source, target, node_budget=node_budget)
    if method == "branching":
        budget = node_budget if node_budget is not None else 500_000
        return exists_solution_branching(setting, source, target, node_budget=budget)
    if method != "auto":
        raise ValueError(f"unknown method {method!r}")

    report = classify(setting)
    if report.in_ctract:
        return exists_solution_tractable(setting, source, target, check_membership=False)
    explanation = dispatch_explanation(setting, in_ctract=False)
    if supports_valuation_search(setting):
        result = exists_solution_valuation(
            setting, source, target, node_budget=node_budget
        )
    else:
        budget = node_budget if node_budget is not None else 500_000
        result = exists_solution_branching(setting, source, target, node_budget=budget)
    result.stats.setdefault("dispatch", explanation)
    return result


def find_solution(
    setting: PDESetting,
    source: Instance,
    target: Instance,
    method: str = "auto",
    node_budget: int | None = None,
) -> Instance | None:
    """Return a witness solution for ``(source, target)``, or None.

    Thin wrapper over :func:`solve` for callers that only need the witness.
    """
    result = solve(setting, source, target, method=method, node_budget=node_budget)
    return result.solution if result.exists else None
