"""Human-readable analysis reports for PDE settings.

``describe_setting`` assembles everything the library can derive
statically from a setting — classification against Definition 9, marked
positions/variables, dependency-graph shape, weak acyclicity of the
target constraints, recommended solver — into a markdown document, for
documentation or code review of a deployed exchange.  When a recorded
trace is supplied (a :class:`repro.obs.Tracer`, a span list, or the path
of a ``--trace`` JSONL file), the report gains a "Last run" section
showing the dispatched solver, the rendered span tree, and aggregated
counters from that run.

``position_graph_dot`` and ``relation_graph_dot`` render the two
dependency graphs (Definition 5's position graph with its special edges,
and the PDMS-style relation graph of Section 3.2) in Graphviz DOT syntax.
"""

from __future__ import annotations

from os import PathLike

from repro.core.dependency_graph import is_acyclic, relation_dependency_graph
from repro.core.setting import PDESetting
from repro.core.weak_acyclicity import build_position_graph
from repro.io.serialization import dependency_to_text
from repro.tractability.classifier import classify
from repro.tractability.marking import marked_positions, marked_variables
from repro.solver.valuation_search import supports_valuation_search

__all__ = ["describe_setting", "position_graph_dot", "relation_graph_dot"]


def _trace_roots(trace) -> list:
    """Normalize a trace argument into a list of root spans.

    Accepts a :class:`repro.obs.Tracer`, an iterable of spans, or a path
    to a ``--trace`` JSONL file.
    """
    from repro.obs.exporters import read_trace_jsonl
    from repro.obs.tracer import Tracer

    if isinstance(trace, Tracer):
        return list(trace.roots)
    if isinstance(trace, (str, PathLike)):
        return read_trace_jsonl(trace)
    return list(trace)


def _last_run_section(trace) -> list[str]:
    from repro.obs.exporters import aggregate_spans, render_span_tree

    roots = _trace_roots(trace)
    lines = ["## Last run", ""]
    if not roots:
        lines.append("*(trace is empty)*")
        lines.append("")
        return lines
    solve_span = None
    for root in roots:
        solve_span = root.find("solve")
        if solve_span is not None:
            break
    if solve_span is not None:
        dispatched = solve_span.attributes.get("dispatched", "?")
        exists = solve_span.attributes.get("exists", "?")
        status = solve_span.attributes.get("status", "?")
        lines.append(
            f"* dispatched solver: **{dispatched}** "
            f"(exists: {exists}, status: {status}, "
            f"{solve_span.duration * 1000:.2f} ms)"
        )
        lines.append("")
    lines.append("### Span tree")
    lines.append("")
    lines.append("```")
    lines.append(render_span_tree(roots))
    lines.append("```")
    lines.append("")
    lines.append("### Aggregated spans")
    lines.append("")
    lines.append("| span | count | total (ms) | self (ms) |")
    lines.append("| --- | ---: | ---: | ---: |")
    for entry in aggregate_spans(roots):
        lines.append(
            f"| {entry['name']} | {entry['count']} "
            f"| {entry['total_s'] * 1000:.2f} | {entry['self_s'] * 1000:.2f} |"
        )
    counters: dict[str, float] = {}
    for root in roots:
        for _depth, span in root.walk():
            for name, value in span.counters.items():
                counters[name] = counters.get(name, 0) + value
    if counters:
        lines.append("")
        lines.append("### Counters")
        lines.append("")
        for name in sorted(counters):
            lines.append(f"* {name}: {counters[name]}")
    lines.append("")
    return lines


def _solver_for(setting: PDESetting) -> str:
    report = classify(setting)
    if report.in_ctract:
        return "tractable (Figure 3 ExistsSolution — polynomial time)"
    if supports_valuation_search(setting):
        return "valuation-search (complete NP procedure over the nulls of J_can)"
    return "branching-chase (complete for egds + weakly acyclic target tgds)"


def describe_setting(setting: PDESetting, trace=None) -> str:
    """Return a markdown analysis report for ``setting``.

    Args:
        setting: the PDE setting to analyze.
        trace: optional record of a run against this setting — a
            :class:`repro.obs.Tracer`, an iterable of root
            :class:`repro.obs.Span` objects, or the path of a JSONL trace
            file written by ``--trace``.  When given, the report ends with
            a "Last run" section (dispatched solver, span tree, aggregated
            counters).
    """
    report = classify(setting)
    positions = marked_positions(setting.sigma_st)
    lines: list[str] = []
    lines.append(f"# Setting analysis: {setting.name or 'unnamed PDE setting'}")
    lines.append("")
    lines.append(f"* source schema: `{setting.source_schema}`")
    lines.append(f"* target schema: `{setting.target_schema}`")
    lines.append("")

    lines.append("## Dependencies")
    lines.append("")
    for title, block in (
        ("Σ_st (source-to-target)", setting.sigma_st),
        ("Σ_ts (target-to-source)", setting.sigma_ts),
        ("Σ_t (target constraints)", setting.sigma_t),
    ):
        lines.append(f"### {title}")
        if not block:
            lines.append("*(empty)*")
        for dependency in block:
            lines.append(f"- `{dependency_to_text(dependency)}`")
        lines.append("")

    lines.append("## Tractability (Definitions 8-9)")
    lines.append("")
    lines.append(f"* in C_tract: **{report.in_ctract}** ({report.subclass()})")
    lines.append(
        f"* condition 1: {report.condition1}; condition 2.1: "
        f"{report.condition2_1}; condition 2.2: {report.condition2_2}"
    )
    if positions:
        rendered = ", ".join(f"({name}, {index})" for name, index in sorted(positions))
        lines.append(f"* marked positions: {rendered}")
    else:
        lines.append("* marked positions: none (Σ_st is full)")
    for dependency in setting.sigma_ts:
        marked = marked_variables(dependency, positions)
        if marked:
            rendered = ", ".join(sorted(v.name for v in marked))
            lines.append(
                f"* marked variables of `{dependency_to_text(dependency)}`: {rendered}"
            )
    for violation in report.violations:
        lines.append(f"* violation: {violation}")
    lines.append("")

    lines.append("## Structure")
    lines.append("")
    graph = relation_dependency_graph(setting.all_dependencies())
    lines.append(f"* relation-level dependency graph acyclic: {is_acyclic(graph)}")
    lines.append(
        f"* target tgds weakly acyclic: {setting.target_tgds_weakly_acyclic()}"
    )
    position_graph = build_position_graph(
        [d for d in setting.all_dependencies() if hasattr(d, "head")
         and not hasattr(d, "disjuncts")]
    )
    lines.append(
        f"* position graph: {len(position_graph.nodes)} positions, "
        f"{position_graph.edge_count()} edges "
        f"({len(position_graph.special_edges())} special)"
    )
    lines.append("")
    lines.append("## Recommended solver")
    lines.append("")
    lines.append(f"* `solve()` will dispatch to: {_solver_for(setting)}")
    if trace is not None:
        lines.append("")
        lines.extend(_last_run_section(trace))
        while lines and lines[-1] == "":
            lines.pop()
    return "\n".join(lines) + "\n"


def relation_graph_dot(setting: PDESetting) -> str:
    """Render the relation-level dependency graph in DOT syntax.

    Source relations are drawn as boxes, target relations as ellipses.
    """
    graph = relation_dependency_graph(setting.all_dependencies())
    lines = ["digraph relations {", "  rankdir=LR;"]
    for node in sorted(graph):
        shape = "box" if node in setting.source_schema else "ellipse"
        lines.append(f'  "{node}" [shape={shape}];')
    for node in sorted(graph):
        for successor in sorted(graph[node]):
            lines.append(f'  "{node}" -> "{successor}";')
    lines.append("}")
    return "\n".join(lines) + "\n"


def position_graph_dot(setting: PDESetting) -> str:
    """Render Definition 5's position graph in DOT syntax.

    Special edges (the ones weak acyclicity forbids on cycles) are drawn
    dashed and labeled ``*``.
    """
    tgds = [
        d for d in setting.all_dependencies()
        if hasattr(d, "head") and not hasattr(d, "disjuncts")
    ]
    graph = build_position_graph(tgds)
    lines = ["digraph positions {", "  rankdir=LR;"]
    for name, index in sorted(graph.nodes):
        lines.append(f'  "{name}.{index}";')
    for source, targets in sorted(graph.regular.items()):
        for target in sorted(targets):
            lines.append(
                f'  "{source[0]}.{source[1]}" -> "{target[0]}.{target[1]}";'
            )
    for source, targets in sorted(graph.special.items()):
        for target in sorted(targets):
            lines.append(
                f'  "{source[0]}.{source[1]}" -> "{target[0]}.{target[1]}" '
                f'[style=dashed, label="*"];'
            )
    lines.append("}")
    return "\n".join(lines) + "\n"
