"""Incremental peer synchronization sessions.

The paper's motivating scenario (Introduction) is *periodic*: "at regular
intervals of time, the university database is willing to receive new data
from Swiss-Prot".  Re-solving from scratch at every interval wastes the
work of previous rounds; a :class:`SyncSession` maintains the materialized
target state across rounds and only processes the delta.

Model per round:

* the source peer publishes a new snapshot ``I_t`` (facts may be added or
  withdrawn — the source is authoritative, so withdrawals are legitimate);
* the target's current materialized state ``M_{t-1}`` plays the role of
  ``J`` — except that facts imported in earlier rounds which the source no
  longer vouches for must not block the sync: the session distinguishes
  *pinned* facts (the target's own data, which must survive, per
  Definition 2's ``J ⊆ J'``) from *imported* facts (materialized from
  earlier rounds, which may be retracted when the authority withdraws
  their justification);
* the session solves ``SOL(P)(I_t, pinned)`` seeded with the still-valid
  imported facts and reports the round's delta.

The incremental trick: imported facts that are still consistent with
``I_t`` are passed as part of the target instance, so the solver's chase
starts from the previous materialization instead of from scratch; facts
that lost their justification are retracted first (and reported).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.chase import satisfies
from repro.core.instance import Instance
from repro.core.setting import PDESetting
from repro.exceptions import SolverError
from repro.solver.exists_solution import solve

__all__ = ["SyncOutcome", "SyncSession"]


@dataclass
class SyncOutcome:
    """The result of one synchronization round.

    Attributes:
        ok: the round produced a consistent materialization.
        added: facts newly imported this round.
        retracted: previously imported facts dropped because the source no
            longer vouches for them.
        state: the materialized target state after the round.
        reason: when ``ok`` is False, why the round was rejected.
    """

    ok: bool
    added: Instance
    retracted: Instance
    state: Instance
    reason: str = ""

    @property
    def changed(self) -> bool:
        """Did the round modify the materialized state?"""
        return bool(len(self.added) or len(self.retracted))


@dataclass
class SyncSession:
    """A long-lived synchronization session between two peers.

    Args:
        setting: the PDE setting governing the exchange.
        pinned: the target peer's own facts — the ``J`` of Definition 2;
            every materialization must contain them.
    """

    setting: PDESetting
    pinned: Instance = field(default_factory=Instance)
    _imported: Instance = field(default_factory=Instance)
    rounds: int = 0

    def state(self) -> Instance:
        """The current materialized target state (pinned + imported)."""
        return self.pinned.union(self._imported)

    def _still_justified(self, source: Instance) -> tuple[Instance, Instance]:
        """Split imported facts into (still consistent, to retract).

        An imported fact survives iff keeping it cannot violate ``Σ_ts``:
        we keep the maximal subset of imported facts such that the target
        fragment they form satisfies the target-to-source constraints
        against the new source.  Because ``Σ_ts`` is anti-monotone in the
        target, greedy removal of facts participating in violated premises
        reaches such a subset.
        """
        survivors = self.pinned.union(self._imported)
        retracted = Instance(schema=self.setting.target_schema)
        changed = True
        while changed:
            changed = False
            combined = self.setting.combine(source, survivors)
            if satisfies(combined, self.setting.sigma_ts):
                break
            # Drop one imported fact from some violated premise and retry.
            from repro.core.homomorphism import iter_homomorphisms
            from repro.core.dependencies import TGD

            for dependency in self.setting.sigma_ts:
                for assignment in iter_homomorphisms(dependency.body, survivors):
                    exported = {
                        v: value
                        for v, value in assignment.items()
                        if v in dependency.body_variables()
                    }
                    from repro.core.homomorphism import find_homomorphism

                    satisfied = False
                    if isinstance(dependency, TGD):
                        used = set()
                        for atom in dependency.head:
                            used |= atom.variables()
                        relevant = {v: val for v, val in exported.items() if v in used}
                        satisfied = (
                            find_homomorphism(dependency.head, source, relevant)
                            is not None
                        )
                    else:
                        for disjunct in dependency.disjuncts:
                            used = set()
                            for atom in disjunct:
                                used |= atom.variables()
                            relevant = {
                                v: val for v, val in exported.items() if v in used
                            }
                            if (
                                find_homomorphism(list(disjunct), source, relevant)
                                is not None
                            ):
                                satisfied = True
                                break
                    if satisfied:
                        continue
                    # Retract the first non-pinned fact of the premise.
                    premise_facts = [
                        atom.substitute(assignment).to_fact()
                        for atom in dependency.body
                    ]
                    dropped = False
                    for fact in premise_facts:
                        if fact in self._imported and fact not in self.pinned:
                            survivors.discard(fact)
                            retracted.add(fact)
                            dropped = True
                            break
                    if dropped:
                        changed = True
                        break
                if changed:
                    break
            else:
                break
        kept = Instance(schema=self.setting.target_schema)
        for fact in survivors:
            if fact in self._imported and fact not in retracted:
                kept.add(fact)
        return kept, retracted

    def sync(self, source: Instance, node_budget: int | None = None) -> SyncOutcome:
        """Run one synchronization round against a new source snapshot.

        Returns a :class:`SyncOutcome`; when the round is rejected (the
        *pinned* facts themselves are incompatible with the new source),
        the materialized state is left unchanged.
        """
        self.rounds += 1
        kept, retracted = self._still_justified(source)
        seed = self.pinned.union(kept)
        try:
            result = solve(self.setting, source, seed, node_budget=node_budget)
        except SolverError as error:
            return SyncOutcome(
                ok=False,
                added=Instance(),
                retracted=Instance(),
                state=self.state(),
                reason=str(error),
            )
        if not result.exists:
            return SyncOutcome(
                ok=False,
                added=Instance(),
                retracted=Instance(),
                state=self.state(),
                reason=(
                    "the target's pinned facts are incompatible with the new "
                    "source snapshot"
                ),
            )

        new_state = result.solution
        added = Instance(schema=self.setting.target_schema)
        previous = self.state()
        for fact in new_state:
            if fact not in previous:
                added.add(fact)
        self._imported = Instance(schema=self.setting.target_schema)
        for fact in new_state:
            if fact not in self.pinned:
                self._imported.add(fact)
        return SyncOutcome(
            ok=True,
            added=added,
            retracted=retracted,
            state=self.state(),
        )
