"""Incremental peer synchronization sessions.

The paper's motivating scenario (Introduction) is *periodic*: "at regular
intervals of time, the university database is willing to receive new data
from Swiss-Prot".  Re-solving from scratch at every interval wastes the
work of previous rounds; a :class:`SyncSession` maintains the materialized
target state across rounds and only processes the delta.

Model per round:

* the source peer publishes a new snapshot ``I_t`` (facts may be added or
  withdrawn — the source is authoritative, so withdrawals are legitimate);
* the target's current materialized state ``M_{t-1}`` plays the role of
  ``J`` — except that facts imported in earlier rounds which the source no
  longer vouches for must not block the sync: the session distinguishes
  *pinned* facts (the target's own data, which must survive, per
  Definition 2's ``J ⊆ J'``) from *imported* facts (materialized from
  earlier rounds, which may be retracted when the authority withdraws
  their justification);
* the session solves ``SOL(P)(I_t, pinned)`` seeded with the still-valid
  imported facts and reports the round's delta.

The incremental trick: imported facts that are still consistent with
``I_t`` are passed as part of the target instance, so the solver's chase
starts from the previous materialization instead of from scratch; facts
that lost their justification are retracted first (and reported).

Resilience (the :mod:`repro.runtime` integration):

* a round may be governed by a :class:`~repro.runtime.Budget`; when the
  budget runs out the round *degrades* — the outcome reports a
  non-``DECIDED`` :class:`~repro.runtime.SolveStatus` and the state stays
  unchanged — instead of corrupting the materialization;
* a :class:`~repro.runtime.RetryPolicy` re-attempts budget-exhausted
  rounds with escalated caps and jittered backoff (deadline expiry and
  cancellation are never retried: the deadline is shared by all attempts,
  and cancellation is a directive);
* a :class:`~repro.runtime.SessionJournal` makes the session crash-safe:
  each successful round is committed to the journal *before* the
  in-memory state is updated, and :meth:`SyncSession.resume` rebuilds a
  session from the journal after a crash.

Epoch-aware ingestion (the :mod:`repro.net` integration): real peer
transports deliver at-least-once and out of order, so a session fed from
a network must not re-apply a duplicated snapshot or regress to a stale
one.  A publisher stamps each snapshot with a :class:`Stamp` — a
``(epoch, seq)`` pair, ordered lexicographically: ``seq`` increments per
publish, ``epoch`` increments when the publisher restarts (resetting
``seq``).  ``sync(..., stamp=...)`` ingests a snapshot only when its
stamp is *strictly newer* than the session's watermark; otherwise the
round is a stale no-op (``outcome.stale``), which makes stamped ingestion
idempotent.  The watermark commits to the journal atomically with the
round it protects, so it survives crashes.

Delta rounds: the motivating scenario is periodic, so consecutive
snapshots overlap heavily and shipping the full snapshot every interval
wastes the wire.  :meth:`SyncSession.sync_delta` ingests an incremental
``(added, withdrawn)`` payload keyed on the *base* stamp of the snapshot
it patches: the session reconstructs ``I_t = (I_{t-1} - withdrawn) ∪
added`` from its retained copy of the last ingested source and runs the
ordinary stamped round on the result — the delta is pure wire-format
optimization, invisible to the solver.  The chain is validated first: a
delta applies only when the session's watermark equals the base stamp
and the base snapshot is retained; otherwise the round reports
``outcome.reason == DELTA_CHAIN_BROKEN`` (and ``outcome.chain_broken``)
without touching any state, telling the sender to fall back to a full
snapshot.  The retained source commits to the journal with its round, so
a resumed session keeps its delta chain intact across crashes; journals
written before delta support load with no retained source and simply
break the chain once, forcing one full-snapshot refresh.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import NamedTuple

from repro.core.chase import _unify_row, satisfies
from repro.core.dependencies import TGD
from repro.core.homomorphism import find_homomorphism, iter_homomorphisms
from repro.core.instance import Instance
from repro.core.setting import PDESetting
from repro.exceptions import BudgetExceeded, SolverError
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.runtime.budget import Budget, SolveStatus
from repro.runtime.journal import SessionJournal
from repro.runtime.retry import RetryPolicy
from repro.solver.exists_solution import _governed, solve
from repro.solver.incremental import IncrementalTractableSolver

__all__ = [
    "DELTA_CHAIN_BROKEN",
    "Stamp",
    "SyncOutcome",
    "SyncSession",
    "watermark_lag",
]

#: The :attr:`SyncOutcome.reason` reported when a delta's base stamp does
#: not match the session's watermark (or no base snapshot is retained).
#: The sender's contract: on this reason, fall back to a full snapshot.
DELTA_CHAIN_BROKEN = "delta-chain-broken"


class Stamp(NamedTuple):
    """A monotone snapshot stamp: ``(epoch, seq)``, lexicographic order.

    ``seq`` increments with every publish; ``epoch`` increments when the
    publisher restarts or re-baselines (``seq`` restarts at 0, and the
    higher epoch still wins).  Tuple comparison gives exactly the
    protocol order, so ``stamp <= watermark`` means *stale*.
    """

    epoch: int
    seq: int

    def __str__(self) -> str:
        return f"{self.epoch}.{self.seq}"


def watermark_lag(
    published: "list[Stamp] | list[tuple[int, int]]",
    watermark: "Stamp | tuple[int, int] | None",
) -> int:
    """How many published stamps a peer's watermark has not yet absorbed.

    The convergence-lag primitive shared by the simulator and the real
    daemon: given the publisher's history of published stamps and one
    peer's applied watermark, the lag is the number of publishes stamped
    *strictly above* the watermark — publishes whose effect the peer has
    not yet seen.  A peer that never applied anything (``watermark is
    None``) lags by the full history; a peer at the head lags 0.  Pure
    stamp arithmetic — lexicographic tuple comparison, the same order
    that makes ingestion idempotent — so both network stacks compute the
    identical number.
    """
    stamps = [Stamp(*stamp) for stamp in published]
    if watermark is None:
        return len(stamps)
    mark = Stamp(*watermark)
    return sum(1 for stamp in stamps if stamp > mark)


@dataclass
class SyncOutcome:
    """The result of one synchronization round.

    Attributes:
        ok: the round produced a consistent materialization.
        added: facts newly imported this round.
        retracted: previously imported facts dropped because the source no
            longer vouches for them.
        state: the materialized target state after the round.
        reason: when ``ok`` is False, why the round was rejected (or what
            budget ran out, for degraded rounds).
        status: ``DECIDED`` when the round ran to completion (successfully
            or as a definitive rejection); a degraded status
            (``BUDGET_EXHAUSTED`` / ``DEADLINE`` / ``CANCELLED``) when the
            governed solve gave up — the state is untouched and the round
            may simply be re-run later.
        attempts: how many solve attempts the round used (> 1 when a
            :class:`~repro.runtime.RetryPolicy` escalated a budget).
        metrics: the :class:`repro.obs.MetricsRegistry` the caller passed
            into :meth:`SyncSession.sync`, populated with the round's
            instruments; None when no registry was supplied.
        stale: the snapshot's :class:`Stamp` was not newer than the
            session's watermark, so the round was skipped as a duplicate
            or out-of-order redelivery (``ok`` is True — rejecting a
            replay is the protocol working, not an error — and the state
            is untouched).
        delta: the round ingested an incremental ``(added, withdrawn)``
            payload via :meth:`SyncSession.sync_delta` rather than a full
            snapshot.
    """

    ok: bool
    added: Instance
    retracted: Instance
    state: Instance
    reason: str = ""
    status: SolveStatus = SolveStatus.DECIDED
    attempts: int = 1
    metrics: MetricsRegistry | None = None
    stale: bool = False
    delta: bool = False

    @property
    def changed(self) -> bool:
        """Did the round modify the materialized state?"""
        return bool(len(self.added) or len(self.retracted))

    @property
    def degraded(self) -> bool:
        """True when the round gave up on a budget rather than deciding."""
        return self.status is not SolveStatus.DECIDED

    @property
    def chain_broken(self) -> bool:
        """True when a delta round's base did not match the watermark.

        The state is untouched; the sender should re-offer a full
        snapshot (the stamped protocol makes the re-offer idempotent).
        """
        return self.reason == DELTA_CHAIN_BROKEN


@dataclass
class SyncSession:
    """A long-lived synchronization session between two peers.

    Args:
        setting: the PDE setting governing the exchange.
        pinned: the target peer's own facts — the ``J`` of Definition 2;
            every materialization must contain them.
        journal: optional :class:`~repro.runtime.SessionJournal`; when
            given, every successful round is durably committed before the
            in-memory state changes, and :meth:`resume` can rebuild the
            session after a crash.
        retry: optional :class:`~repro.runtime.RetryPolicy` applied to
            budget-exhausted rounds.
    """

    setting: PDESetting
    pinned: Instance = field(default_factory=Instance)
    journal: SessionJournal | None = None
    retry: RetryPolicy | None = None
    #: Solve rounds with the stateful semi-naive solver when the setting
    #: allows it (C_tract).  Flipped off automatically for settings the
    #: incremental pipeline cannot serve; flip off manually to force the
    #: historical from-scratch solve on every round.
    incremental: bool = True
    _imported: Instance = field(default_factory=Instance)
    rounds: int = 0
    #: Watermark of the newest stamped snapshot ever ingested; None until
    #: the first stamped round.  Snapshots at or below it are stale.
    last_stamp: Stamp | None = None
    #: The source snapshot of the last *applied* stamped round — the base
    #: a subsequent delta patches.  None until a stamped round applies
    #: (deltas are keyed on stamps, so unstamped rounds retain nothing).
    _last_source: Instance | None = None
    #: Lazily constructed incremental solver (see ``incremental``).
    _solver: IncrementalTractableSolver | None = field(default=None, repr=False)

    @classmethod
    def resume(cls, journal: SessionJournal) -> "SyncSession":
        """Rebuild a session from its journal (after a crash or restart).

        The restored session has the setting, pinned facts, imported
        facts, round counter, and stamp watermark of the last durably
        committed round; un-committed work is simply re-run by the next
        :meth:`sync` (stamped ingestion makes the re-run idempotent).
        """
        state = journal.load()
        session = cls(setting=state.setting, pinned=state.pinned, journal=journal)
        session._imported = state.imported
        session.rounds = state.rounds
        if state.stamp is not None:
            session.last_stamp = Stamp(*state.stamp)
        session._last_source = state.source
        return session

    def state(self) -> Instance:
        """The current materialized target state (pinned + imported)."""
        return self.pinned.union(self._imported)

    @property
    def last_source(self) -> Instance | None:
        """The source snapshot of the last applied stamped round.

        This is the snapshot a relay re-publishes downstream: forwarding
        the applied source (rather than the materialized target) keeps
        every hop exchanging *source* facts, so a chain of peers computes
        the same solutions as direct subscribers of the origin.  ``None``
        until a stamped round applies.
        """
        return self._last_source

    def _still_justified(self, source: Instance) -> tuple[Instance, Instance]:
        """Split imported facts into (still consistent, to retract).

        An imported fact survives iff keeping it cannot violate ``Σ_ts``:
        we keep the maximal subset of imported facts such that the target
        fragment they form satisfies the target-to-source constraints
        against the new source.  Because ``Σ_ts`` is anti-monotone in the
        target, greedy removal of facts participating in violated premises
        reaches such a subset.
        """
        survivors = self.pinned.union(self._imported)
        retracted = Instance(schema=self.setting.target_schema)
        changed = True
        while changed:
            changed = False
            combined = self.setting.combine(source, survivors)
            if satisfies(combined, self.setting.sigma_ts):
                break
            # Drop one imported fact from some violated premise and retry.
            for dependency in self.setting.sigma_ts:
                for assignment in iter_homomorphisms(dependency.body, survivors):
                    exported = {
                        v: value
                        for v, value in assignment.items()
                        if v in dependency.body_variables()
                    }
                    satisfied = False
                    if isinstance(dependency, TGD):
                        used = set()
                        for atom in dependency.head:
                            used |= atom.variables()
                        relevant = {v: val for v, val in exported.items() if v in used}
                        satisfied = (
                            find_homomorphism(dependency.head, source, relevant)
                            is not None
                        )
                    else:
                        for disjunct in dependency.disjuncts:
                            used = set()
                            for atom in disjunct:
                                used |= atom.variables()
                            relevant = {
                                v: val for v, val in exported.items() if v in used
                            }
                            if (
                                find_homomorphism(list(disjunct), source, relevant)
                                is not None
                            ):
                                satisfied = True
                                break
                    if satisfied:
                        continue
                    # Retract the first non-pinned fact of the premise.
                    premise_facts = [
                        atom.substitute(assignment).to_fact()
                        for atom in dependency.body
                    ]
                    dropped = False
                    for fact in premise_facts:
                        if fact in self._imported and fact not in self.pinned:
                            survivors.discard(fact)
                            retracted.add(fact)
                            dropped = True
                            break
                    if dropped:
                        changed = True
                        break
                if changed:
                    break
            else:
                break
        kept = Instance(schema=self.setting.target_schema)
        for fact in survivors:
            if fact in self._imported and fact not in retracted:
                kept.add(fact)
        return kept, retracted

    def _still_justified_delta(
        self, source: Instance, withdrawn: Instance
    ) -> tuple[Instance, Instance] | None:
        """Delta-narrowed retraction scan; None when the fast path is off.

        Sound only under the delta-round invariant (which
        :meth:`sync_delta` establishes before calling): the current state
        was committed as part of a solution against the retained base
        source, so every ``Σ_ts`` body match over it had a head witness
        there.  A source differing only by ``(added, withdrawn)`` can
        invalidate a match only if its head witness used a withdrawn
        fact — so only body matches whose heads unify with withdrawn rows
        are re-checked, instead of re-enumerating every match.
        Disjunctive ``Σ_ts`` dependencies keep the full scan.
        """
        for dependency in self.setting.sigma_ts:
            if not isinstance(dependency, TGD):
                return None
        retracted = Instance(schema=self.setting.target_schema)
        withdrawn_rows: dict[str, set] = {}
        for fact in withdrawn:
            withdrawn_rows.setdefault(fact.relation, set()).add(fact.args)
        if not withdrawn_rows:
            # Additions alone cannot break a witness (Σ_ts heads only gain
            # candidates), so everything imported stays justified.
            return self._imported.copy(), retracted

        state = self.pinned.union(self._imported)
        for dependency in self.setting.sigma_ts:
            body_vars = dependency.body_variables()
            head_vars: set = set()
            for atom in dependency.head:
                head_vars |= atom.variables()
            seen: set = set()
            for atom in dependency.head:
                rows = withdrawn_rows.get(atom.relation)
                if not rows:
                    continue
                for args in rows:
                    partial = _unify_row(atom, args, restrict=body_vars)
                    if partial is None:
                        continue
                    for assignment in iter_homomorphisms(
                        dependency.body, state, partial
                    ):
                        key = frozenset(assignment.items())
                        if key in seen:
                            continue
                        seen.add(key)
                        premise_facts = [
                            body_atom.substitute(assignment).to_fact()
                            for body_atom in dependency.body
                        ]
                        if any(fact in retracted for fact in premise_facts):
                            continue  # the match already lost a premise
                        relevant = {
                            v: val
                            for v, val in assignment.items()
                            if v in head_vars
                        }
                        if (
                            find_homomorphism(dependency.head, source, relevant)
                            is not None
                        ):
                            continue  # witness survives in the new source
                        for fact in premise_facts:
                            if fact in self._imported and fact not in self.pinned:
                                retracted.add(fact)
                                break
        kept = self._imported.copy()
        for fact in retracted:
            kept.discard(fact)
        return kept, retracted

    def _incremental_solver(self) -> IncrementalTractableSolver | None:
        """The session's stateful solver, or None when unavailable."""
        if not self.incremental:
            return None
        if self._solver is None:
            try:
                self._solver = IncrementalTractableSolver(self.setting)
            except SolverError:
                # Outside C_tract the incremental pipeline is unsound;
                # remember that and keep the historical dispatch.
                self.incremental = False
                return None
        return self._solver

    def _attempt_solve(
        self,
        source: Instance,
        seed: Instance,
        node_budget: int | None,
        budget: Budget | None,
        tracer: Tracer,
        metrics: MetricsRegistry | None,
    ):
        """One solve attempt, via the incremental solver when available.

        Mirrors :func:`repro.solver.exists_solution.solve`'s governance:
        with a non-strict budget, exhaustion and chase overruns degrade
        into a result instead of raising.  A failed incremental attempt
        resets the solver cache itself, so a retry rebuilds cold.
        """
        solver = self._incremental_solver()
        if solver is None:
            return solve(
                self.setting,
                source,
                seed,
                node_budget=node_budget,
                budget=budget,
                tracer=tracer,
            )
        accounting = budget if budget is not None else Budget(strict=True)
        # Keep the historical ``solve`` span shape (method/dispatched/
        # exists/status) so trace consumers see one solver span per
        # attempt regardless of which pipeline served it.
        with tracer.span("solve", method="incremental") as span:
            result = _governed(
                "tractable-incremental",
                budget,
                lambda: solver.solve(
                    source, seed, budget=accounting, tracer=tracer,
                    metrics=metrics,
                ),
            )
            if tracer.enabled:
                span.set("dispatched", result.method)
                span.set("exists", result.exists)
                span.set("status", result.status.value)
        return result

    def _unchanged(
        self, reason: str, status: SolveStatus, attempts: int
    ) -> SyncOutcome:
        """A failed/degraded outcome leaving the materialization untouched."""
        empty = Instance(schema=self.setting.target_schema)
        return SyncOutcome(
            ok=False,
            added=empty,
            retracted=empty.copy(),
            state=self.state(),
            reason=reason,
            status=status,
            attempts=attempts,
        )

    def sync(
        self,
        source: Instance,
        node_budget: int | None = None,
        budget: Budget | None = None,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
        stamp: Stamp | tuple[int, int] | None = None,
        _retraction: "tuple[Instance, Instance] | None" = None,
    ) -> SyncOutcome:
        """Run one synchronization round against a new source snapshot.

        Returns a :class:`SyncOutcome`; when the round is rejected (the
        *pinned* facts themselves are incompatible with the new source) or
        degraded (a governed solve ran out of budget), the materialized
        state is left unchanged.

        ``stamp`` marks the snapshot's position in the publisher's
        timeline (see :class:`Stamp`).  A stamped snapshot at or below
        the session's watermark returns a ``stale`` no-op outcome without
        solving; a newer one advances the watermark atomically with the
        journal commit.  Unstamped calls (the historical API) skip the
        check entirely.

        With a non-strict ``budget`` and a session ``retry`` policy,
        budget-exhausted attempts are re-run with escalated caps after a
        jittered backoff; deadline and cancellation degradations are
        returned immediately.

        A ``tracer`` records one ``sync-round`` span per call, with a
        ``retraction-scan`` sub-span, one ``solve-attempt`` sub-span per
        attempt, a ``retry`` event before each backoff pause, and a
        ``journal-commit`` event after the durable commit.  A ``metrics``
        registry accumulates round/added/retracted counters and is
        attached to the outcome.
        """
        if tracer is None:
            tracer = NULL_TRACER
        if stamp is not None and not isinstance(stamp, Stamp):
            stamp = Stamp(*stamp)

        def finish(outcome: SyncOutcome, span) -> SyncOutcome:
            if tracer.enabled:
                span.set("ok", outcome.ok)
                span.set("status", outcome.status.value)
                span.set("attempts", outcome.attempts)
                span.add("added", len(outcome.added))
                span.add("retracted", len(outcome.retracted))
            if metrics is not None:
                metrics.counter("sync.rounds").inc()
                metrics.counter("sync.added").inc(len(outcome.added))
                metrics.counter("sync.retracted").inc(len(outcome.retracted))
                metrics.counter("sync.attempts").inc(outcome.attempts)
                metrics.annotate("sync.status", outcome.status.value)
                metrics.gauge("sync.state_size").set(len(outcome.state))
                outcome.metrics = metrics
            return outcome

        if (
            stamp is not None
            and self.last_stamp is not None
            and stamp <= self.last_stamp
        ):
            # Duplicate or out-of-order redelivery: the watermark already
            # covers this snapshot, so re-applying it could only regress
            # the materialization.  Skip without solving.
            tracer.event("stale-snapshot", stamp=str(stamp), watermark=str(self.last_stamp))
            if metrics is not None:
                metrics.counter("sync.stale").inc()
            empty = Instance(schema=self.setting.target_schema)
            outcome = SyncOutcome(
                ok=True,
                added=empty,
                retracted=empty.copy(),
                state=self.state(),
                reason=(
                    f"stale snapshot {stamp} at or below watermark "
                    f"{self.last_stamp}; round skipped"
                ),
                stale=True,
                metrics=metrics,
            )
            return outcome

        if (
            stamp is not None
            and self.last_stamp is not None
            and stamp.epoch != self.last_stamp.epoch
            and self._solver is not None
        ):
            # Epoch bump: the publisher re-baselined, so the new snapshot
            # shares no lineage with the cached pipeline state.  The diff
            # would still be correct, but could be as large as the data;
            # rebuild cold instead.
            self._solver.reset()
            tracer.event("incremental-reset", reason="epoch-bump")

        with tracer.span("sync-round", round=self.rounds + 1) as round_span:
            with tracer.span("retraction-scan"):
                if _retraction is not None:
                    kept, retracted = _retraction
                else:
                    kept, retracted = self._still_justified(source)
            seed = self.pinned.union(kept)

            max_attempts = self.retry.max_attempts if self.retry is not None else 1
            attempt = 0
            while True:
                attempt_budget = budget
                if attempt > 0 and self.retry is not None and budget is not None:
                    attempt_budget = self.retry.escalate(budget, attempt)
                try:
                    with tracer.span("solve-attempt", attempt=attempt + 1):
                        result = self._attempt_solve(
                            source,
                            seed,
                            node_budget,
                            attempt_budget,
                            tracer,
                            metrics,
                        )
                except BudgetExceeded as exhausted:
                    # Strict/legacy budgets raise; treat the raise like a
                    # degraded attempt so the retry policy still applies.
                    result = None
                    status = SolveStatus(exhausted.status)
                    reason = str(exhausted)
                except SolverError as error:
                    return finish(
                        self._unchanged(
                            str(error), SolveStatus.DECIDED, attempts=attempt + 1
                        ),
                        round_span,
                    )
                if result is not None:
                    if result.decided:
                        break
                    status = result.status
                    reason = result.reason
                retriable = status is SolveStatus.BUDGET_EXHAUSTED
                if not retriable or attempt + 1 >= max_attempts:
                    return finish(
                        self._unchanged(reason, status, attempts=attempt + 1),
                        round_span,
                    )
                assert self.retry is not None
                tracer.event("retry", attempt=attempt + 1, status=status.value)
                if metrics is not None:
                    metrics.counter("sync.retries").inc()
                self.retry.pause(attempt)
                attempt += 1

            if not result.exists:
                return finish(
                    self._unchanged(
                        "the target's pinned facts are incompatible with the "
                        "new source snapshot",
                        SolveStatus.DECIDED,
                        attempts=attempt + 1,
                    ),
                    round_span,
                )

            new_state = result.solution
            added = Instance(schema=self.setting.target_schema)
            previous = self.state()
            for fact in new_state:
                if fact not in previous:
                    added.add(fact)
            imported = Instance(schema=self.setting.target_schema)
            for fact in new_state:
                if fact not in self.pinned:
                    imported.add(fact)
            round_number = self.rounds + 1
            if self.journal is not None:
                # Commit durably before mutating in-memory state: a crash
                # between the two replays to the committed round.
                self.journal.ensure_header(self.setting, self.pinned)
                # Stamped rounds commit the ingested source alongside the
                # round: a resumed session then still holds the delta base,
                # so a crash does not break the delta chain.
                self.journal.record_round(
                    round_number, imported, added, retracted, stamp=stamp,
                    source=source if stamp is not None else None,
                )
                tracer.event("journal-commit", round=round_number)
            self.rounds = round_number
            self._imported = imported
            if stamp is not None:
                self.last_stamp = stamp
                self._last_source = source.copy()
            return finish(
                SyncOutcome(
                    ok=True,
                    added=added,
                    retracted=retracted,
                    state=self.state(),
                    attempts=attempt + 1,
                ),
                round_span,
            )

    def sync_delta(
        self,
        added: Instance,
        withdrawn: Instance,
        base: Stamp | tuple[int, int],
        stamp: Stamp | tuple[int, int],
        node_budget: int | None = None,
        budget: Budget | None = None,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> SyncOutcome:
        """Run one round from an incremental ``(added, withdrawn)`` payload.

        The delta patches the source snapshot stamped ``base`` into the
        snapshot stamped ``stamp``: the session reconstructs ``I_t =
        (I_{t-1} - withdrawn) ∪ added`` from its retained base and runs
        the ordinary stamped round on the result, so a delta round and a
        full-snapshot round of the same ``I_t`` commit identical state —
        the delta only shrinks the wire.

        Ordering mirrors :meth:`sync`: a stamp at or below the watermark
        is a stale no-op *before* any chain check (redelivered deltas are
        idempotent, like redelivered snapshots).  A live stamp whose
        ``base`` differs from the watermark — the session missed (or
        never saw) the base snapshot, or crashed without a journal —
        breaks the chain: the round returns ``ok=False`` with
        :data:`DELTA_CHAIN_BROKEN` as the reason, leaving all state
        untouched, and the sender is expected to fall back to a full
        snapshot.
        """
        if tracer is None:
            tracer = NULL_TRACER
        if not isinstance(stamp, Stamp):
            stamp = Stamp(*stamp)
        if not isinstance(base, Stamp):
            base = Stamp(*base)

        if self.last_stamp is not None and stamp <= self.last_stamp:
            tracer.event(
                "stale-snapshot", stamp=str(stamp), watermark=str(self.last_stamp)
            )
            if metrics is not None:
                metrics.counter("sync.stale").inc()
            empty = Instance(schema=self.setting.target_schema)
            return SyncOutcome(
                ok=True,
                added=empty,
                retracted=empty.copy(),
                state=self.state(),
                reason=(
                    f"stale delta {stamp} at or below watermark "
                    f"{self.last_stamp}; round skipped"
                ),
                stale=True,
                delta=True,
                metrics=metrics,
            )

        if self.last_stamp != base or self._last_source is None:
            tracer.event(
                "delta-chain-broken",
                base=str(base),
                stamp=str(stamp),
                watermark=str(self.last_stamp),
            )
            if metrics is not None:
                metrics.counter("sync.delta_broken").inc()
            if self._solver is not None:
                # The sender will fall back to a full snapshot of unknown
                # lineage; start the next round from a cold pipeline.
                self._solver.reset()
            empty = Instance(schema=self.setting.target_schema)
            return SyncOutcome(
                ok=False,
                added=empty,
                retracted=empty.copy(),
                state=self.state(),
                reason=DELTA_CHAIN_BROKEN,
                delta=True,
                metrics=metrics,
            )

        if metrics is not None:
            metrics.counter("sync.delta_rounds").inc()
        source = self._last_source.copy()
        for fact in withdrawn:
            source.discard(fact)
        for fact in added:
            source.add(fact)
        # The chain is intact, so the committed state solves the retained
        # base — exactly the invariant the delta-narrowed retraction scan
        # needs.  (Same-epoch deltas only: sync() resets the incremental
        # pipeline on epoch bumps, but the scan invariant still holds.)
        retraction = None
        if self.incremental:
            with tracer.span("retraction-scan-delta"):
                retraction = self._still_justified_delta(source, withdrawn)
        outcome = self.sync(
            source,
            node_budget=node_budget,
            budget=budget,
            tracer=tracer,
            metrics=metrics,
            stamp=stamp,
            _retraction=retraction,
        )
        outcome.delta = True
        return outcome
