"""Incremental peer synchronization: periodic sync sessions over a PDE
setting, per the paper's motivating Swiss-Prot scenario."""

from repro.sync.session import SyncOutcome, SyncSession

__all__ = ["SyncOutcome", "SyncSession"]
