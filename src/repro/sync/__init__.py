"""Incremental peer synchronization: periodic sync sessions over a PDE
setting, per the paper's motivating Swiss-Prot scenario.  Sessions are
epoch-aware (:class:`Stamp`) so the peer network simulator in
:mod:`repro.net` can feed them over an at-least-once, reordering
transport without re-applying duplicates or regressing to stale
snapshots."""

from repro.sync.session import (
    DELTA_CHAIN_BROKEN,
    Stamp,
    SyncOutcome,
    SyncSession,
    watermark_lag,
)

__all__ = [
    "DELTA_CHAIN_BROKEN",
    "Stamp",
    "SyncOutcome",
    "SyncSession",
    "watermark_lag",
]
