"""JSON serialization for :class:`~repro.net.Scenario` values.

Gives scenarios the same on-disk interchange format settings already
have, so a simulation script can be saved, linted (``repro.cli lint
scenario.json``), pre-flighted (``simulate scenario.json --lint``), and
auto-fixed (``lint --fix``) like any other fixture.  The format marks
itself with ``"kind": "scenario"`` and embeds the setting in the
:func:`~repro.io.serialization.setting_to_dict` format:

* ``snapshots`` entries are either instance dicts
  (:func:`~repro.io.serialization.instance_to_dict`) or, for hand-written
  fixtures, parser-syntax strings (``"reg(a, 1); reg(b, 2)"``);
* ``faults`` is a list of per-link schedules: ``{"from", "to"}`` plus the
  :class:`~repro.runtime.FaultSchedule` fields (seeded rates and/or
  explicit index sets);
* ``events`` is the timeline: ``{"event": "partition" | "heal" | "crash"
  | "restart" | "bump-epoch", "at": t, ...}``;
* the optional multi-publisher declaration rides along as
  ``co_publishers`` / ``trust`` / ``repair``, a relay ``topology`` is a
  list of ``{"from", "to"}`` edges with an optional ``custody`` feed
  list, and a ``lint_ignore`` key suppresses diagnostic codes exactly
  as in setting files.

Everything round-trips: ``scenario_from_dict(scenario_to_dict(s))``
rebuilds an equivalent scenario.
"""

from __future__ import annotations

import json
from typing import Any, Mapping

from repro.core.instance import Instance
from repro.core.parser import parse_instance
from repro.exceptions import ParseError, SimulationError
from repro.io.serialization import (
    instance_from_dict,
    instance_to_dict,
    setting_from_dict,
    setting_to_dict,
)
from repro.net.scenarios import (
    BumpEpoch,
    Crash,
    Heal,
    NetworkEvent,
    Partition,
    RelayLink,
    Restart,
    Scenario,
)
from repro.runtime.faults import FaultSchedule

__all__ = [
    "dumps_scenario",
    "is_scenario_dict",
    "loads_scenario",
    "scenario_from_dict",
    "scenario_to_dict",
]


def is_scenario_dict(encoded: Mapping[str, Any]) -> bool:
    """Does this decoded JSON document describe a scenario (not a setting)?"""
    return encoded.get("kind") == "scenario" or "snapshots" in encoded


# ---------------------------------------------------------------------------
# encoding
# ---------------------------------------------------------------------------


def _schedule_to_dict(link: tuple[str, str], schedule: FaultSchedule) -> dict:
    encoded: dict[str, Any] = {"from": link[0], "to": link[1]}
    if schedule.seed is not None:
        encoded["seed"] = schedule.seed
    for name in ("drop_rate", "duplicate_rate", "reorder_rate", "delay_rate"):
        rate = getattr(schedule, name)
        if rate:
            encoded[name] = rate
    if schedule.max_delay:
        encoded["max_delay"] = schedule.max_delay
    for name in ("drop", "duplicate", "reorder"):
        indexes = getattr(schedule, name)
        if indexes:
            encoded[name] = sorted(indexes)
    if schedule.delay:
        encoded["delay"] = {str(index): value for index, value in schedule.delay.items()}
    return encoded


def _event_to_dict(event: NetworkEvent) -> dict:
    if isinstance(event, Partition):
        return {
            "event": "partition",
            "at": event.at,
            "groups": [sorted(group) for group in event.groups],
        }
    if isinstance(event, Heal):
        return {"event": "heal", "at": event.at}
    if isinstance(event, Crash):
        return {"event": "crash", "at": event.at, "peer": event.peer}
    if isinstance(event, Restart):
        return {"event": "restart", "at": event.at, "peer": event.peer}
    if isinstance(event, BumpEpoch):
        return {"event": "bump-epoch", "at": event.at}
    raise SimulationError(f"cannot serialize event {event!r}")


def scenario_to_dict(scenario: Scenario) -> dict[str, Any]:
    """Encode a scenario as a plain dict (JSON-ready)."""
    encoded: dict[str, Any] = {
        "kind": "scenario",
        "name": scenario.name,
        "description": scenario.description,
        "setting": setting_to_dict(scenario.setting),
        "snapshots": [instance_to_dict(snapshot) for snapshot in scenario.snapshots],
        "peers": list(scenario.peers),
        "publisher": scenario.publisher,
        "interval": scenario.interval,
        "latency": scenario.latency,
        "events": [_event_to_dict(event) for event in scenario.events],
        "seed": scenario.seed,
    }
    if scenario.reorder_delay is not None:
        encoded["reorder_delay"] = scenario.reorder_delay
    if scenario.faults:
        encoded["faults"] = [
            _schedule_to_dict(link, schedule)
            for link, schedule in sorted(scenario.faults.items())
        ]
    if scenario.pinned:
        encoded["pinned"] = {
            peer: instance_to_dict(instance)
            for peer, instance in sorted(scenario.pinned.items())
        }
    if scenario.co_publishers:
        encoded["co_publishers"] = list(scenario.co_publishers)
    if scenario.trust:
        encoded["trust"] = list(scenario.trust)
    if scenario.repair:
        encoded["repair"] = scenario.repair
    if scenario.topology:
        encoded["topology"] = [
            {
                "from": link.sender,
                "to": link.recipient,
                **({"custody": sorted(link.custody)} if link.custody else {}),
            }
            for link in scenario.topology
        ]
    return encoded


# ---------------------------------------------------------------------------
# decoding
# ---------------------------------------------------------------------------


def _instance_from_json(encoded: Any) -> Instance:
    if isinstance(encoded, str):
        return parse_instance(encoded)
    if isinstance(encoded, dict):
        return instance_from_dict(encoded)
    raise ParseError(
        f"a snapshot must be an instance dict or parser text, got "
        f"{type(encoded).__name__}"
    )


def _schedule_from_dict(encoded: Mapping[str, Any]) -> tuple[tuple[str, str], FaultSchedule]:
    link = (encoded["from"], encoded["to"])
    schedule = FaultSchedule(
        drop=frozenset(encoded.get("drop", ())),
        duplicate=frozenset(encoded.get("duplicate", ())),
        reorder=frozenset(encoded.get("reorder", ())),
        delay={int(index): value for index, value in encoded.get("delay", {}).items()},
        seed=encoded.get("seed"),
        drop_rate=encoded.get("drop_rate", 0.0),
        duplicate_rate=encoded.get("duplicate_rate", 0.0),
        reorder_rate=encoded.get("reorder_rate", 0.0),
        delay_rate=encoded.get("delay_rate", 0.0),
        max_delay=encoded.get("max_delay", 0.0),
    )
    return link, schedule


def _event_from_dict(encoded: Mapping[str, Any]) -> NetworkEvent:
    kind = encoded.get("event")
    at = encoded["at"]
    if kind == "partition":
        return Partition(at, *encoded["groups"])
    if kind == "heal":
        return Heal(at)
    if kind == "crash":
        return Crash(at, encoded["peer"])
    if kind == "restart":
        return Restart(at, encoded["peer"])
    if kind == "bump-epoch":
        return BumpEpoch(at)
    raise ParseError(f"unknown scenario event kind {kind!r}")


def scenario_from_dict(encoded: Mapping[str, Any], validate: bool = True) -> Scenario:
    """Decode a scenario from :func:`scenario_to_dict` output.

    With ``validate=False`` the embedded setting skips well-formedness
    checks, so :func:`repro.analysis.analyze_scenario` can lint scenarios
    whose settings are themselves broken.
    """
    return Scenario(
        name=encoded.get("name", ""),
        description=encoded.get("description", ""),
        setting=setting_from_dict(encoded["setting"], validate=validate),
        snapshots=[_instance_from_json(s) for s in encoded["snapshots"]],
        peers=list(encoded["peers"]),
        publisher=encoded.get("publisher", "origin"),
        interval=encoded.get("interval", 1.0),
        latency=encoded.get("latency", 0.05),
        reorder_delay=encoded.get("reorder_delay"),
        faults=dict(
            _schedule_from_dict(entry) for entry in encoded.get("faults", ())
        ),
        events=[_event_from_dict(entry) for entry in encoded.get("events", ())],
        pinned={
            peer: _instance_from_json(instance)
            for peer, instance in encoded.get("pinned", {}).items()
        },
        seed=encoded.get("seed", 0),
        co_publishers=tuple(encoded.get("co_publishers", ())),
        trust=tuple(encoded.get("trust", ())),
        repair=encoded.get("repair", ""),
        topology=tuple(
            RelayLink(entry["from"], entry["to"], entry.get("custody", ()))
            for entry in encoded.get("topology", ())
        ),
    )


def dumps_scenario(scenario: Scenario, indent: int | None = None) -> str:
    """Serialize a scenario to a JSON string."""
    return json.dumps(scenario_to_dict(scenario), indent=indent, sort_keys=False)


def loads_scenario(text: str, validate: bool = True) -> Scenario:
    """Deserialize a scenario from :func:`dumps_scenario` output."""
    return scenario_from_dict(json.loads(text), validate=validate)
