"""The network simulator: run a scenario to quiescence, check convergence.

:class:`NetworkSimulator` executes a :class:`~repro.net.Scenario` as a
discrete-event loop on a virtual :class:`~repro.runtime.FaultClock`:
publishes, control events (partition / heal / crash / restart / epoch
bump), and transport deliveries interleave in time order with
deterministic tie-breaking, so the same scenario replays byte-for-byte —
:attr:`SimulationReport.log` is the replayable record, and a test can
assert two runs produce identical logs.

After the timeline drains (quiescence), an **anti-entropy** phase
repairs whatever the faults left behind: every reachable peer whose
:class:`~repro.sync.Stamp` watermark trails the publisher's latest is
re-offered the newest snapshot over a reliable repair channel (modeling
the explicit fetch a re-joined peer performs after a partition heals).
Unreachable peers — crashed, or still partitioned from the publisher —
are left alone and excluded from the convergence check.

:meth:`NetworkSimulator.check_convergence` then compares every reachable
peer's materialization against the **fault-free oracle**: a fresh
:class:`~repro.sync.SyncSession` (with the same pinned facts) that
ingested every snapshot in order with nothing dropped, duplicated,
reordered, or delayed.  Convergence of all reachable peers is the
invariant the whole protocol stack — authoritative snapshots, stamped
idempotent ingestion, journal-backed resume, anti-entropy — exists to
guarantee.

Delta transfer (``deltas=True``): instead of shipping the full snapshot
on every publish, the publisher ships a :class:`~repro.net.Delta` —
``(added, withdrawn)`` keyed on the previous publish's stamp — whenever
that is smaller than the snapshot itself (and always a full snapshot on
the first publish of an epoch).  A peer whose watermark is not exactly
the delta's base reports a broken chain, and the publisher falls back by
re-sending the *latest* full snapshot to that peer over the same faulty
link.  Anti-entropy always repairs with full snapshots.  Deltas are a
pure wire optimization: every scenario must converge to the identical
state with deltas on or off.
"""

from __future__ import annotations

import heapq
import shutil
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.homomorphism import has_instance_homomorphism
from repro.core.instance import Instance
from repro.exceptions import SimulationError
from repro.net.node import PeerNode
from repro.net.scenarios import (
    BumpEpoch,
    Crash,
    Heal,
    Partition,
    Restart,
    Scenario,
)
from repro.net.scoring import PeerScorer
from repro.net.transport import Delta, Message, SimTransport
from repro.obs.context import TraceContext
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.runtime.faults import FaultClock
from repro.runtime.journal import SessionJournal
from repro.sync.session import Stamp, SyncSession, watermark_lag

__all__ = [
    "ConvergenceReport",
    "NetworkSimulator",
    "SimulationReport",
    "check_convergence",
    "oracle_state",
    "states_agree",
]


@dataclass
class ConvergenceReport:
    """The verdict of :meth:`NetworkSimulator.check_convergence`.

    Attributes:
        converged: every reachable peer's state equals its oracle state.
            Vacuously True when *no* peer is reachable — unreachable
            peers are excluded from the check, and an all-crashed (or
            all-partitioned) endgame leaves nothing to diverge.
        peers: per reachable peer, whether it matches the oracle.
        unreachable: peers excluded from the check (crashed, or
            partitioned away from the publisher at quiescence).
        oracle_size: facts in the (unpinned) oracle materialization, as a
            quick summary statistic.
        vacuous: True when the verdict covered no peers (``peers`` is
            empty because every peer was unreachable).
        lag: per reachable peer, the watermark lag — how many publishes
            the peer's applied stamp trails the publisher's history by
            (see :func:`repro.sync.watermark_lag`).  0 for every peer at
            quiescence is the convergence invariant in stamp arithmetic;
            empty when the caller supplied no watermark data.
    """

    converged: bool
    peers: dict[str, bool]
    unreachable: list[str]
    oracle_size: int
    vacuous: bool = False
    lag: dict[str, int] = field(default_factory=dict)

    def __bool__(self) -> bool:
        return self.converged


@dataclass
class SimulationReport:
    """Everything one simulation run produced.

    Attributes:
        scenario: the scenario name.
        seed: the seed the scenario was built from.
        published: snapshots the publisher sent.
        final_stamp: the publisher's last stamp.
        stats: transport delivery counters plus per-protocol totals
            (``applied`` / ``stale`` / ``rejected`` / ``degraded``
            summed over peers, and ``crash_dropped`` deliveries).
        log: the deterministic event log, one line per simulation event,
            in execution order — two runs of the same scenario produce
            identical logs.
        convergence: the convergence verdict at quiescence.
    """

    scenario: str
    seed: int
    published: int
    final_stamp: Stamp | None
    stats: dict[str, int]
    log: list[str] = field(repr=False, default_factory=list)
    convergence: ConvergenceReport | None = None

    @property
    def converged(self) -> bool:
        return self.convergence is not None and self.convergence.converged


def states_agree(actual: Instance, expected: Instance) -> bool:
    """Instance equality up to renaming of labeled nulls.

    Sync rounds invent fresh nulls, so two histories that converge on
    the same snapshot can number their nulls differently.  Exact
    equality first (the common, all-constants case), then homomorphic
    equivalence: a constant-preserving homomorphism each way.
    """
    if actual == expected:
        return True
    return (
        len(actual) == len(expected)
        and has_instance_homomorphism(actual, expected)
        and has_instance_homomorphism(expected, actual)
    )


#: Backwards-compatible alias (the helper predates the public name).
_states_agree = states_agree


def oracle_state(scenario: Scenario, pinned: Instance | None = None) -> Instance:
    """The fault-free oracle materialization for one peer of ``scenario``.

    Replays *all* of the scenario's snapshots, in order, through a fresh
    :class:`~repro.sync.SyncSession` holding ``pinned`` — the run a
    perfect network would have produced.  A replay the protocol itself
    refuses (rejected or degraded snapshot) raises
    :class:`~repro.exceptions.SimulationError` naming the snapshot.
    """
    pinned = pinned if pinned is not None else Instance()
    session = SyncSession(scenario.setting, pinned=pinned.copy())
    for index, snapshot in enumerate(scenario.snapshots):
        outcome = session.sync(snapshot, stamp=Stamp(1, index + 1))
        if not outcome.ok or outcome.degraded:
            # Not a driver bug but a scenario whose inputs the protocol
            # itself refuses (e.g. pinned facts no snapshot vouches
            # for): diagnose it instead of crashing with a bare
            # RuntimeError.
            verb = "degraded on" if outcome.degraded else "rejected"
            raise SimulationError(
                f"scenario {scenario.name!r} has no fault-free oracle: "
                f"the perfect-network replay {verb} snapshot {index} "
                f"(stamp {Stamp(1, index + 1)}): {outcome.reason}"
            )
    return session.state()


def check_convergence(
    scenario: Scenario,
    states: dict[str, Instance],
    unreachable: list[str] | None = None,
    watermarks: "dict[str, Stamp | tuple[int, int] | None] | None" = None,
    published: "list[Stamp] | None" = None,
) -> ConvergenceReport:
    """Compare reached peer states against the fault-free oracle.

    ``states`` maps each *reachable* peer to its final materialization;
    ``unreachable`` names the peers excluded from the verdict (crashed,
    or partitioned away from the publisher at quiescence).  This is the
    transport-independent core of the convergence invariant: the
    :class:`NetworkSimulator` calls it on its in-memory
    :class:`~repro.net.PeerNode`\\ s, and the :mod:`repro.netd` chaos
    harness calls it on states collected from real daemons over real
    sockets — the same oracle judges both.

    ``watermarks`` (per-peer applied stamps) and ``published`` (the
    publisher's stamp history) additionally yield per-peer watermark lag
    via :func:`repro.sync.watermark_lag` — the same stamp arithmetic in
    both network stacks.  At quiescence every reachable peer's lag must
    be 0; a nonzero lag names exactly how many publishes the peer is
    missing.

    Oracle sessions are cached per distinct pinned instance, since most
    peers pin nothing.  When *every* peer is unreachable the verdict is
    vacuously converged (``vacuous=True``), not a divergence.
    """
    unreachable = list(unreachable) if unreachable is not None else []
    oracles: list[tuple[Instance, Instance]] = []

    def cached_oracle(pinned: Instance | None) -> Instance:
        pinned = pinned if pinned is not None else Instance()
        for known_pinned, state in oracles:
            if known_pinned == pinned:
                return state
        state = oracle_state(scenario, pinned)
        oracles.append((pinned, state))
        return state

    peers: dict[str, bool] = {}
    for name in scenario.peers:
        if name not in states:
            if name not in unreachable:
                unreachable.append(name)
            continue
        expected = cached_oracle(scenario.pinned.get(name))
        peers[name] = states_agree(states[name], expected)
    lag: dict[str, int] = {}
    if watermarks is not None and published is not None:
        lag = {
            name: watermark_lag(published, watermarks.get(name))
            for name in peers
        }
    # Unreachable peers are excluded from the check, so a run whose
    # every peer ended crashed or partitioned converges *vacuously*:
    # nothing reachable diverged.  (all() of an empty dict is True.)
    return ConvergenceReport(
        converged=all(peers.values()),
        peers=peers,
        unreachable=unreachable,
        oracle_size=len(cached_oracle(None)),
        vacuous=not peers,
        lag=lag,
    )


#: Tie-break ranks for simultaneous timeline entries: control events
#: apply before publishes, publishes before deliveries.
_CONTROL, _PUBLISH, _DELIVERY = 0, 1, 2


class NetworkSimulator:
    """Drive one scenario to quiescence on a virtual clock.

    Args:
        scenario: the script to execute.
        journal_dir: directory for per-peer session journals.  Required
            for meaningful :class:`~repro.net.Crash` recovery; when None
            and the scenario contains crash events, a temporary directory
            is created (and removed again when the run completes).  When
            None otherwise, peers run journal-free.
        tracer: optional :class:`~repro.obs.Tracer`; the run is wrapped
            in a ``simulate`` span and the transport emits ``net.*``
            events inside it.
        metrics: optional :class:`~repro.obs.MetricsRegistry` accumulating
            ``net.*`` delivery counters and per-round sync instruments.
        anti_entropy_limit: maximum repair rounds after quiescence.
        deltas: enable delta transfer — publishes ship ``(added,
            withdrawn)`` keyed on the previous stamp when smaller than
            the full snapshot, with per-peer full-snapshot fallback on a
            broken chain.  Purely a wire optimization: convergence and
            final states are identical with or without it.
        max_queue: per-recipient in-flight bound handed to the
            :class:`~repro.net.SimTransport` (see its ``max_queue``);
            None keeps the transport unbounded.
    """

    def __init__(
        self,
        scenario: Scenario,
        journal_dir: str | Path | None = None,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
        anti_entropy_limit: int = 8,
        deltas: bool = False,
        max_queue: int | None = None,
    ) -> None:
        if scenario.co_publishers:
            # The multi-publisher merge (trust-ordered, cf. the Scenario
            # docstring) is declarative-only for now; refuse loudly rather
            # than silently ignore the extra publishers.
            raise SimulationError(
                f"scenario {scenario.name!r} declares co-publishers "
                f"{scenario.co_publishers}; the simulator does not implement "
                "the trust-ordered merge yet (lint checks the declaration "
                "with the PDE4xx rules)"
            )
        self.scenario = scenario
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics
        self.anti_entropy_limit = anti_entropy_limit
        self.deltas = deltas
        self.clock = FaultClock()
        #: Per-link health scores folded from every delivery outcome;
        #: anti-entropy ranks repair upstreams with them.
        self.scorer = PeerScorer(metrics=metrics, prefix="net")
        self.transport = SimTransport(
            clock=self.clock,
            latency=scenario.latency,
            reorder_delay=scenario.reorder_delay,
            tracer=self.tracer,
            metrics=metrics,
            max_queue=max_queue,
            scorer=self.scorer,
        )
        for link, schedule in scenario.faults.items():
            self.transport.set_schedule(link[0], link[1], schedule)

        needs_journals = any(
            isinstance(event, (Crash, Restart)) for event in scenario.events
        )
        self._owns_journal_dir = journal_dir is None and needs_journals
        if self._owns_journal_dir:
            journal_dir = tempfile.mkdtemp(prefix=f"repro-net-{scenario.name}-")
        self.journal_dir = Path(journal_dir) if journal_dir is not None else None
        if self.journal_dir is not None:
            self.journal_dir.mkdir(parents=True, exist_ok=True)

        self.nodes: dict[str, PeerNode] = {}
        for name in scenario.peers:
            journal = (
                SessionJournal(self.journal_dir / f"{name}.journal")
                if self.journal_dir is not None
                else None
            )
            self.nodes[name] = PeerNode(
                name,
                scenario.setting,
                pinned=scenario.pinned.get(name),
                journal=journal,
            )

        self.log: list[str] = []
        self.stats: dict[str, int] = {
            "crash_dropped": 0,
            "anti_entropy": 0,
            "delta_published": 0,
            "delta_applied": 0,
            "delta_fallback": 0,
            "forwarded": 0,
        }
        self._epoch = 1
        self._seq = 0
        self._published = 0
        self.latest_stamp: Stamp | None = None
        self.latest_snapshot: Instance | None = None
        #: Every stamp published, in order — the history watermark lag
        #: is measured against.
        self.published_stamps: list[Stamp] = []
        #: The wire trace context minted for each publish.  Anti-entropy
        #: re-offers reuse the original context (deterministic ids), so
        #: a repaired delivery stitches into the publish's own trace and
        #: its latency histogram still measures publish→apply.
        self._publish_contexts: dict[Stamp, TraceContext] = {}
        #: The previous publish of the current epoch — the base the next
        #: delta is keyed on; None before the first publish and right
        #: after an epoch bump (a restarted publisher re-baselines with a
        #: full snapshot).
        self._previous_stamp: Stamp | None = None
        self._previous_snapshot: Instance | None = None
        self._ran = False

    # ------------------------------------------------------------------
    # logging
    # ------------------------------------------------------------------

    def _note(self, text: str) -> None:
        self.log.append(f"t={self.clock():07.3f} {text}")

    # ------------------------------------------------------------------
    # the event loop
    # ------------------------------------------------------------------

    def _timeline(self) -> list[tuple[float, int, int, object]]:
        """The scripted (non-delivery) timeline as a sorted heap."""
        entries: list[tuple[float, int, int, object]] = []
        order = 0
        for index in range(len(self.scenario.snapshots)):
            entries.append(
                (index * self.scenario.interval, _PUBLISH, order, index)
            )
            order += 1
        for event in self.scenario.events:
            entries.append((event.at, _CONTROL, order, event))
            order += 1
        heapq.heapify(entries)
        return entries

    def run(self) -> SimulationReport:
        """Execute the scenario to quiescence and check convergence."""
        if self._ran:
            raise RuntimeError("a NetworkSimulator instance runs exactly once")
        self._ran = True
        with self.tracer.span(
            "simulate", scenario=self.scenario.name, seed=self.scenario.seed
        ):
            timeline = self._timeline()
            while timeline or self.transport.pending():
                next_scripted = timeline[0][0] if timeline else None
                next_delivery = self.transport.next_delivery_at()
                # Scripted entries win ties: a partition (or crash) that
                # coincides with a delivery instant applies first.
                take_scripted = next_delivery is None or (
                    next_scripted is not None and next_scripted <= next_delivery
                )
                if take_scripted:
                    at, kind, _order, payload = heapq.heappop(timeline)
                    self._advance(at)
                    if kind == _PUBLISH:
                        self._publish(payload)
                    else:
                        self._control(payload)
                else:
                    at, message = self.transport.pop_delivery()
                    self._advance(at)
                    self._deliver(message)
            self._note("quiescent")
            self._anti_entropy()
            convergence = self.check_convergence()
        report = SimulationReport(
            scenario=self.scenario.name,
            seed=self.scenario.seed,
            published=self._published,
            final_stamp=self.latest_stamp,
            stats=self._aggregate_stats(),
            log=self.log,
            convergence=convergence,
        )
        if self._owns_journal_dir and self.journal_dir is not None:
            # The temp dir was provisioned for this run only; a caller
            # who wants to inspect journals passes an explicit dir.
            shutil.rmtree(self.journal_dir, ignore_errors=True)
        return report

    def _advance(self, to: float) -> None:
        now = self.clock()
        if to > now:
            self.clock.advance(to - now)

    def _publish(self, index: int) -> None:
        snapshot = self.scenario.snapshots[index]
        self._seq += 1
        stamp = Stamp(self._epoch, self._seq)
        self.latest_stamp = stamp
        self.latest_snapshot = snapshot
        self._published += 1
        self.published_stamps.append(stamp)
        context = TraceContext.for_publish(
            self.scenario.publisher, stamp, at=self.clock()
        )
        self._publish_contexts[stamp] = context
        payload: Instance | Delta = snapshot
        if self.deltas and self._previous_snapshot is not None:
            delta = Delta(
                base=self._previous_stamp,
                added=snapshot - self._previous_snapshot,
                withdrawn=self._previous_snapshot - snapshot,
            )
            # Ship the delta only when it actually beats the snapshot; a
            # near-total churn round is cheaper as state transfer.
            if len(delta) < len(snapshot):
                payload = delta
                self.stats["delta_published"] += 1
        if isinstance(payload, Delta):
            self._note(
                f"publish stamp={stamp} facts={len(snapshot)} "
                f"{payload.describe()}"
            )
        else:
            self._note(f"publish stamp={stamp} facts={len(snapshot)}")
        with self.tracer.span(
            "net.publish",
            lane=self.scenario.publisher,
            stamp=str(stamp),
            facts=len(snapshot),
        ) as span:
            context.annotate(span)
            # Publishes flow along the relay graph: every peer in the
            # legacy star, only direct downstream links in a mesh (the
            # rest of the graph hears forwarded copies).
            for link in self.scenario.downstream(
                self.scenario.publisher, self.scenario.publisher
            ):
                self.transport.send(
                    Message(
                        self.scenario.publisher, link.recipient, stamp, payload,
                        context=context,
                    )
                )
        self._previous_stamp = stamp
        self._previous_snapshot = snapshot

    def _control(self, event: object) -> None:
        if isinstance(event, Partition):
            groups = [",".join(sorted(group)) for group in event.groups]
            self._note(f"partition {'|'.join(groups)}")
            self.transport.partition(event.groups)
        elif isinstance(event, Heal):
            self._note("heal")
            self.transport.heal()
        elif isinstance(event, Crash):
            self._note(f"crash {event.peer}")
            self.nodes[event.peer].crash()
        elif isinstance(event, Restart):
            node = self.nodes[event.peer]
            node.restart()
            self._note(f"restart {event.peer} stamp={node.stamp}")
        elif isinstance(event, BumpEpoch):
            self._epoch += 1
            self._seq = 0
            # A restarted publisher re-baselines: its first publish is
            # always a full snapshot, never a cross-epoch delta.
            self._previous_stamp = None
            self._previous_snapshot = None
            self._note(f"epoch-bump epoch={self._epoch}")
        else:  # pragma: no cover - scenarios validate their events
            raise RuntimeError(f"unknown control event {event!r}")

    @staticmethod
    def _verdict(outcome) -> str:
        """One word (or ``kind:detail``) describing a sync outcome.

        Shared by delivery and anti-entropy logging so both spell
        verdicts identically in the event log.
        """
        if outcome.stale:
            return "stale"
        if outcome.chain_broken:
            return "delta-chain-broken"
        if outcome.ok:
            return "applied"
        if outcome.degraded:
            return f"degraded:{outcome.status}"
        return "rejected"

    def _deliver(self, message: Message) -> None:
        node = self.nodes[message.recipient]
        if node.crashed:
            self.stats["crash_dropped"] += 1
            self._note(f"deliver {message.describe()} -> peer crashed, dropped")
            self.tracer.event(
                "net.drop", reason="crashed", message=message.describe()
            )
            return
        outcome = node.receive(message, tracer=self.tracer, metrics=self.metrics)
        self._note(
            f"deliver {message.describe()} -> {self._verdict(outcome)} "
            f"state={len(outcome.state)}"
        )
        self._observe_apply(message, outcome)
        self.scorer.record(message.link, self._score_outcome(outcome))
        if outcome.ok and not outcome.stale and not outcome.chain_broken:
            self._forward(message.recipient, message)
        if not message.is_delta:
            return
        if outcome.chain_broken:
            # The peer cannot patch from this base: fall back to state
            # transfer of the *latest* snapshot (authoritative, and the
            # next delta may chain from it), over the same faulty link —
            # a lost fallback is repaired by anti-entropy like any drop.
            self.stats["delta_fallback"] += 1
            self.tracer.event(
                "net.delta_fallback", message=message.describe()
            )
            if self.metrics is not None:
                self.metrics.counter("net.delta_fallbacks").inc()
            fallback = Message(
                self.scenario.publisher,
                message.recipient,
                self.latest_stamp,
                self.latest_snapshot,
                context=self._publish_contexts.get(self.latest_stamp),
            )
            self._note(f"delta-fallback {fallback.describe()}")
            self.transport.send(fallback)
        elif outcome.ok and not outcome.stale:
            self.stats["delta_applied"] += 1
            self.tracer.event("net.delta_applied", message=message.describe())
            if self.metrics is not None:
                self.metrics.counter("net.delta_applied").inc()

    @staticmethod
    def _score_outcome(outcome) -> str:
        """The scoring-vocabulary word for a sync outcome."""
        if outcome.stale:
            return "stale"
        if outcome.chain_broken:
            return "chain_broken"
        if outcome.ok:
            return "applied"
        if outcome.degraded:
            return "degraded"
        return "rejected"

    def _forward(self, relay: str, message: Message) -> None:
        """Push a freshly applied stamp down ``relay``'s out-links.

        Relays re-publish the *source* snapshot they just applied
        (:attr:`~repro.sync.SyncSession.last_source`), so every hop
        exchanges authoritative source facts and computes the same
        solutions as a direct subscriber.  Forwarding happens only on a
        *fresh* apply — redeliveries are stale no-ops at the watermark —
        so each node forwards each stamp at most once and relay cycles
        terminate instead of echoing forever.
        """
        feed = self.scenario.publisher
        links = self.scenario.downstream(relay, feed)
        if not links:
            return
        session = self.nodes[relay].session
        source = session.last_source if session is not None else None
        if source is None:  # pragma: no cover - fresh apply set a source
            return
        for link in links:
            self.stats["forwarded"] += 1
            if self.metrics is not None:
                self.metrics.counter("net.forwarded").inc()
            forwarded = Message(
                relay, link.recipient, message.stamp, source.copy(),
                context=message.context,
            )
            self._note(f"forward {forwarded.describe()}")
            self.transport.send(forwarded)

    def _observe_apply(self, message: Message, outcome) -> None:
        """Record end-to-end latency and chain-break telemetry for a round.

        Publish→apply latency is virtual-clock milliseconds from the
        stamp's original publish instant (carried in the wire context) to
        the moment the peer applied it — the same arithmetic the real
        daemon performs on wall clocks.
        """
        if outcome.chain_broken and self.metrics is not None:
            self.metrics.counter("net.chain_broken").inc()
        applied = outcome.ok and not outcome.stale and not outcome.chain_broken
        if not applied or self.metrics is None:
            return
        context = message.context
        if context is None or context.published_at is None:
            return
        elapsed_ms = max(0.0, (self.clock() - context.published_at) * 1000.0)
        self.metrics.histogram("net.publish_apply_ms").observe(elapsed_ms)

    # ------------------------------------------------------------------
    # repair + convergence
    # ------------------------------------------------------------------

    def reachable(self, peer: str) -> bool:
        """Is ``peer`` live and connected to the feed right now?

        In the legacy star this is the direct link to the publisher; in
        a relay mesh the publisher need not be adjacent, so reachability
        walks the relay graph (:meth:`_reachable_set`) — a peer is
        reachable iff some custody-carrying path of connected links and
        live relays leads from the publisher to it.
        """
        node = self.nodes[peer]
        if node.crashed:
            return False
        if not self.scenario.topology:
            return self.transport.connected(self.scenario.publisher, peer)
        return peer in self._reachable_set()

    def _reachable_set(self) -> set[str]:
        """Peers a custody-carrying live path connects to the publisher.

        Breadth-first over the relay graph: an edge is traversable when
        it carries the feed, its recipient is live, and the transport
        currently connects its ends (partitions sever edges, not just
        the publisher's own links).
        """
        feed = self.scenario.publisher
        seen = {feed}
        frontier = [feed]
        while frontier:
            current = frontier.pop(0)
            for link in self.scenario.downstream(current, feed):
                nxt = link.recipient
                if (
                    nxt in seen
                    or self.nodes[nxt].crashed
                    or not self.transport.connected(current, nxt)
                ):
                    continue
                seen.add(nxt)
                frontier.append(nxt)
        seen.discard(feed)
        return seen

    def _repair_sources(self, name: str) -> list[str]:
        """Upstream neighbors able to repair ``name`` right now.

        A candidate holds the latest stamp (the publisher always does; a
        relay does once its own watermark caught up), is live, and is
        currently connected to ``name``.
        """
        feed = self.scenario.publisher
        candidates = []
        for link in self.scenario.upstreams(name, feed):
            sender = link.sender
            if sender != feed:
                node = self.nodes[sender]
                if node.crashed or node.behind(self.latest_stamp):
                    continue
            if self.transport.connected(sender, name):
                candidates.append(sender)
        return candidates

    def _anti_entropy(self) -> None:
        """Re-offer the latest snapshot to lagging reachable peers.

        Models the catch-up fetch a re-joined peer performs: reliable
        (no fault schedule), bounded, and idempotent — an up-to-date
        peer is never contacted.  In a relay mesh the repair is
        *path-aware*: a lagging peer fetches from the healthiest caught-
        up upstream neighbor (ranked by :class:`~repro.net.PeerScorer`),
        not from the possibly-unreachable origin, and repairs cascade
        down the graph round by round.
        """
        if self.latest_snapshot is None:
            return
        feed = self.scenario.publisher
        for round_number in range(1, self.anti_entropy_limit + 1):
            lagging = [
                name
                for name in self.scenario.peers
                if self.reachable(name) and self.nodes[name].behind(self.latest_stamp)
            ]
            if not lagging:
                break
            repaired_any = False
            for name in lagging:
                if self.scenario.topology:
                    sources = self._repair_sources(name)
                    upstream = self.scorer.best_upstream(name, sources)
                    if upstream is None:
                        # No caught-up neighbor yet: a later round will
                        # reach this peer once its upstream is repaired.
                        continue
                    if upstream == feed:
                        payload = self.latest_snapshot
                    else:
                        source = self.nodes[upstream].session.last_source
                        if source is None:  # pragma: no cover - caught up
                            continue
                        payload = source
                else:
                    upstream, payload = feed, self.latest_snapshot
                self.stats["anti_entropy"] += 1
                repaired_any = True
                if self.metrics is not None:
                    self.metrics.counter("net.anti_entropy").inc()
                message = Message(
                    upstream, name, self.latest_stamp, payload,
                    context=self._publish_contexts.get(self.latest_stamp),
                )
                outcome = self.nodes[name].receive(
                    message, tracer=self.tracer, metrics=self.metrics
                )
                self._note(
                    f"anti-entropy round={round_number} {message.describe()} "
                    f"-> {self._verdict(outcome)}"
                )
                self._observe_apply(message, outcome)
                self.scorer.record((upstream, name), self._score_outcome(outcome))
            if self.scenario.topology and not repaired_any:
                # Every lagging peer is waiting on an upstream that can
                # no longer catch up (e.g. severed mid-graph): further
                # rounds cannot make progress.
                break

    def check_convergence(self) -> ConvergenceReport:
        """Compare every reachable peer against the fault-free oracle.

        Delegates to the module-level :func:`check_convergence` — the
        transport-independent core shared with the :mod:`repro.netd`
        chaos harness — on this run's reachable peer states.

        States are compared up to renaming of labeled nulls: each sync
        round invents fresh nulls, so a peer that skipped a since-
        superseded snapshot numbers its nulls differently from the
        oracle while representing the same instance.  Equality is exact
        fact-set equality, with bidirectional constant-preserving
        homomorphism as the fallback (homomorphic equivalence — the same
        certain answers).
        """
        states: dict[str, Instance] = {}
        unreachable: list[str] = []
        watermarks: dict[str, Stamp | None] = {}
        for name in self.scenario.peers:
            if not self.reachable(name):
                unreachable.append(name)
                continue
            states[name] = self.nodes[name].state()
            watermarks[name] = self.nodes[name].stamp
        report = check_convergence(
            self.scenario, states, unreachable,
            watermarks=watermarks, published=self.published_stamps,
        )
        peers = report.peers
        self._note(
            "convergence "
            + (
                " ".join(
                    f"{name}={'ok' if ok else 'DIVERGED'}"
                    for name, ok in sorted(peers.items())
                )
                if peers
                else "vacuous (no reachable peers)"
            )
            + (f" unreachable={','.join(unreachable)}" if unreachable else "")
        )
        return report

    def _aggregate_stats(self) -> dict[str, int]:
        totals = dict(self.transport.stats)
        totals.update(self.stats)
        for key in ("applied", "stale", "rejected", "degraded", "chain_broken"):
            totals[key] = sum(node.stats[key] for node in self.nodes.values())
        return totals
