"""A peer node: a sync session behind an idempotent message protocol.

:class:`PeerNode` is the per-peer actor of the simulator.  It owns a
:class:`~repro.sync.SyncSession` and exposes exactly one ingress —
:meth:`receive` — which ingests a stamped snapshot :class:`.Message`
under at-least-once semantics:

* *idempotence* — a duplicated or out-of-order message whose
  :class:`~repro.sync.Stamp` is at or below the session watermark is
  skipped as stale, never re-applied;
* *monotone epochs* — stamps order lexicographically by ``(epoch,
  seq)``, so a publisher restart (higher epoch, reset seq) still wins
  over any message from the old epoch;
* *crash safety* — with a :class:`~repro.runtime.SessionJournal`, the
  watermark and materialized state commit atomically per round, so
  :meth:`restart` resumes mid-simulation from the last durable round and
  redelivered messages replay as stale no-ops.

A crashed node holds no session object at all (crash = memory loss);
delivering to it is a driver bug and raises
:class:`~repro.exceptions.SimulationError`.
"""

from __future__ import annotations

from repro.core.instance import Instance
from repro.core.setting import PDESetting
from repro.exceptions import SimulationError
from repro.net.transport import Delta, Message
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer
from repro.runtime.budget import Budget
from repro.runtime.journal import SessionJournal
from repro.runtime.retry import RetryPolicy
from repro.sync.session import Stamp, SyncOutcome, SyncSession

__all__ = ["PeerNode"]


class PeerNode:
    """One peer in a simulated network.

    Args:
        name: the peer's network name.
        setting: the PDE setting governing its exchange with the
            publisher.
        pinned: the peer's own facts (Definition 2's ``J``); every
            materialization must contain them.
        journal: optional :class:`~repro.runtime.SessionJournal`; without
            one, a crash loses all state and :meth:`restart` begins from
            scratch (anti-entropy then re-imports everything).
        retry: optional :class:`~repro.runtime.RetryPolicy` for
            budget-exhausted rounds.
    """

    def __init__(
        self,
        name: str,
        setting: PDESetting,
        pinned: Instance | None = None,
        journal: SessionJournal | None = None,
        retry: RetryPolicy | None = None,
    ) -> None:
        self.name = name
        self.setting = setting
        # Copy at the node boundary: the caller (a Scenario, typically)
        # shares one pinned instance across nodes and the convergence
        # oracle, and a journal-free restart re-seeds a session from
        # self.pinned — aliasing the caller's instance would let any
        # mutation of it leak into the resumed session.
        self.pinned = pinned.copy() if pinned is not None else Instance()
        self.journal = journal
        self.retry = retry
        self.session: SyncSession | None = SyncSession(
            setting, pinned=self.pinned, journal=journal, retry=retry
        )
        self.stats: dict[str, int] = {
            "applied": 0, "stale": 0, "rejected": 0, "degraded": 0,
            "chain_broken": 0,
        }

    # ------------------------------------------------------------------
    # liveness
    # ------------------------------------------------------------------

    @property
    def crashed(self) -> bool:
        return self.session is None

    def crash(self) -> None:
        """Simulate process death: all in-memory state is lost.

        Only the journal (if any) survives; :meth:`restart` rebuilds from
        it.
        """
        if self.crashed:
            raise SimulationError(f"peer {self.name!r} is already crashed")
        self.session = None

    def restart(self) -> None:
        """Bring a crashed peer back, resuming from its journal if present."""
        if not self.crashed:
            raise SimulationError(f"peer {self.name!r} is not crashed")
        if self.journal is not None and self.journal.exists():
            self.session = SyncSession.resume(self.journal)
            self.session.retry = self.retry
        else:
            # No durable state: restart empty and rely on anti-entropy.
            self.session = SyncSession(
                self.setting, pinned=self.pinned,
                journal=self.journal, retry=self.retry,
            )

    # ------------------------------------------------------------------
    # protocol
    # ------------------------------------------------------------------

    @property
    def stamp(self) -> Stamp | None:
        """The watermark of the newest snapshot applied, or None."""
        if self.session is None:
            return None
        return self.session.last_stamp

    def behind(self, stamp: Stamp | None) -> bool:
        """Has this (live) peer not yet applied ``stamp``?"""
        if stamp is None or self.crashed:
            return False
        return self.stamp is None or self.stamp < stamp

    def state(self) -> Instance:
        """The peer's current materialized target state."""
        if self.session is None:
            raise SimulationError(f"peer {self.name!r} is crashed; no state")
        return self.session.state()

    def receive(
        self,
        message: Message,
        budget: Budget | None = None,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> SyncOutcome:
        """Ingest one delivered message through the stamped protocol.

        A :class:`~repro.net.Delta` payload routes through
        :meth:`~repro.sync.SyncSession.sync_delta`: it applies only when
        the session's watermark equals the delta's base stamp, and
        otherwise reports a broken chain (``outcome.chain_broken``) so the
        sender can fall back to a full snapshot.

        When the message carries a wire trace context and ``tracer`` is
        enabled, the round runs inside a ``net.apply`` span annotated as
        a child hop of the publish's trace — the simulator's twin of the
        daemon's ``netd.ingest`` span.
        """
        if self.session is None:
            raise SimulationError(
                f"delivered to crashed peer {self.name!r}: the driver must "
                "drop deliveries to crashed peers"
            )

        def ingest() -> SyncOutcome:
            if isinstance(message.payload, Delta):
                return self.session.sync_delta(
                    message.payload.added,
                    message.payload.withdrawn,
                    base=message.payload.base,
                    stamp=message.stamp,
                    budget=budget,
                    tracer=tracer,
                    metrics=metrics,
                )
            return self.session.sync(
                message.payload,
                stamp=message.stamp,
                budget=budget,
                tracer=tracer,
                metrics=metrics,
            )

        if tracer is not None and tracer.enabled and message.context is not None:
            with tracer.span(
                "net.apply",
                lane=self.name,
                peer=self.name,
                stamp=str(message.stamp),
                delta=isinstance(message.payload, Delta),
            ) as span:
                message.context.child(f"{self.name}:apply").annotate(span)
                outcome = ingest()
        else:
            outcome = ingest()
        if outcome.stale:
            self.stats["stale"] += 1
        elif outcome.chain_broken:
            self.stats["chain_broken"] += 1
        elif outcome.degraded:
            self.stats["degraded"] += 1
        elif outcome.ok:
            self.stats["applied"] += 1
        else:
            self.stats["rejected"] += 1
        return outcome

    def __repr__(self) -> str:
        status = "crashed" if self.crashed else f"stamp={self.stamp}"
        return f"PeerNode({self.name!r}, {status})"
