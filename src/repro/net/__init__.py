"""Peer network simulator: unreliable transport, partitions, and
convergent multi-peer sync.

The paper's exchange protocol is defined between one source and one
target; this package stretches it across a simulated network.  A
publisher peer streams authoritative snapshots to subscriber peers over
a :class:`SimTransport` whose links drop, duplicate, reorder, and delay
messages under seeded, replayable :class:`~repro.runtime.FaultSchedule`\\ s,
and whose topology can partition and heal mid-run.  Each
:class:`PeerNode` wraps a :class:`~repro.sync.SyncSession` behind an
idempotent at-least-once protocol keyed by a monotone
:class:`~repro.sync.Stamp` ``(epoch, seq)`` watermark, so redelivery and
reordering are harmless and a journal-backed peer can crash and resume
mid-simulation.  The :class:`NetworkSimulator` runs a scripted
:class:`Scenario` to quiescence, performs an anti-entropy catch-up
round, and checks **convergence**: every reachable peer's materialized
state must equal the fault-free oracle run.

With delta transfer enabled (``NetworkSimulator(..., deltas=True)``),
publishes ship a :class:`Delta` — ``(added, withdrawn)`` keyed on the
previous publish's :class:`~repro.sync.Stamp` — whenever that beats the
full snapshot; a recipient whose watermark is not the delta's base
reports a broken chain and the publisher falls back to a full snapshot
for that peer.  Deltas are a pure wire optimization: converged states
are identical with deltas on or off.

Scenarios may declare a relay ``topology`` — directed
:class:`RelayLink` edges with optional per-feed custody — instead of the
default publisher→subscriber star.  Peers then *forward* stamped
snapshots they freshly apply down their out-links (watermarks make
redelivery idempotent, so relay cycles and duplicate paths are safe),
anti-entropy walks the relay graph instead of assuming the origin is
adjacent, and a :class:`PeerScorer` ranks per-link health so catch-up
re-routes around lossy links.

Everything is deterministic given the scenario seed — the simulator's
event log replays byte-for-byte.
"""

from repro.net.node import PeerNode
from repro.net.scenario_io import (
    dumps_scenario,
    is_scenario_dict,
    loads_scenario,
    scenario_from_dict,
    scenario_to_dict,
)
from repro.net.scenarios import (
    REPAIR_RULES,
    BumpEpoch,
    Crash,
    Heal,
    NetworkEvent,
    Partition,
    RelayLink,
    Restart,
    Scenario,
    crash_scenario,
    genomics_churn_scenario,
    genomics_scenario,
    registry_scenario,
    registry_setting,
    relay_chain_scenario,
    relay_mesh_scenario,
    scenario_registry,
)
from repro.net.scoring import SCORE_WEIGHTS, PeerScorer
from repro.net.simulator import (
    ConvergenceReport,
    NetworkSimulator,
    SimulationReport,
    check_convergence,
    oracle_state,
    states_agree,
)
from repro.net.transport import Delta, Message, SimTransport

__all__ = [
    "BumpEpoch",
    "ConvergenceReport",
    "Crash",
    "Delta",
    "Heal",
    "Message",
    "NetworkEvent",
    "NetworkSimulator",
    "Partition",
    "PeerNode",
    "PeerScorer",
    "REPAIR_RULES",
    "RelayLink",
    "Restart",
    "SCORE_WEIGHTS",
    "Scenario",
    "SimTransport",
    "SimulationReport",
    "check_convergence",
    "crash_scenario",
    "dumps_scenario",
    "genomics_churn_scenario",
    "genomics_scenario",
    "is_scenario_dict",
    "loads_scenario",
    "oracle_state",
    "registry_scenario",
    "registry_setting",
    "relay_chain_scenario",
    "relay_mesh_scenario",
    "scenario_from_dict",
    "scenario_registry",
    "scenario_to_dict",
    "states_agree",
]
