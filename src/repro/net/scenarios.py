"""Scripted network scenarios: timelines of publishes, faults, and events.

A :class:`Scenario` is a fully deterministic description of one
simulation: the PDE setting, the publisher's snapshot sequence, the
subscriber peers, per-link :class:`~repro.runtime.FaultSchedule`\\ s, and
a timeline of control events (:class:`Partition` / :class:`Heal` /
:class:`Crash` / :class:`Restart` / :class:`BumpEpoch`).  Builders take
a ``seed`` and derive every random choice from it, so a scenario value
is replayable by construction.

Shipped scenarios (see :func:`scenario_registry`):

* ``registry`` — a small key/value registry mirrored to three peers
  under drops, duplicates, reordering, and one partition/heal.  The
  default of ``repro.cli simulate``.
* ``genomics`` — the paper's Swiss-Prot feed
  (:func:`repro.workloads.generate_genomics_feed`) mirrored to three
  university peers over a lossy network.
* ``genomics-churn`` — a larger, longer Swiss-Prot feed with low churn
  over mildly lossy links: the periodic-re-ingestion workload delta
  transfer (``simulate --delta``) exists to optimize.
* ``crash`` — the registry scenario plus one journal-backed peer crashing
  mid-simulation and resuming two publishes later.
* ``relay-chain`` — a 3-hop relay chain (origin→relay-a→relay-b→leaf)
  with per-hop faults and a tail partition; only the first relay hears
  the publisher directly.
* ``relay-mesh`` — a diamond mesh whose lossy path is score-downgraded
  so catch-up re-routes through the healthy hub.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.core.instance import Instance
from repro.core.parser import parse_instance
from repro.core.setting import PDESetting
from repro.exceptions import SimulationError
from repro.runtime.faults import FaultSchedule
from repro.workloads.scenarios import generate_genomics_feed, genomics_setting

__all__ = [
    "BumpEpoch",
    "Crash",
    "Heal",
    "Partition",
    "REPAIR_RULES",
    "RelayLink",
    "Restart",
    "Scenario",
    "crash_scenario",
    "genomics_churn_scenario",
    "genomics_scenario",
    "registry_scenario",
    "registry_setting",
    "relay_chain_scenario",
    "relay_mesh_scenario",
    "scenario_registry",
]


# ----------------------------------------------------------------------
# timeline events
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Partition:
    """Split the network into isolated groups at virtual time ``at``."""

    at: float
    groups: tuple[frozenset[str], ...]

    def __init__(self, at: float, *groups: object) -> None:
        object.__setattr__(self, "at", at)
        object.__setattr__(
            self, "groups", tuple(frozenset(group) for group in groups)
        )


@dataclass(frozen=True)
class Heal:
    """Restore full connectivity at virtual time ``at``."""

    at: float


@dataclass(frozen=True)
class Crash:
    """Kill ``peer`` at virtual time ``at`` (in-memory state is lost)."""

    at: float
    peer: str


@dataclass(frozen=True)
class Restart:
    """Bring ``peer`` back at virtual time ``at`` (journal resume)."""

    at: float
    peer: str


@dataclass(frozen=True)
class BumpEpoch:
    """The publisher restarts at ``at``: epoch increments, seq resets."""

    at: float


#: Every control-event type a scenario timeline may contain.
NetworkEvent = Partition | Heal | Crash | Restart | BumpEpoch


# ----------------------------------------------------------------------
# relay topology
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class RelayLink:
    """One directed edge of a relay topology.

    ``sender`` pushes stamped snapshots to ``recipient``; ``recipient``
    in turn forwards what it applies down its own out-links.  ``custody``
    names the feeds (publisher names) this link is responsible for
    carrying — empty means *all* feeds, which is the common case while
    the runtime has a single publisher per scenario.
    """

    sender: str
    recipient: str
    custody: frozenset[str] = frozenset()

    def __init__(
        self, sender: str, recipient: str, custody: object = ()
    ) -> None:
        object.__setattr__(self, "sender", sender)
        object.__setattr__(self, "recipient", recipient)
        object.__setattr__(self, "custody", frozenset(custody))

    def carries(self, feed: str) -> bool:
        """Whether this link has custody of ``feed`` (empty = all feeds)."""
        return not self.custody or feed in self.custody

#: The repair rules the trust-ordered merge semantics define (cf.
#: *Exchange-Repairs*, ten Cate et al.): what happens when a merge of
#: equally-trusted facts still violates a Σ_t egd.
REPAIR_RULES = ("prefer-trusted", "drop-conflicts", "reject-publish")


# ----------------------------------------------------------------------
# the scenario value
# ----------------------------------------------------------------------


@dataclass
class Scenario:
    """One deterministic simulation script.

    Attributes:
        name: registry name (also the default journal-file prefix).
        description: one-line human description.
        setting: the PDE setting every peer syncs under.
        snapshots: the publisher's authoritative snapshots, in publish
            order; snapshot ``i`` publishes at ``i * interval``.
        peers: subscriber peer names (the publisher is not a peer).
        publisher: the publishing peer's network name.
        interval: virtual seconds between publishes.
        latency: base link latency handed to the transport.
        reorder_delay: extra latency a reordered message suffers; must
            exceed ``interval`` for reordering to actually overtake the
            next publish (None keeps the transport default, ``4 *
            latency``).
        faults: per directed link ``(sender, recipient)``, the
            :class:`~repro.runtime.FaultSchedule` afflicting it.
        events: control events, any order (the simulator sorts by time).
        pinned: optional per-peer pinned facts.
        seed: the seed the builder derived the scenario from (recorded
            for reports; all randomness is already baked in).
        co_publishers: additional publishers for the *same* setting.
            Declarative for now: the simulator refuses to run
            multi-publisher scenarios until the trust-ordered merge
            lands, but :func:`repro.analysis.analyze_scenario` already
            checks the declaration (PDE4xx).
        trust: the trust order over publishers, most-trusted first — the
            Bertossi–Bravo resolution for equal stamps issued by
            different publishers.
        repair: the fallback when a trust-ordered merge still violates
            Σ_t egds; one of :data:`REPAIR_RULES` (empty = undeclared).
        topology: directed :class:`RelayLink` edges forming the relay
            graph.  Empty means the legacy star (the publisher feeds
            every peer directly); non-empty means publishes flow only
            along declared links and peers forward what they apply.
    """

    name: str
    description: str
    setting: PDESetting
    snapshots: list[Instance]
    peers: list[str]
    publisher: str = "origin"
    interval: float = 1.0
    latency: float = 0.05
    reorder_delay: float | None = None
    faults: Mapping[tuple[str, str], FaultSchedule] = field(default_factory=dict)
    events: list[NetworkEvent] = field(default_factory=list)
    pinned: Mapping[str, Instance] = field(default_factory=dict)
    seed: int = 0
    co_publishers: tuple[str, ...] = ()
    trust: tuple[str, ...] = ()
    repair: str = ""
    topology: tuple[RelayLink, ...] = ()

    def __post_init__(self) -> None:
        self.co_publishers = tuple(self.co_publishers)
        self.trust = tuple(self.trust)
        self.topology = tuple(self.topology)
        if not self.snapshots:
            raise SimulationError(f"scenario {self.name!r} publishes nothing")
        if not self.peers:
            raise SimulationError(f"scenario {self.name!r} has no peers")
        for name in self.co_publishers:
            if name in self.peers or name == self.publisher:
                raise SimulationError(
                    f"scenario {self.name!r}: co-publisher {name!r} is "
                    "already a peer or the primary publisher"
                )
        if self.publisher in self.peers:
            raise SimulationError(
                f"scenario {self.name!r}: publisher {self.publisher!r} cannot "
                "also be a subscriber peer"
            )
        known = set(self.peers) | {self.publisher}
        for event in self.events:
            peer = getattr(event, "peer", None)
            if peer is not None and peer not in self.peers:
                raise SimulationError(
                    f"scenario {self.name!r}: event {event} references unknown "
                    f"peer {peer!r}"
                )
        for link in self.faults:
            for end in link:
                if end not in known:
                    raise SimulationError(
                        f"scenario {self.name!r}: fault link {link} references "
                        f"unknown peer {end!r}"
                    )
        seen_edges: set[tuple[str, str]] = set()
        for relay in self.topology:
            if relay.sender not in known:
                raise SimulationError(
                    f"scenario {self.name!r}: relay link {relay.sender!r}->"
                    f"{relay.recipient!r} has unknown sender"
                )
            if relay.recipient not in self.peers:
                raise SimulationError(
                    f"scenario {self.name!r}: relay link {relay.sender!r}->"
                    f"{relay.recipient!r} must end at a subscriber peer"
                )
            if relay.sender == relay.recipient:
                raise SimulationError(
                    f"scenario {self.name!r}: relay link {relay.sender!r} "
                    "loops onto itself"
                )
            edge = (relay.sender, relay.recipient)
            if edge in seen_edges:
                raise SimulationError(
                    f"scenario {self.name!r}: duplicate relay link "
                    f"{relay.sender!r}->{relay.recipient!r}"
                )
            seen_edges.add(edge)
            for feed in relay.custody:
                if feed not in self.publishers:
                    raise SimulationError(
                        f"scenario {self.name!r}: relay link {relay.sender!r}->"
                        f"{relay.recipient!r} claims custody of unknown feed "
                        f"{feed!r}"
                    )

    @property
    def duration(self) -> float:
        """Virtual time of the last publish."""
        return (len(self.snapshots) - 1) * self.interval

    @property
    def publishers(self) -> tuple[str, ...]:
        """Every declared publisher, primary first."""
        return (self.publisher, *self.co_publishers)

    @property
    def relay_links(self) -> tuple[RelayLink, ...]:
        """The effective relay graph: the declared topology, or the
        derived star (publisher → every peer) when none is declared."""
        if self.topology:
            return self.topology
        return tuple(RelayLink(self.publisher, peer) for peer in self.peers)

    def downstream(self, name: str, feed: str | None = None) -> tuple[RelayLink, ...]:
        """Out-links of ``name`` (optionally only those carrying ``feed``)."""
        return tuple(
            link
            for link in self.relay_links
            if link.sender == name and (feed is None or link.carries(feed))
        )

    def upstreams(self, name: str, feed: str | None = None) -> tuple[RelayLink, ...]:
        """In-links of ``name`` (optionally only those carrying ``feed``)."""
        return tuple(
            link
            for link in self.relay_links
            if link.recipient == name and (feed is None or link.carries(feed))
        )


# ----------------------------------------------------------------------
# builders
# ----------------------------------------------------------------------


def registry_setting() -> PDESetting:
    """The tiny key/value registry PDE used by the shipped scenarios."""
    return PDESetting.from_text(
        source={"reg": 2},
        target={"db": 2},
        st="reg(k, v) -> db(k, v)",
        ts="db(k, v) -> reg(k, v)",
        name="registry",
    )


def _registry_snapshots() -> list[Instance]:
    """Six authoritative registry snapshots with adds and withdrawals."""
    return [
        parse_instance(text)
        for text in (
            "reg(a, 1)",
            "reg(a, 1); reg(b, 2)",
            "reg(a, 1); reg(b, 2); reg(c, 3)",
            "reg(b, 2); reg(c, 3); reg(d, 4)",  # a withdrawn
            "reg(b, 2); reg(c, 3); reg(d, 4); reg(e, 5)",
            "reg(c, 3); reg(d, 4); reg(e, 5); reg(f, 6)",  # b withdrawn
        )
    ]


def _lossy_links(
    publisher: str, peers: list[str], seed: int,
    drop: float, duplicate: float, reorder: float,
) -> dict[tuple[str, str], FaultSchedule]:
    """One seeded schedule per publisher→peer link, seeds derived per link."""
    return {
        (publisher, peer): FaultSchedule.seeded(
            seed=seed * 1000 + offset,
            drop=drop, duplicate=duplicate, reorder=reorder,
        )
        for offset, peer in enumerate(peers)
    }


def registry_scenario(seed: int = 0) -> Scenario:
    """Three registry mirrors under every fault class plus one partition.

    Links drop, duplicate, and reorder at seeded rates; between the third
    and fifth publish, ``peer-c`` is partitioned away from the publisher
    and must catch up through anti-entropy after the heal.
    """
    peers = ["peer-a", "peer-b", "peer-c"]
    publisher = "origin"
    return Scenario(
        name="registry",
        description=(
            "3 registry mirrors; seeded drop/dup/reorder on every link; "
            "peer-c partitioned for 2 publishes, then healed"
        ),
        setting=registry_setting(),
        snapshots=_registry_snapshots(),
        peers=peers,
        publisher=publisher,
        # A reordered message overtakes the next publish: 1.2 > interval.
        reorder_delay=1.2,
        faults=_lossy_links(
            publisher, peers, seed, drop=0.25, duplicate=0.25, reorder=0.25
        ),
        events=[
            Partition(2.5, {publisher, "peer-a", "peer-b"}, {"peer-c"}),
            Heal(4.5),
        ],
        seed=seed,
    )


def genomics_scenario(seed: int = 0) -> Scenario:
    """The Swiss-Prot feed mirrored to three universities over a lossy net."""
    peers = ["uni-basel", "uni-geneva", "uni-zurich"]
    publisher = "swissprot"
    return Scenario(
        name="genomics",
        description=(
            "5-round Swiss-Prot feed (adds + curation withdrawals) to 3 "
            "university mirrors; lossy links; one mid-feed partition"
        ),
        setting=genomics_setting(),
        snapshots=generate_genomics_feed(rounds=5, proteins=8, seed=seed),
        peers=peers,
        publisher=publisher,
        reorder_delay=1.2,
        faults=_lossy_links(
            publisher, peers, seed, drop=0.2, duplicate=0.2, reorder=0.2
        ),
        events=[
            Partition(1.5, {publisher, "uni-basel", "uni-geneva"}, {"uni-zurich"}),
            Heal(3.5),
        ],
        seed=seed,
    )


def genomics_churn_scenario(seed: int = 0) -> Scenario:
    """A large, low-churn Swiss-Prot feed: the delta-transfer showcase.

    Models the paper's periodic re-ingestion at production shape: each
    interval the authority re-publishes a big mostly-unchanged snapshot
    (32 proteins, ~12% churn per round, 8 rounds) over links with mild
    real-world fault rates.  Full state transfer re-ships every fact
    every round; ``NetworkSimulator(..., deltas=True)`` ships only the
    churn, so this scenario is where the facts-on-wire reduction is
    measured (``benchmarks/bench_net.py``).
    """
    peers = ["uni-basel", "uni-geneva", "uni-zurich"]
    publisher = "swissprot"
    return Scenario(
        name="genomics-churn",
        description=(
            "8-round, 32-protein Swiss-Prot feed (~12% churn/round) to 3 "
            "mirrors over mildly lossy links; the delta-transfer workload"
        ),
        setting=genomics_setting(),
        snapshots=generate_genomics_feed(
            rounds=8, proteins=32, churn=0.12, seed=seed
        ),
        peers=peers,
        publisher=publisher,
        reorder_delay=1.2,
        faults=_lossy_links(
            publisher, peers, seed, drop=0.05, duplicate=0.05, reorder=0.05
        ),
        seed=seed,
    )


def crash_scenario(seed: int = 0) -> Scenario:
    """The registry scenario plus a journal-backed crash and resume.

    ``peer-b`` dies just after the third publish and restarts after the
    fifth; with a journal directory the restart resumes from the last
    committed round, and redeliveries replay as stale no-ops.
    """
    scenario = registry_scenario(seed)
    scenario.name = "crash"
    scenario.description = (
        scenario.description + "; peer-b crashes at t=2.6 and restarts at t=4.6"
    )
    scenario.events = list(scenario.events) + [
        Crash(2.6, "peer-b"),
        Restart(4.6, "peer-b"),
    ]
    return scenario


def relay_chain_scenario(seed: int = 0) -> Scenario:
    """A 3-hop relay chain: ``origin → relay-a → relay-b → leaf``.

    Only ``relay-a`` hears the publisher directly; every other peer
    receives state forwarded by its upstream relay.  Each hop drops and
    duplicates at seeded rates, and the tail of the chain is partitioned
    away for two publishes — path-aware anti-entropy must walk the chain
    to repair it, because the origin is never directly reachable from
    ``leaf``.
    """
    publisher = "origin"
    peers = ["relay-a", "relay-b", "leaf"]
    links = [(publisher, "relay-a"), ("relay-a", "relay-b"), ("relay-b", "leaf")]
    return Scenario(
        name="relay-chain",
        description=(
            "3-hop relay chain (origin→relay-a→relay-b→leaf); seeded "
            "drop/dup per hop; tail partitioned for 2 publishes, then healed"
        ),
        setting=registry_setting(),
        snapshots=_registry_snapshots(),
        peers=peers,
        publisher=publisher,
        faults={
            link: FaultSchedule.seeded(
                seed=seed * 1000 + offset, drop=0.2, duplicate=0.2
            )
            for offset, link in enumerate(links)
        },
        events=[
            Partition(2.5, {publisher, "relay-a", "relay-b"}, {"leaf"}),
            Heal(4.5),
        ],
        topology=tuple(RelayLink(sender, recipient) for sender, recipient in links),
        seed=seed,
    )


def relay_mesh_scenario(seed: int = 0) -> Scenario:
    """A diamond mesh with one lossy path: the peer-scoring showcase.

    ``origin`` feeds two hubs; both hubs feed ``leaf``.  The ``hub-a``
    path drops most traffic, so its per-link score sinks while the clean
    ``hub-b`` path stays healthy — catch-up for ``leaf`` re-routes
    through ``hub-b`` (``net.score.*`` gauges make the ranking visible).
    """
    publisher = "origin"
    peers = ["hub-a", "hub-b", "leaf"]
    custody = frozenset({publisher})
    return Scenario(
        name="relay-mesh",
        description=(
            "diamond relay mesh (origin→{hub-a,hub-b}→leaf); the hub-a "
            "path drops heavily, so scoring re-routes catch-up via hub-b"
        ),
        setting=registry_setting(),
        snapshots=_registry_snapshots(),
        peers=peers,
        publisher=publisher,
        faults={
            ("hub-a", "leaf"): FaultSchedule.seeded(
                seed=seed * 1000 + 1, drop=0.6
            ),
        },
        topology=(
            RelayLink(publisher, "hub-a", custody),
            RelayLink(publisher, "hub-b", custody),
            RelayLink("hub-a", "leaf", custody),
            RelayLink("hub-b", "leaf", custody),
        ),
        seed=seed,
    )


def scenario_registry() -> dict[str, Callable[[int], Scenario]]:
    """The named scenario builders, keyed as the CLI spells them."""
    return {
        "registry": registry_scenario,
        "genomics": genomics_scenario,
        "genomics-churn": genomics_churn_scenario,
        "crash": crash_scenario,
        "relay-chain": relay_chain_scenario,
        "relay-mesh": relay_mesh_scenario,
    }
