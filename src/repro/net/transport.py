"""A deterministic simulated transport between peers.

:class:`SimTransport` is the wire of the :mod:`repro.net` simulator: a
priority queue of in-flight :class:`Message` objects on a virtual
:class:`~repro.runtime.FaultClock` timeline.  Per directed link it
consults a :class:`~repro.runtime.FaultSchedule` — the multi-link
generalization of :func:`~repro.runtime.faulty_feed` — to decide, for
each send, whether the message is dropped, duplicated, reordered
(overtaken by later sends), or delayed.

Partitions are modeled as a send-time property of the network: while a
partition is active, a message whose sender and recipient sit in
different groups is dropped at the sender (the connection refuses), and
:meth:`SimTransport.heal` restores full connectivity.  Messages already
in flight when a partition starts still deliver — exactly the window
that makes stale-snapshot rejection necessary.

Everything is deterministic: virtual time only advances when the driver
advances it, fault decisions hash a seed per send index, and queue ties
break on a monotone enqueue counter — so the same scenario replays
byte-for-byte (the property :meth:`NetworkSimulator.run` asserts via its
event log).

Observability: sends, deliveries, drops, and partition changes emit
``net.send`` / ``net.deliver`` / ``net.drop`` / ``net.partition`` /
``net.heal`` tracer events and ``net.*`` delivery counters on an
optional :class:`~repro.obs.MetricsRegistry`.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Iterable

from repro.core.instance import Instance
from repro.net.scoring import PeerScorer
from repro.obs.context import TraceContext
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.runtime.faults import FaultClock, FaultSchedule
from repro.sync.session import Stamp

__all__ = ["Delta", "Message", "SimTransport"]


@dataclass(frozen=True)
class Delta:
    """An incremental payload: patch the snapshot at ``base`` into the next.

    The snapshot stamped :attr:`Message.stamp` is reconstructed by the
    recipient as ``(base snapshot - withdrawn) ∪ added``.  A recipient
    whose watermark is not exactly ``base`` cannot apply it and reports a
    broken chain (see :meth:`repro.sync.SyncSession.sync_delta`); the
    sender then falls back to a full snapshot.  ``len()`` is the payload's
    wire size in facts — the number the delta protocol exists to shrink.
    """

    base: Stamp
    added: Instance
    withdrawn: Instance

    def __len__(self) -> int:
        return len(self.added) + len(self.withdrawn)

    def describe(self) -> str:
        return f"delta(base={self.base} +{len(self.added)} -{len(self.withdrawn)})"


@dataclass(frozen=True)
class Message:
    """One stamped snapshot offer in flight from ``sender`` to ``recipient``.

    The payload is either a full authoritative source snapshot (state
    transfer) or a :class:`Delta` keyed on the previous stamp.  Redelivery
    is harmless either way: the recipient's :class:`~repro.sync.Stamp`
    watermark makes snapshot ingestion idempotent, and a redelivered
    delta is either stale (below the watermark) or chain-broken (the
    watermark moved past its base) — never applied twice.

    ``context`` is the optional wire trace correlation
    (:class:`~repro.obs.TraceContext`) riding alongside the stamp; it is
    observability metadata, excluded from equality and repr so stamped
    messages compare by what they *mean* regardless of how they are
    traced.
    """

    sender: str
    recipient: str
    stamp: Stamp
    payload: Instance | Delta
    context: TraceContext | None = field(default=None, compare=False, repr=False)

    @property
    def link(self) -> tuple[str, str]:
        return (self.sender, self.recipient)

    @property
    def is_delta(self) -> bool:
        return isinstance(self.payload, Delta)

    @property
    def wire_facts(self) -> int:
        """Facts this message puts on the wire (the delta-protocol metric)."""
        return len(self.payload)

    def describe(self) -> str:
        text = f"{self.sender}->{self.recipient} stamp={self.stamp}"
        if self.is_delta:
            text += f" {self.payload.describe()}"
        return text


class SimTransport:
    """A seeded, replayable unreliable transport on a virtual clock.

    Args:
        clock: the simulation's :class:`~repro.runtime.FaultClock`; the
            transport never advances it (the driver owns time).
        latency: base link latency in virtual seconds.
        reorder_delay: extra latency applied to a reordered message, on
            top of ``latency``; defaults to ``4 * latency``, enough to be
            overtaken by the next few sends on the link.
        duplicate_lag: how far behind the original a duplicated delivery
            arrives (an at-least-once retransmit); defaults to
            ``latency / 2``.
        tracer: optional :class:`~repro.obs.Tracer` for ``net.*`` events.
        metrics: optional :class:`~repro.obs.MetricsRegistry` for
            ``net.*`` delivery counters.
        max_queue: per-recipient bound on in-flight messages.  A
            subscriber that never drains (a stalled driver, a crashed
            peer nobody garbage-collects) must not grow the publisher's
            memory without bound: when a send would leave more than
            ``max_queue`` messages queued for one recipient, the *oldest*
            in-flight message to that recipient is evicted (degrading the
            stream to its newest snapshots — every snapshot is
            authoritative, so dropping a superseded one loses nothing
            anti-entropy cannot repair) and a ``net.queue_evicted`` event
            and counter fire.  None (the default) keeps the historical
            unbounded behavior.
        scorer: optional :class:`~repro.net.PeerScorer`; when present
            every send folds its fate into the link's health score
            (drops and partition refusals down, anything else is scored
            by the recipient at delivery time).
    """

    def __init__(
        self,
        clock: FaultClock,
        latency: float = 0.05,
        reorder_delay: float | None = None,
        duplicate_lag: float | None = None,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
        max_queue: int | None = None,
        scorer: "PeerScorer | None" = None,
    ) -> None:
        if latency <= 0:
            raise ValueError(f"latency must be positive, got {latency}")
        if max_queue is not None and max_queue < 1:
            raise ValueError(f"max_queue must be positive, got {max_queue}")
        self.clock = clock
        self.scorer = scorer
        self.latency = latency
        self.reorder_delay = reorder_delay if reorder_delay is not None else 4 * latency
        self.duplicate_lag = duplicate_lag if duplicate_lag is not None else latency / 2
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics
        self.max_queue = max_queue
        self._queue: list[tuple[float, int, Message]] = []
        self._enqueued = 0
        self._send_index: dict[tuple[str, str], int] = {}
        self._schedules: dict[tuple[str, str], FaultSchedule] = {}
        self._groups: tuple[frozenset[str], ...] | None = None
        self.stats: dict[str, int] = {
            "sent": 0,
            "delivered": 0,
            "dropped": 0,
            "partition_dropped": 0,
            "duplicated": 0,
            "reordered": 0,
            "delayed": 0,
            "facts_sent": 0,
            "queue_evicted": 0,
        }

    # ------------------------------------------------------------------
    # topology
    # ------------------------------------------------------------------

    def set_schedule(
        self, sender: str, recipient: str, schedule: FaultSchedule
    ) -> None:
        """Attach a fault schedule to the directed link ``sender → recipient``."""
        self._schedules[(sender, recipient)] = schedule

    def partition(self, groups: Iterable[Iterable[str]]) -> None:
        """Split the network into isolated groups (send-time enforcement).

        Peers named in no group form an implicit extra group together.
        """
        normalized = tuple(frozenset(group) for group in groups)
        self._groups = normalized
        rendered = [",".join(sorted(group)) for group in normalized]
        self.tracer.event("net.partition", groups=rendered)
        if self.metrics is not None:
            self.metrics.counter("net.partitions").inc()

    def heal(self) -> None:
        """Restore full connectivity."""
        self._groups = None
        self.tracer.event("net.heal")
        if self.metrics is not None:
            self.metrics.counter("net.heals").inc()

    @property
    def partitioned(self) -> bool:
        return self._groups is not None

    def connected(self, a: str, b: str) -> bool:
        """Can ``a`` currently reach ``b``? (Trivially yes when healed.)"""
        if self._groups is None or a == b:
            return True
        group_of_a = group_of_b = None
        for group in self._groups:
            if a in group:
                group_of_a = group
            if b in group:
                group_of_b = group
        # Unnamed peers share the implicit remainder group (both None).
        return group_of_a is group_of_b

    # ------------------------------------------------------------------
    # sending / delivering
    # ------------------------------------------------------------------

    def _count(self, counter: str, delta: int = 1) -> None:
        self.stats[counter] += delta
        if self.metrics is not None:
            self.metrics.counter(f"net.{counter}").inc(delta)

    def send(self, message: Message) -> None:
        """Send one message, applying partitions and the link's faults."""
        link = message.link
        index = self._send_index.get(link, 0)
        self._send_index[link] = index + 1
        self._count("sent")
        if not self.connected(message.sender, message.recipient):
            self._count("partition_dropped")
            if self.scorer is not None:
                self.scorer.record(link, "partition_refused")
            self.tracer.event(
                "net.drop", reason="partition", message=message.describe()
            )
            return
        # Facts-on-wire: everything that leaves the sender, including
        # in-transit losses below (a partition refuses at connect time, so
        # nothing was transmitted and nothing was counted above).
        self._count("facts_sent", message.wire_facts)
        schedule = self._schedules.get(link)
        decision = schedule.decide(index) if schedule is not None else None
        if decision is not None and decision.drop:
            self._count("dropped")
            if self.scorer is not None:
                self.scorer.record(link, "dropped")
            self.tracer.event("net.drop", reason="fault", message=message.describe())
            return
        deliver_at = self.clock() + self.latency
        if decision is not None:
            if decision.delay > 0:
                deliver_at += decision.delay
                self._count("delayed")
            if decision.reorder:
                deliver_at += self.reorder_delay
                self._count("reordered")
        self._enqueue(deliver_at, message)
        self.tracer.event("net.send", message=message.describe(), at=deliver_at)
        if decision is not None and decision.duplicate:
            self._enqueue(deliver_at + self.duplicate_lag, message)
            self._count("duplicated")
            self._count("facts_sent", message.wire_facts)

    def _enqueue(self, deliver_at: float, message: Message) -> None:
        heapq.heappush(self._queue, (deliver_at, self._enqueued, message))
        self._enqueued += 1
        if self.max_queue is None:
            return
        backlog = [
            entry for entry in self._queue
            if entry[2].recipient == message.recipient
        ]
        if len(backlog) <= self.max_queue:
            return
        # Degrade to the newest snapshots: evict the recipient's oldest
        # in-flight message (earliest delivery, then send order).  The
        # evicted snapshot is superseded by what remains queued, so the
        # recipient converges exactly as if the link had dropped it.
        victim = min(backlog)
        self._queue.remove(victim)
        heapq.heapify(self._queue)
        self._count("queue_evicted")
        self.tracer.event(
            "net.queue_evicted",
            message=victim[2].describe(),
            depth=self.max_queue,
        )

    def pending(self) -> int:
        """Messages still in flight."""
        return len(self._queue)

    def next_delivery_at(self) -> float | None:
        """Virtual time of the next delivery, or None when idle."""
        return self._queue[0][0] if self._queue else None

    def pop_delivery(self) -> tuple[float, Message]:
        """Dequeue the next delivery (earliest time, then send order).

        The driver is responsible for advancing the clock to the returned
        time before handing the message to the recipient.
        """
        deliver_at, _order, message = heapq.heappop(self._queue)
        self._count("delivered")
        self.tracer.event("net.deliver", message=message.describe())
        return deliver_at, message
