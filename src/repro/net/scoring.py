"""Per-link peer scoring for relay meshes.

Every directed link in a relay topology accumulates a score from the
outcomes observed on it: successful applies and deliveries push the
score up, drops, timeouts, and chain breaks push it down.  Anti-entropy
uses the scores to pick the healthiest live upstream when several paths
could repair a lagging peer, so catch-up traffic routes around lossy
links instead of retrying them forever.

The design follows the PeerDAS peer-sampling guidance from the Ethereum
consensus specs: scores are bounded (a link can neither be banished
forever nor whitewash its history with one good round), updates are
small relative to the range, and ranking ties break deterministically
so replays stay byte-for-byte reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.obs.metrics import MetricsRegistry

__all__ = ["PeerScorer", "SCORE_WEIGHTS"]

#: Score adjustment per observed outcome.  Positive outcomes are small
#: relative to negative ones: a link must behave for several rounds to
#: recover from a drop, which keeps anti-entropy off flapping links.
SCORE_WEIGHTS: Mapping[str, float] = {
    "applied": 0.10,
    "stale": 0.02,
    "delivered": 0.05,
    "forwarded": 0.05,
    "dropped": -0.20,
    "partition_refused": -0.30,
    "timeout": -0.25,
    "lost": -0.25,
    "chain_broken": -0.15,
    "rejected": -0.10,
    "degraded": -0.05,
    "unreachable": -0.40,
}

_INITIAL = 1.0
_FLOOR = 0.0
_CEILING = 2.0


@dataclass
class PeerScorer:
    """Tracks a health score per directed link ``(sender, recipient)``.

    Scores start at ``1.0`` and are clamped to ``[0.0, 2.0]``.  Links the
    scorer has never observed report the initial score, so a fresh link
    always beats a known-lossy one and always loses to a proven one.

    Args:
        metrics: Optional registry; when present every update publishes
            a ``{prefix}.score.{sender}->{recipient}`` gauge.
        prefix: Metric family prefix — ``"net"`` for the simulator,
            ``"netd"`` for the daemon stack.
    """

    metrics: MetricsRegistry | None = None
    prefix: str = "net"
    _scores: dict[tuple[str, str], float] = field(default_factory=dict)

    def record(self, link: tuple[str, str], outcome: str) -> float:
        """Fold ``outcome`` into the score for ``link`` and return it.

        Unknown outcomes leave the score untouched (they still create
        the link entry) so callers can pass verdict strings through
        without pre-filtering.
        """
        weight = SCORE_WEIGHTS.get(outcome, 0.0)
        score = self._scores.get(link, _INITIAL) + weight
        score = max(_FLOOR, min(_CEILING, score))
        self._scores[link] = score
        if self.metrics is not None:
            sender, recipient = link
            self.metrics.gauge(f"{self.prefix}.score.{sender}->{recipient}").set(score)
        return score

    def score(self, link: tuple[str, str]) -> float:
        """Current score for ``link`` (initial score if never observed)."""
        return self._scores.get(link, _INITIAL)

    def best_upstream(
        self, recipient: str, candidates: Iterable[str]
    ) -> str | None:
        """The healthiest sender among ``candidates`` for ``recipient``.

        Ranks by score descending with sender name as a deterministic
        tie-break; returns ``None`` when there are no candidates.
        """
        ranked = sorted(
            candidates,
            key=lambda sender: (-self.score((sender, recipient)), sender),
        )
        return ranked[0] if ranked else None

    def snapshot(self) -> dict[str, float]:
        """Observed scores keyed ``"sender->recipient"`` (for stats payloads)."""
        return {
            f"{sender}->{recipient}": score
            for (sender, recipient), score in sorted(self._scores.items())
        }
