"""The lint rules of the setting analyzer, grouped by category.

Every rule is a generator ``rule(ctx) -> Iterator[Diagnostic]`` registered
with a primary diagnostic code and a category:

* ``well-formedness`` — is the quintuple a legal PDE setting at all?
  These run without assuming the setting validated (the engine builds
  settings with ``validate=False`` precisely so these rules get to see
  the breakage and report *all* of it, not just the first exception).
* ``boundary`` — which side of the Section 4 tractability boundary does
  the setting sit on, and why?  These are the rules the solver dispatcher
  quotes when it explains a fallback to the NP procedures.
* ``hygiene`` — dead weight: duplicates, subsumed tgds (via the chase
  implication test), unused relations, rules that cannot fire.

Rules never raise on malformed settings; they degrade to whatever they
can still check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

from repro.analysis.codes import CODES
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.fixes import Fix, JsonEdit
from repro.core.chase import chase
from repro.core.dependencies import EGD, TGD, Dependency, DisjunctiveTGD
from repro.core.homomorphism import has_homomorphism
from repro.core.instance import Instance
from repro.core.setting import PDESetting
from repro.core.terms import Constant
from repro.core.weak_acyclicity import is_weakly_acyclic
from repro.exceptions import ChaseFailure, ChaseNonTermination
from repro.tractability.classifier import (
    condition1_violations,
    condition2_2_violations,
)
from repro.tractability.marking import marked_positions, marked_variables

__all__ = ["Rule", "RULES", "RuleContext", "CATEGORIES", "rules_for"]

CATEGORIES = ("well-formedness", "boundary", "hygiene")


@dataclass(frozen=True)
class Rule:
    """A registered lint rule."""

    code: str
    name: str
    category: str
    check: Callable[["RuleContext"], Iterator[Diagnostic]]


RULES: list[Rule] = []


def _register(code: str, category: str):
    if category not in CATEGORIES:
        raise ValueError(f"unknown rule category {category!r}")

    def decorator(func: Callable[["RuleContext"], Iterator[Diagnostic]]):
        RULES.append(Rule(code, CODES[code].rule, category, func))
        return func

    return decorator


def rules_for(categories=None) -> list[Rule]:
    """The registered rules, optionally restricted to ``categories``."""
    if categories is None:
        return list(RULES)
    wanted = set(categories)
    return [rule for rule in RULES if rule.category in wanted]


class RuleContext:
    """Shared state for one analysis run: the setting plus cached helpers."""

    def __init__(self, setting: PDESetting):
        self.setting = setting

    def diag(
        self,
        code: str,
        message: str,
        dependency: Dependency | None = None,
        hint: str = "",
        fixes: tuple[Fix, ...] = (),
    ) -> Diagnostic:
        """Build a diagnostic, deriving severity/rule from the code table
        and the span from the dependency's provenance."""
        info = CODES[code]
        return Diagnostic(
            code=code,
            severity=info.severity,
            message=message,
            rule=info.rule,
            span=dependency.provenance if dependency is not None else None,
            hint=hint,
            fixes=fixes,
        )

    # -- cached structure ---------------------------------------------------

    def blocks(self) -> list[tuple[str, tuple[Dependency, ...]]]:
        """The three dependency blocks with their canonical names."""
        setting = self.setting
        return [
            ("sigma_st", setting.sigma_st),
            ("sigma_ts", setting.sigma_ts),
            ("sigma_t", setting.sigma_t),
        ]

    def marked(self):
        """Marked positions of the target schema (Definition 8), cached."""
        cached = getattr(self, "_marked", None)
        if cached is None:
            cached = marked_positions(
                [d for d in self.setting.sigma_st if isinstance(d, TGD)]
            )
            self._marked = cached
        return cached


# ---------------------------------------------------------------------------
# well-formedness
# ---------------------------------------------------------------------------


@_register("PDE005", "well-formedness")
def overlapping_schemas(ctx: RuleContext) -> Iterator[Diagnostic]:
    setting = ctx.setting
    shared = sorted(set(setting.source_schema.names()) & set(setting.target_schema.names()))
    for name in shared:
        yield ctx.diag(
            "PDE005",
            f"relation {name!r} is declared in both the source and the target "
            f"schema; PDE settings require disjoint schemas (Definition 1)",
            hint="rename one of the two relations",
        )


@_register("PDE004", "well-formedness")
def misplaced_dependency(ctx: RuleContext) -> Iterator[Diagnostic]:
    setting = ctx.setting
    for dependency in setting.sigma_st:
        if not isinstance(dependency, TGD):
            kind = "an egd" if isinstance(dependency, EGD) else "a disjunctive tgd"
            yield ctx.diag(
                "PDE004",
                f"Σ_st admits only plain tgds, but contains {kind}: {dependency}",
                dependency,
                hint="move egds to Σ_t; disjunction is only allowed in Σ_ts",
            )
    for dependency in setting.sigma_ts:
        if isinstance(dependency, EGD):
            yield ctx.diag(
                "PDE004",
                f"Σ_ts admits only (disjunctive) tgds, but contains an egd: "
                f"{dependency}",
                dependency,
                hint="egds belong in Σ_t",
            )
    for dependency in setting.sigma_t:
        if isinstance(dependency, DisjunctiveTGD):
            yield ctx.diag(
                "PDE004",
                f"Σ_t admits only tgds and egds, but contains a disjunctive "
                f"tgd: {dependency}",
                dependency,
                hint="disjunction is only allowed in Σ_ts",
            )


def _atom_side_diagnostics(
    ctx: RuleContext,
    dependency: Dependency,
    atoms,
    side: str,
    expected_name: str,
) -> Iterator[Diagnostic]:
    """Unknown-relation / wrong-side / arity checks for one side of a
    dependency.  ``expected_name`` is ``"source"`` or ``"target"``."""
    setting = ctx.setting
    expected = (
        setting.source_schema if expected_name == "source" else setting.target_schema
    )
    other = (
        setting.target_schema if expected_name == "source" else setting.source_schema
    )
    for atom in atoms:
        if atom.relation not in expected:
            if atom.relation in other:
                yield ctx.diag(
                    "PDE003",
                    f"the {side} of {dependency} uses relation {atom.relation!r}, "
                    f"which belongs to the {'target' if expected_name == 'source' else 'source'} "
                    f"schema (the {side} must be over the {expected_name} schema)",
                    dependency,
                    hint="swap the dependency into the block that reads/writes "
                    "the right peer, or fix the relation name",
                )
            else:
                yield ctx.diag(
                    "PDE001",
                    f"the {side} of {dependency} uses relation {atom.relation!r}, "
                    f"which is declared in neither schema",
                    dependency,
                    hint=f"declare {atom.relation!r} in the {expected_name} "
                    f"schema or fix the spelling",
                )
            continue
        declared = expected.arity_of(atom.relation)
        if atom.arity != declared:
            yield ctx.diag(
                "PDE002",
                f"atom {atom} in the {side} of {dependency} has "
                f"{atom.arity} arguments, but {atom.relation!r} is declared "
                f"with arity {declared}",
                dependency,
            )


@_register("PDE001", "well-formedness")
def schema_conformance(ctx: RuleContext) -> Iterator[Diagnostic]:
    """Unknown relations (PDE001), wrong-side relations (PDE003), and
    arity mismatches (PDE002) across all three blocks."""
    setting = ctx.setting
    for dependency in setting.sigma_st:
        if isinstance(dependency, TGD):
            yield from _atom_side_diagnostics(
                ctx, dependency, dependency.body, "body", "source"
            )
            yield from _atom_side_diagnostics(
                ctx, dependency, dependency.head, "head", "target"
            )
    for dependency in setting.sigma_ts:
        if isinstance(dependency, (TGD, DisjunctiveTGD)):
            yield from _atom_side_diagnostics(
                ctx, dependency, dependency.body, "body", "target"
            )
            heads = (
                dependency.head
                if isinstance(dependency, TGD)
                else [atom for disjunct in dependency.disjuncts for atom in disjunct]
            )
            yield from _atom_side_diagnostics(ctx, dependency, heads, "head", "source")
    for dependency in setting.sigma_t:
        if isinstance(dependency, (TGD, EGD)):
            yield from _atom_side_diagnostics(
                ctx, dependency, dependency.body, "body", "target"
            )
        if isinstance(dependency, TGD):
            yield from _atom_side_diagnostics(
                ctx, dependency, dependency.head, "head", "target"
            )


# ---------------------------------------------------------------------------
# complexity boundaries (Section 4, Definition 9)
# ---------------------------------------------------------------------------


@_register("PDE101", "boundary")
def target_egd(ctx: RuleContext) -> Iterator[Diagnostic]:
    for dependency in ctx.setting.target_egds():
        yield ctx.diag(
            "PDE101",
            f"Σ_t contains the egd {dependency}; C_tract (Definition 9) is "
            f"only defined for settings with Σ_t = ∅, and a target egd alone "
            f"already makes SOL(P) NP-hard (Section 4, first relaxation: "
            f"CLIQUE reduces to it)",
            dependency,
            hint="drop the egd or accept the NP valuation-search fallback",
        )


@_register("PDE102", "boundary")
def full_target_tgd(ctx: RuleContext) -> Iterator[Diagnostic]:
    for dependency in ctx.setting.target_tgds():
        if dependency.is_full():
            yield ctx.diag(
                "PDE102",
                f"Σ_t contains the full tgd {dependency}; a full target tgd "
                f"alone already makes SOL(P) NP-hard (Section 4, second "
                f"relaxation: CLIQUE reduces to it)",
                dependency,
                hint="drop the tgd or accept the NP valuation-search fallback",
            )


@_register("PDE103", "boundary")
def disjunctive_ts(ctx: RuleContext) -> Iterator[Diagnostic]:
    for dependency in ctx.setting.sigma_ts:
        if isinstance(dependency, DisjunctiveTGD):
            yield ctx.diag(
                "PDE103",
                f"Σ_ts contains the disjunctive tgd {dependency}; disjunction "
                f"in Σ_ts falls outside Definition 9 and makes SOL(P) NP-hard "
                f"(Section 4, third relaxation: 3-colorability reduces to it)",
                dependency,
                hint="split the disjunction into separate settings or accept "
                "the NP fallback",
            )


@_register("PDE107", "boundary")
def existential_target_tgd(ctx: RuleContext) -> Iterator[Diagnostic]:
    for dependency in ctx.setting.target_tgds():
        if not dependency.is_full():
            yield ctx.diag(
                "PDE107",
                f"Σ_t contains the existential tgd {dependency}; the solver "
                f"routes such settings to the branching chase (complete for "
                f"egds plus weakly acyclic target tgds, Theorem 1)",
                dependency,
            )


@_register("PDE104", "boundary")
def non_weakly_acyclic_target(ctx: RuleContext) -> Iterator[Diagnostic]:
    tgds = ctx.setting.target_tgds()
    if not tgds or is_weakly_acyclic(tgds):
        return
    culprit = next((d for d in tgds if not d.is_full()), tgds[0])
    yield ctx.diag(
        "PDE104",
        "the target tgds of Σ_t are not weakly acyclic (Definition 5): some "
        "special edge of the position graph lies on a cycle, so the chase "
        "has no polynomial termination guarantee (Lemma 1 does not apply) "
        "and the branching solver falls outside Theorem 1's completeness "
        "hypotheses",
        culprit,
        hint="break the cycle through the existential position, e.g. by "
        "splitting the relation; `repro.core.weak_acyclicity` shows the graph",
    )


@_register("PDE105", "boundary")
def marked_variable_repeated(ctx: RuleContext) -> Iterator[Diagnostic]:
    positions = ctx.marked()
    for dependency in ctx.setting.sigma_ts:
        if not isinstance(dependency, (TGD, DisjunctiveTGD)):
            continue
        marked = marked_variables(dependency, positions)
        for message in condition1_violations(dependency, marked):
            yield ctx.diag(
                "PDE105",
                f"{message} — condition 1 of Definition 9 fails, so the "
                f"setting is outside C_tract and SOL(P) loses its polynomial "
                f"guarantee",
                dependency,
                hint="a marked variable (one that may be bound to a labeled "
                "null) must occur at most once in a Σ_ts left-hand side",
            )


@_register("PDE106", "boundary")
def condition2_violated(ctx: RuleContext) -> Iterator[Diagnostic]:
    positions = ctx.marked()
    dependencies = [
        d for d in ctx.setting.sigma_ts if isinstance(d, (TGD, DisjunctiveTGD))
    ]
    failures_2_2: list[tuple[Dependency, str]] = []
    multi_literal = [d for d in dependencies if len(d.body) != 1]
    for dependency in dependencies:
        marked = marked_variables(dependency, positions)
        for message in condition2_2_violations(dependency, marked):
            failures_2_2.append((dependency, message))
    if not multi_literal or not failures_2_2:
        return  # condition 2.1 or 2.2 holds; condition 2 is satisfied
    for dependency, message in failures_2_2:
        yield ctx.diag(
            "PDE106",
            f"{message} — and some Σ_ts left-hand side has more than one "
            f"literal, so neither condition 2.1 nor 2.2 of Definition 9 "
            f"holds and the setting is outside C_tract",
            dependency,
            hint="either reduce every Σ_ts lhs to a single literal (2.1) or "
            "make co-occurring marked variables body-adjacent or body-absent "
            "(2.2)",
        )
    for dependency in multi_literal:
        yield ctx.diag(
            "PDE106",
            f"condition 2.1: the left-hand side of {dependency} has "
            f"{len(dependency.body)} literals (a single literal is required), "
            f"and condition 2.2 fails elsewhere in Σ_ts, so condition 2 of "
            f"Definition 9 does not hold",
            dependency,
        )


# ---------------------------------------------------------------------------
# hygiene
# ---------------------------------------------------------------------------


@_register("PDE201", "hygiene")
def duplicate_dependency(ctx: RuleContext) -> Iterator[Diagnostic]:
    for block, dependencies in ctx.blocks():
        first_seen: dict[Dependency, int] = {}
        for index, dependency in enumerate(dependencies):
            if dependency in first_seen:
                yield ctx.diag(
                    "PDE201",
                    f"{block}[{index}] repeats {block}[{first_seen[dependency]}]: "
                    f"{dependency}",
                    dependency,
                    hint="delete the duplicate",
                    fixes=(
                        Fix(
                            f"delete the duplicate at {block}[{index}]",
                            (JsonEdit("remove", (block, index)),),
                        ),
                    ),
                )
            else:
                first_seen[dependency] = index


def _tgd_implies(premise: TGD, conclusion: TGD) -> bool:
    """Chase-based logical implication test: does ``premise ⊨ conclusion``?

    Freeze the conclusion's body into its canonical instance, chase with the
    premise, and check that the conclusion's head (frontier frozen, existentials
    free) maps in.  A bounded chase keeps the test safe on pathological input
    (an overrun conservatively reports "not implied").
    """
    frozen = {
        variable: Constant(f"?{variable.name}")
        for variable in conclusion.body_variables()
    }
    canonical = Instance()
    for atom in conclusion.body:
        canonical.add(atom.substitute(frozen).to_fact())  # type: ignore[arg-type]
    try:
        chased = chase(canonical, [premise], max_steps=200)
    except (ChaseFailure, ChaseNonTermination):
        return False
    bound = {
        variable: frozen[variable] for variable in conclusion.frontier_variables()
    }
    head = [atom.substitute(bound) for atom in conclusion.head]
    return has_homomorphism(head, chased.instance)


@_register("PDE202", "hygiene")
def subsumed_dependency(ctx: RuleContext) -> Iterator[Diagnostic]:
    for block, dependencies in ctx.blocks():
        tgds = [
            (index, d) for index, d in enumerate(dependencies) if isinstance(d, TGD)
        ]
        for index, conclusion in tgds:
            for other_index, premise in tgds:
                if other_index == index or premise == conclusion:
                    continue
                if _tgd_implies(premise, conclusion):
                    yield ctx.diag(
                        "PDE202",
                        f"{block}[{index}] ({conclusion}) is implied by "
                        f"{block}[{other_index}] ({premise}) and never adds "
                        f"facts of its own",
                        conclusion,
                        hint="drop the subsumed tgd",
                    )
                    break  # one subsumer is enough; avoid O(n) repeats


def _mentioned_relations(dependency: Dependency) -> set[str]:
    mentioned = {atom.relation for atom in dependency.body}
    if isinstance(dependency, TGD):
        mentioned |= {atom.relation for atom in dependency.head}
    elif isinstance(dependency, DisjunctiveTGD):
        for disjunct in dependency.disjuncts:
            mentioned |= {atom.relation for atom in disjunct}
    return mentioned


@_register("PDE203", "hygiene")
def unused_relation(ctx: RuleContext) -> Iterator[Diagnostic]:
    setting = ctx.setting
    used: set[str] = set()
    for dependency in setting.all_dependencies():
        used |= _mentioned_relations(dependency)
    for schema_name, schema in (
        ("source", setting.source_schema),
        ("target", setting.target_schema),
    ):
        for relation in schema:
            if relation.name not in used:
                yield ctx.diag(
                    "PDE203",
                    f"{schema_name} relation {relation} appears in no "
                    f"dependency; it never participates in the exchange",
                    hint="remove the declaration, or add the missing "
                    "dependency",
                    fixes=(
                        Fix(
                            f"remove the unused {schema_name} relation "
                            f"{relation.name!r}",
                            (JsonEdit("remove", (schema_name, relation.name)),),
                        ),
                    ),
                )


@_register("PDE204", "hygiene")
def dead_rule(ctx: RuleContext) -> Iterator[Diagnostic]:
    setting = ctx.setting
    writable: set[str] = set()
    for dependency in setting.sigma_st:
        if isinstance(dependency, TGD):
            writable |= {atom.relation for atom in dependency.head}
    for dependency in setting.target_tgds():
        writable |= {atom.relation for atom in dependency.head}
    for block, dependencies in (
        ("sigma_ts", setting.sigma_ts),
        ("sigma_t", setting.sigma_t),
    ):
        for dependency in dependencies:
            unwritten = sorted(
                {
                    atom.relation
                    for atom in dependency.body
                    if atom.relation in setting.target_schema
                    and atom.relation not in writable
                }
            )
            if unwritten:
                rendered = ", ".join(repr(name) for name in unwritten)
                yield ctx.diag(
                    "PDE204",
                    f"{block} dependency {dependency} reads target relation(s) "
                    f"{rendered} that no tgd head ever writes; it can only "
                    f"fire on facts preloaded in the target instance J",
                    dependency,
                    hint="if that is intended, suppress PDE204 via lint_ignore",
                )
