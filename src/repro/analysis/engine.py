"""The analysis engine: run the lint rules, produce an :class:`AnalysisReport`.

Three entry points, by input kind:

* :func:`analyze` — a constructed :class:`~repro.core.setting.PDESetting`;
* :func:`analyze_dict` / :func:`analyze_text` — raw JSON, so that settings
  too malformed to construct still yield diagnostics (``PDE000``/``PDE006``)
  instead of exceptions; honors the optional ``lint_ignore`` key of setting
  files (a list of codes to suppress — the inline annotation form used to
  ship known-NP-hard example settings without failing CI);
* :func:`dispatch_explanation` — a cheap boundary-rules-only pass the
  solver dispatcher uses to explain *why* it fell back to an NP procedure.
"""

from __future__ import annotations

import json
from typing import Any, Iterable

from repro.analysis.codes import CODES, ERROR
from repro.analysis.diagnostics import AnalysisReport, Diagnostic
from repro.analysis.rules import RuleContext, rules_for
from repro.core.setting import PDESetting
from repro.exceptions import DependencyError, ParseError, ReproError, SchemaError
from repro.io.serialization import setting_from_dict

__all__ = [
    "analyze",
    "analyze_dict",
    "analyze_text",
    "dispatch_explanation",
    "expand_ignore",
]


def expand_ignore(value: Any) -> set[str]:
    """Normalize an ignore declaration into a set of codes.

    Accepts a single code (``"PDE101"``), the comma-separated shorthand
    (``"PDE101,PDE203"`` — what CI passes to ``lint --ignore``), or any
    iterable of either form.  Whitespace around commas is forgiven; empty
    fragments are dropped.
    """
    if value is None:
        return set()
    if isinstance(value, str):
        value = (value,)
    codes: set[str] = set()
    for entry in value:
        for fragment in str(entry).split(","):
            fragment = fragment.strip()
            if fragment:
                codes.add(fragment)
    return codes


def analyze(
    setting: PDESetting,
    ignore: Iterable[str] = (),
    categories: Iterable[str] | None = None,
) -> AnalysisReport:
    """Run the lint rules over ``setting`` and return the report.

    Args:
        setting: the setting to analyze; may have been built with
            ``validate=False`` — the well-formedness rules then report the
            breakage as diagnostics.
        ignore: diagnostic codes to suppress (recorded in the report).
        categories: restrict to rule categories (``"well-formedness"``,
            ``"boundary"``, ``"hygiene"``); None runs everything.
    """
    context = RuleContext(setting)
    diagnostics: list[Diagnostic] = []
    for rule in rules_for(categories):
        diagnostics.extend(rule.check(context))
    return AnalysisReport.build(setting.name, diagnostics, ignore=ignore)


def _load_failure(message: str, ignore: Iterable[str] = ()) -> AnalysisReport:
    return AnalysisReport.build(
        "",
        [Diagnostic("PDE000", ERROR, message, rule=CODES["PDE000"].rule)],
        ignore=ignore,
    )


def analyze_dict(
    encoded: dict[str, Any], ignore: Iterable[str] = ()
) -> AnalysisReport:
    """Analyze a JSON-decoded setting dict, diagnosing construction failures.

    The setting is built with ``validate=False`` so rule-level diagnostics
    cover schema mismatches; failures that prevent construction entirely
    (unparsable dependency text, structurally impossible dependencies)
    become ``PDE000``/``PDE006`` diagnostics.  Codes listed under the
    dict's ``lint_ignore`` key are suppressed in addition to ``ignore``.
    """
    # "lint_ignore": "PDE101,PDE203" — the comma shorthand and the plain
    # list are both accepted, here and from ``lint --ignore``.
    ignore = expand_ignore(ignore) | expand_ignore(encoded.get("lint_ignore", ()))
    try:
        setting = setting_from_dict(encoded, validate=False)
    except ParseError as error:
        return _load_failure(f"unparsable dependency: {error}", ignore)
    except DependencyError as error:
        if "egd equates variable" in str(error):
            return AnalysisReport.build(
                encoded.get("name", ""),
                [
                    Diagnostic(
                        "PDE006",
                        ERROR,
                        str(error),
                        rule=CODES["PDE006"].rule,
                        hint="every equated variable must occur in the egd body",
                    )
                ],
                ignore=ignore,
            )
        return _load_failure(f"malformed dependency: {error}", ignore)
    except (SchemaError, ReproError) as error:
        return _load_failure(f"malformed setting: {error}", ignore)
    except (KeyError, TypeError, ValueError) as error:
        return _load_failure(
            f"malformed setting file: {type(error).__name__}: {error}", ignore
        )
    return analyze(setting, ignore=ignore)


def analyze_text(text: str, ignore: Iterable[str] = ()) -> AnalysisReport:
    """Analyze a setting given as JSON text (the on-disk format)."""
    try:
        encoded = json.loads(text)
    except json.JSONDecodeError as error:
        return _load_failure(f"invalid JSON: {error}", ignore)
    if not isinstance(encoded, dict):
        return _load_failure(
            f"a setting file must hold a JSON object, got {type(encoded).__name__}",
            ignore,
        )
    return analyze_dict(encoded, ignore=ignore)


def dispatch_explanation(setting: PDESetting, in_ctract: bool | None = None) -> str:
    """One line explaining the solver dispatch decision, quoting lint codes.

    Runs only the cheap boundary rules.  Callers that already classified the
    setting pass ``in_ctract`` to skip the recomputation.
    """
    if in_ctract is None:
        from repro.tractability.classifier import is_in_ctract

        in_ctract = is_in_ctract(setting)
    if in_ctract:
        return (
            "setting is in C_tract (Definition 9); the polynomial "
            "ExistsSolution algorithm (Figure 3) applies"
        )
    report = analyze(setting, categories=("boundary",))
    if report.clean:
        # Outside C_tract with no boundary finding should not happen; keep
        # the explanation honest if a future rule gap opens one.
        return "setting is outside C_tract (no boundary diagnostic; see classify())"
    counts: dict[str, int] = {}
    for diagnostic in report:
        counts[diagnostic.code] = counts.get(diagnostic.code, 0) + 1
    rendered = ", ".join(
        f"{code} [{CODES[code].rule}] x{counts[code]}" for code in report.codes()
    )
    return f"setting is outside C_tract: {rendered}; falling back to an NP procedure"
