"""Static analysis ("setting lint") for peer data exchange settings.

The paper's tractability story is static: whether the polynomial
``ExistsSolution`` algorithm applies is decided by inspecting the
dependencies alone — marked variables (Definition 9), weak acyclicity
(Theorems 1–2), and the three NP-hard relaxations of Section 4 — before
any instance is seen.  This package turns those inspections into a
rule-based diagnostics engine with stable codes (``PDE001``...),
severities, source spans, and fix hints, exposed three ways:

* the library API: :func:`analyze`, returning an :class:`AnalysisReport`;
* the CLI: ``python -m repro.cli lint setting.json --format text|json``
  with CI exit codes (0 clean / 1 warnings / 2 errors);
* the solver hook: :func:`dispatch_explanation`, quoted in
  ``solve()``'s stats and errors to explain NP fallbacks.

See :mod:`repro.analysis.codes` for the full code table.
"""

from repro.analysis.codes import CODES, CodeInfo, ERROR, INFO, WARNING
from repro.analysis.diagnostics import AnalysisReport, Diagnostic
from repro.analysis.engine import (
    analyze,
    analyze_dict,
    analyze_text,
    dispatch_explanation,
)
from repro.analysis.render import LintRun, render_json, render_text
from repro.analysis.rules import RULES, Rule, RuleContext

__all__ = [
    "AnalysisReport",
    "CODES",
    "CodeInfo",
    "Diagnostic",
    "ERROR",
    "INFO",
    "LintRun",
    "RULES",
    "Rule",
    "RuleContext",
    "WARNING",
    "analyze",
    "analyze_dict",
    "analyze_text",
    "dispatch_explanation",
    "render_json",
    "render_text",
]
