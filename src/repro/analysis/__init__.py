"""Static analysis ("setting lint") for peer data exchange settings.

The paper's tractability story is static: whether the polynomial
``ExistsSolution`` algorithm applies is decided by inspecting the
dependencies alone — marked variables (Definition 9), weak acyclicity
(Theorems 1–2), and the three NP-hard relaxations of Section 4 — before
any instance is seen.  This package turns those inspections into a
rule-based diagnostics engine with stable codes (``PDE001``...),
severities, source spans, and fix hints, exposed three ways:

* the library API: :func:`analyze`, returning an :class:`AnalysisReport`;
* the CLI: ``python -m repro.cli lint setting.json --format text|json``
  with CI exit codes (0 clean / 1 warnings / 2 errors);
* the solver hook: :func:`dispatch_explanation`, quoted in
  ``solve()``'s stats and errors to explain NP fallbacks.

Beyond settings, the same engine statically analyzes network
*scenarios*: :func:`analyze_scenario` (see :mod:`repro.analysis.netlint`)
abstractly interprets a :class:`~repro.net.Scenario`'s timeline and
reports schedule mistakes (``PDE3xx``) and multi-publisher merge
ambiguities (``PDE4xx``) before a single virtual second is simulated —
``simulate --lint`` runs it as a pre-flight check.  Findings with an
obvious remedy carry machine-applicable fixes (:class:`Fix`), which
``lint --fix`` applies to the file via :func:`apply_fixes`.

See :mod:`repro.analysis.codes` for the full code table.
"""

from repro.analysis.codes import CODES, CodeInfo, ERROR, INFO, WARNING
from repro.analysis.diagnostics import AnalysisReport, Diagnostic
from repro.analysis.engine import (
    analyze,
    analyze_dict,
    analyze_text,
    dispatch_explanation,
    expand_ignore,
)
from repro.analysis.fixes import Fix, JsonEdit, SpanEdit, apply_fixes, fix_diff
from repro.analysis.netlint import (
    analyze_scenario,
    analyze_scenario_dict,
    analyze_scenario_text,
)
from repro.analysis.render import LintRun, render_json, render_text
from repro.analysis.rules import RULES, Rule, RuleContext

__all__ = [
    "AnalysisReport",
    "CODES",
    "CodeInfo",
    "Diagnostic",
    "ERROR",
    "Fix",
    "INFO",
    "JsonEdit",
    "LintRun",
    "RULES",
    "Rule",
    "RuleContext",
    "SpanEdit",
    "WARNING",
    "analyze",
    "analyze_dict",
    "analyze_scenario",
    "analyze_scenario_dict",
    "analyze_scenario_text",
    "analyze_text",
    "apply_fixes",
    "dispatch_explanation",
    "expand_ignore",
    "fix_diff",
    "render_json",
    "render_text",
]
