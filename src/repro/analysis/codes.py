"""The stable diagnostic code table of the setting linter.

Codes are grouped by hundreds band:

* ``PDE0xx`` — well-formedness errors: the setting is not a legal PDE
  setting at all (Definitions 1 and 2 do not apply).
* ``PDE1xx`` — complexity-boundary findings: the setting is legal but
  falls outside the tractable class ``C_tract`` (Definition 9), so
  ``SOL(P)`` is (or may be) NP-hard and the solver must fall back to the
  NP procedures.  Each of the three Section 4 relaxations has its own
  code, as do the two Definition 9 condition failures.
* ``PDE2xx`` — hygiene: the setting works, but carries dead weight
  (duplicate, subsumed, or unfireable dependencies; unused relations).
* ``PDE3xx`` — scenario-timeline findings from the abstract interpreter
  of :mod:`repro.analysis.netlint`: partitions that never heal, crashes
  without restarts, statically dead links, reorder windows that cannot
  overtake a publish, delta chains guaranteed to break.  Errors in this
  band mean the simulation either raises at runtime or proves nothing
  (vacuous convergence); ``simulate --lint`` refuses to run them.
* ``PDE4xx`` — merge-ambiguity findings over multi-publisher scenarios,
  grounded in the Bertossi–Bravo trust semantics: equal stamps from
  different publishers must resolve by a declared trust order, with a
  repair-style fallback when target egds make conflicts possible.

Codes are append-only: once released, a code keeps its meaning forever so
CI suppressions (``lint_ignore``) and tooling stay stable across versions.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CodeInfo", "CODES", "ERROR", "WARNING", "INFO", "SEVERITY_RANK"]

#: Severity levels, ordered from worst to mildest.
ERROR = "error"
WARNING = "warning"
INFO = "info"

#: Rank for sorting and exit-code computation (lower = more severe).
SEVERITY_RANK = {ERROR: 0, WARNING: 1, INFO: 2}


@dataclass(frozen=True)
class CodeInfo:
    """One row of the diagnostic code table."""

    code: str
    rule: str
    severity: str
    summary: str


def _table(rows: list[tuple[str, str, str, str]]) -> dict[str, CodeInfo]:
    table = {}
    for code, rule, severity, summary in rows:
        if code in table:
            raise ValueError(f"duplicate diagnostic code {code}")
        table[code] = CodeInfo(code, rule, severity, summary)
    return table


#: Every diagnostic code the engine can emit, keyed by code.
CODES: dict[str, CodeInfo] = _table([
    # -- well-formedness (errors) -----------------------------------------
    ("PDE000", "load-failure", ERROR,
     "the setting file could not be parsed or decoded"),
    ("PDE001", "unknown-relation", ERROR,
     "an atom uses a relation that is in neither schema"),
    ("PDE002", "arity-mismatch", ERROR,
     "an atom's argument count differs from the declared arity"),
    ("PDE003", "wrong-side-relation", ERROR,
     "a dependency reads or writes a relation of the wrong peer "
     "(e.g. a Σ_st head over a source relation)"),
    ("PDE004", "misplaced-dependency", ERROR,
     "a dependency kind is not allowed in its block "
     "(egd outside Σ_t, disjunction outside Σ_ts)"),
    ("PDE005", "overlapping-schemas", ERROR,
     "source and target schemas share a relation name"),
    ("PDE006", "unsafe-egd", ERROR,
     "an egd equates a variable that does not occur in its body"),
    # -- complexity boundaries (warnings / info) --------------------------
    ("PDE101", "target-egd", WARNING,
     "Σ_t contains an egd — the first Section 4 relaxation; "
     "SOL(P) is NP-hard (CLIQUE reduction)"),
    ("PDE102", "full-target-tgd", WARNING,
     "Σ_t contains a full tgd — the second Section 4 relaxation; "
     "SOL(P) is NP-hard (CLIQUE reduction)"),
    ("PDE103", "disjunctive-ts", WARNING,
     "Σ_ts contains a disjunctive tgd — the third Section 4 relaxation; "
     "SOL(P) is NP-hard (3-colorability reduction)"),
    ("PDE104", "non-weakly-acyclic-target", WARNING,
     "the target tgds are not weakly acyclic — outside the hypotheses of "
     "Theorems 1 and 2; the chase may not terminate"),
    ("PDE105", "marked-variable-repeated", WARNING,
     "condition 1 of Definition 9 fails: a marked variable repeats in a "
     "Σ_ts left-hand side"),
    ("PDE106", "condition2-violated", WARNING,
     "condition 2 of Definition 9 fails: neither 2.1 (single-literal lhs) "
     "nor 2.2 (marked co-occurrence) holds"),
    ("PDE107", "existential-target-tgd", INFO,
     "Σ_t contains an existential tgd — the solver routes to the "
     "branching chase (Theorem 1 territory)"),
    # -- hygiene (warnings / info) ----------------------------------------
    ("PDE201", "duplicate-dependency", WARNING,
     "the same dependency appears more than once in a block"),
    ("PDE202", "subsumed-dependency", INFO,
     "a tgd is logically implied by another dependency in its block"),
    ("PDE203", "unused-relation", INFO,
     "a declared relation appears in no dependency"),
    ("PDE204", "dead-rule", INFO,
     "a dependency reads a target relation that no tgd head writes, so it "
     "can only fire on facts preloaded in the target instance J"),
    # -- scenario timeline (abstract interpreter) -------------------------
    ("PDE301", "unhealed-partition", WARNING,
     "a partition is still active at the end of the timeline; the isolated "
     "peers are excluded from the convergence check"),
    ("PDE302", "crash-without-restart", WARNING,
     "a peer is still crashed at the end of the timeline and is excluded "
     "from the convergence check"),
    ("PDE303", "invalid-lifecycle", ERROR,
     "the crash/restart schedule is impossible (restart of a live peer, or "
     "crash of an already-crashed peer); the simulator raises at runtime"),
    ("PDE304", "vacuous-convergence", ERROR,
     "no peer is reachable at quiescence, so the convergence check is "
     "vacuous and the simulation proves nothing"),
    ("PDE305", "dead-link", WARNING,
     "a publisher link drops every delivery; the subscriber statically "
     "receives nothing and converges only through post-run anti-entropy"),
    ("PDE306", "isolated-epoch-bump", WARNING,
     "the publisher bumps its epoch while partitioned from every peer; the "
     "re-baselined publishes are all dropped at send"),
    ("PDE307", "reorder-noop", INFO,
     "reorder faults are scheduled but the reorder delay does not exceed "
     "the publish interval, so no message can overtake the next publish"),
    ("PDE308", "delta-chain-doomed", WARNING,
     "in delta mode the crash/partition schedule guarantees a broken delta "
     "chain: a peer provably misses a publish, so every later delta it "
     "receives arrives chain-broken and falls back to a full snapshot"),
    ("PDE310", "relay-unreachable", WARNING,
     "after the timeline's surviving faults a peer has no live relay path "
     "from the publisher; it is excluded from the convergence check"),
    ("PDE311", "relay-cycle", WARNING,
     "the relay topology contains a directed cycle; stamp watermarks make "
     "re-forwarding idempotent so the loop terminates, but every lap "
     "spends wire traffic on deliveries that arrive stale"),
    ("PDE312", "custody-gap", ERROR,
     "custody restrictions leave a peer with no relay path that carries "
     "the publisher's feed even on the fault-free topology, so the peer "
     "can never receive a publish and convergence is impossible"),
    # -- merge ambiguity (multi-publisher) --------------------------------
    ("PDE401", "ambiguous-merge", ERROR,
     "two publishers could issue equal stamps for conflicting facts and no "
     "trust order is declared; the merge is ambiguous"),
    ("PDE402", "incomplete-trust-order", ERROR,
     "the declared trust order does not rank every publisher exactly once, "
     "or ranks a name that is not a publisher"),
    ("PDE403", "merge-without-repair", WARNING,
     "target egds make conflicting facts possible across publishers, and "
     "no repair rule is declared as the trust-order fallback"),
    ("PDE404", "trust-unused", INFO,
     "a trust order or repair rule is declared but the scenario has a "
     "single publisher; the declaration is dead"),
    ("PDE405", "unknown-repair-rule", ERROR,
     "the declared repair rule is not one the merge semantics define"),
])
