"""Static analysis of network scenarios: the timeline abstract interpreter.

Where :mod:`repro.analysis.rules` lints the *setting* a peer network
syncs under, this module lints the *scenario* itself — the scripted
timeline of publishes, faults, and control events the
:class:`~repro.net.NetworkSimulator` will execute.  Instead of running
the simulation, :func:`analyze_scenario` symbolically executes the
merged (publish, control-event) timeline against an abstract per-peer
state and reports, before a single virtual second elapses, the schedule
mistakes that would make the run raise, prove nothing, or silently
exercise none of the machinery it was written to exercise.

The interpreter mirrors the simulator's semantics exactly where they
matter for soundness:

* simultaneous timeline entries tie-break control events before
  publishes (the simulator's ``_CONTROL < _PUBLISH`` ranks), and within
  a kind preserve list order;
* partitions drop at *send* time with the implicit remainder group of
  :meth:`repro.net.SimTransport.connected`; crashes drop at *delivery*
  time, so a crashed peer only *certainly* misses a publish when it
  stays down past the latest possible delivery (base latency plus
  whatever reorder / delay / duplicate lag the link's fault schedule
  could add);
* anti-entropy is reliable, so a lossy-but-connected link is a hygiene
  finding (``PDE305``), while a peer unreachable at quiescence makes the
  convergence check vacuous (``PDE304``) — an error, because the run
  would "pass" while verifying nothing;
* scenarios with a declared relay ``topology`` are judged path-wise: the
  reachability behind ``PDE304`` walks the relay graph exactly as
  :meth:`repro.net.NetworkSimulator._reachable_set` does, a live peer
  severed from every relay route is ``PDE310``, a directed relay cycle
  is ``PDE311`` (safe under stamp watermarks, but each lap is wasted
  wire traffic), and a custody assignment that statically starves a peer
  of the publisher's feed is ``PDE312`` — an error, since no amount of
  healing can deliver a feed no path carries.  Star-only arguments
  (``PDE307``'s overtake window and ``PDE308``'s certain-miss chain
  dooming) assume the publisher is adjacent and are skipped for relay
  topologies.

Timeline findings are the ``PDE3xx`` band; the ``PDE4xx`` band checks
the declarative multi-publisher merge contract (``co_publishers`` /
``trust`` / ``repair``) against the trust-ordered merge semantics of
Bertossi–Bravo and the Exchange-Repair rules of ten Cate et al.:
two publishers that can issue equal stamps for conflicting facts need a
declared trust order, and a merge under target egds needs a declared
repair rule.

Rules with an obvious remedy attach machine-applicable
:class:`~repro.analysis.fixes.Fix` values (``lint --fix`` applies them
to scenario JSON files).
"""

from __future__ import annotations

import json
from dataclasses import replace
from typing import Any, Iterable, Mapping

from repro.analysis.codes import CODES, ERROR, INFO, WARNING
from repro.analysis.diagnostics import AnalysisReport, Diagnostic
from repro.analysis.engine import analyze, expand_ignore
from repro.analysis.fixes import Fix, JsonEdit
from repro.exceptions import ReproError
from repro.net.scenario_io import scenario_from_dict
from repro.net.scenarios import (
    REPAIR_RULES,
    BumpEpoch,
    Crash,
    Heal,
    Partition,
    Restart,
    Scenario,
)
from repro.runtime.faults import FaultSchedule

__all__ = [
    "analyze_scenario",
    "analyze_scenario_dict",
    "analyze_scenario_text",
]


def _diag(
    code: str,
    severity: str,
    message: str,
    hint: str = "",
    fixes: tuple[Fix, ...] = (),
) -> Diagnostic:
    return Diagnostic(
        code, severity, message, rule=CODES[code].rule, hint=hint, fixes=fixes
    )


# ---------------------------------------------------------------------------
# fault-schedule predicates (abstract view of FaultSchedule.decide)
# ---------------------------------------------------------------------------


def _always_drops(schedule: FaultSchedule | None) -> bool:
    """Every send on this link is dropped, for any message index."""
    return schedule is not None and schedule.drop_rate >= 1.0


def _may_reorder(schedule: FaultSchedule | None) -> bool:
    return schedule is not None and (
        schedule.reorder_rate > 0 or bool(schedule.reorder)
    )


def _may_duplicate(schedule: FaultSchedule | None) -> bool:
    return schedule is not None and (
        schedule.duplicate_rate > 0 or bool(schedule.duplicate)
    )


def _may_delay(schedule: FaultSchedule | None) -> bool:
    return schedule is not None and (
        schedule.delay_rate > 0 or bool(schedule.delay)
    )


def _may_drop(schedule: FaultSchedule | None) -> bool:
    return schedule is not None and (
        schedule.drop_rate > 0 or bool(schedule.drop)
    )


def _fault_free(schedule: FaultSchedule | None) -> bool:
    """No fault of any class can occur on this link."""
    return not (
        _may_drop(schedule)
        or _may_duplicate(schedule)
        or _may_reorder(schedule)
        or _may_delay(schedule)
    )


def _connected(
    groups: tuple[frozenset[str], ...] | None, a: str, b: str
) -> bool:
    """Mirror of :meth:`repro.net.SimTransport.connected`."""
    if groups is None or a == b:
        return True
    group_of_a = group_of_b = None
    for group in groups:
        if a in group:
            group_of_a = group
        if b in group:
            group_of_b = group
    # Unnamed peers share the implicit remainder group (both None).
    return group_of_a is group_of_b


# ---------------------------------------------------------------------------
# relay-topology predicates (PDE31x)
# ---------------------------------------------------------------------------


def _relay_cycle(scenario: Scenario) -> tuple[str, ...] | None:
    """A directed cycle in the declared topology (closed path), or None."""
    adjacency: dict[str, list[str]] = {}
    for link in scenario.topology:
        adjacency.setdefault(link.sender, []).append(link.recipient)
    state: dict[str, int] = {}  # 0 unvisited, 1 on path, 2 done
    path: list[str] = []

    def visit(node: str) -> tuple[str, ...] | None:
        state[node] = 1
        path.append(node)
        for succ in sorted(adjacency.get(node, ())):
            if state.get(succ, 0) == 1:
                return tuple(path[path.index(succ):]) + (succ,)
            if state.get(succ, 0) == 0:
                cycle = visit(succ)
                if cycle is not None:
                    return cycle
        path.pop()
        state[node] = 2
        return None

    for name in sorted(adjacency):
        if state.get(name, 0) == 0:
            cycle = visit(name)
            if cycle is not None:
                return cycle
    return None


def _relay_reachable(
    scenario: Scenario,
    crashed: Iterable[str],
    groups: tuple[frozenset[str], ...] | None,
) -> set[str]:
    """Peers a custody-carrying live path connects to the publisher.

    Mirror of :meth:`repro.net.NetworkSimulator._reachable_set` under the
    abstract end-of-timeline state: an edge is traversable when it
    carries the publisher's feed, its recipient is not crashed, and the
    surviving partition (if any) does not sever its ends.  With
    ``crashed=()`` and ``groups=None`` this is the *fault-free* custody
    reachability the PDE312 rule checks.
    """
    feed = scenario.publisher
    down = set(crashed)
    seen = {feed}
    frontier = [feed]
    while frontier:
        current = frontier.pop(0)
        for link in scenario.downstream(current, feed):
            nxt = link.recipient
            if nxt in seen or nxt in down or not _connected(groups, current, nxt):
                continue
            seen.add(nxt)
            frontier.append(nxt)
    seen.discard(feed)
    return seen


# ---------------------------------------------------------------------------
# the timeline interpreter (PDE3xx)
# ---------------------------------------------------------------------------

#: Tie-break ranks matching the simulator's timeline heap.
_CONTROL, _PUBLISH = 0, 1


def _latest_delivery(
    at: float,
    schedule: FaultSchedule | None,
    latency: float,
    reorder_delay: float,
) -> float:
    """Latest virtual time any copy of a message sent at ``at`` can arrive.

    Base latency, plus the reorder penalty, scheduled delay, and the
    duplicate's retransmit lag (``latency / 2``) whenever the link's
    schedule could apply them.  A peer crashed through this whole window
    has *certainly* missed the message: every delivery attempt hits a
    crashed node and is dropped.
    """
    latest = at + latency
    if _may_reorder(schedule):
        latest += reorder_delay
    if _may_delay(schedule):
        latest += schedule.max_delay
    if _may_duplicate(schedule):
        latest += latency / 2
    return latest


def _timeline_rules(scenario: Scenario, deltas: bool) -> list[Diagnostic]:
    """Abstractly interpret the scenario timeline; emit PDE3xx findings."""
    diagnostics: list[Diagnostic] = []
    publisher = scenario.publisher
    peers = list(scenario.peers)
    topology = bool(scenario.topology)
    latency = scenario.latency
    interval = scenario.interval
    reorder_delay = (
        scenario.reorder_delay
        if scenario.reorder_delay is not None
        else 4 * latency
    )
    n_publishes = len(scenario.snapshots)

    # Restart times per peer, for the crash certain-miss window.  Invalid
    # restarts (PDE303) never take effect at runtime, but including them
    # here only makes the miss analysis more conservative.
    restart_times: dict[str, list[float]] = {peer: [] for peer in peers}
    for event in scenario.events:
        if isinstance(event, Restart) and event.peer in restart_times:
            restart_times[event.peer].append(event.at)
    for times in restart_times.values():
        times.sort()

    # Merged timeline, with the simulator's tie-breaks: at equal time a
    # control event applies before a publish; within a kind, list order.
    entries: list[tuple[float, int, int, Any]] = [
        (index * interval, _PUBLISH, index, index)
        for index in range(n_publishes)
    ]
    entries.extend(
        (event.at, _CONTROL, order, event)
        for order, event in enumerate(scenario.events)
    )
    entries.sort(key=lambda entry: (entry[0], entry[1], entry[2]))

    # Abstract state.
    groups: tuple[frozenset[str], ...] | None = None
    partition_since: float | None = None
    crashed: dict[str, float] = {}
    pending_bump: float | None = None
    epoch_starts: set[int] = {0}
    certain_missed: dict[str, set[int]] = {peer: set() for peer in peers}

    for at, kind, _order, payload in entries:
        if kind == _CONTROL:
            event = payload
            if isinstance(event, Partition):
                groups = event.groups
                partition_since = at
            elif isinstance(event, Heal):
                groups = None
                partition_since = None
            elif isinstance(event, Crash):
                if event.peer in crashed:
                    diagnostics.append(
                        _diag(
                            "PDE303",
                            ERROR,
                            f"Crash(at={event.at}, peer={event.peer!r}) hits a "
                            f"peer already crashed at t={crashed[event.peer]}; "
                            "the simulator raises SimulationError here",
                            hint="restart the peer before crashing it again",
                        )
                    )
                else:
                    crashed[event.peer] = at
            elif isinstance(event, Restart):
                if event.peer not in crashed:
                    diagnostics.append(
                        _diag(
                            "PDE303",
                            ERROR,
                            f"Restart(at={event.at}, peer={event.peer!r}) hits "
                            "a peer that is not crashed; the simulator raises "
                            "SimulationError here",
                            hint="crash the peer first, or drop the restart",
                        )
                    )
                else:
                    del crashed[event.peer]
            elif isinstance(event, BumpEpoch):
                pending_bump = at
            continue

        # A publish.
        index = payload
        if pending_bump is not None:
            epoch_starts.add(index)
            first_hop = [
                link.recipient
                for link in scenario.downstream(publisher, publisher)
            ]
            if first_hop and all(
                not _connected(groups, publisher, peer) for peer in first_hop
            ):
                diagnostics.append(
                    _diag(
                        "PDE306",
                        WARNING,
                        f"epoch bumped at t={pending_bump} but at the next "
                        f"publish (t={at}) the publisher is partitioned from "
                        "every peer it feeds directly: the re-baselining full "
                        "snapshot reaches nobody",
                        hint="heal the partition before the first "
                        "post-bump publish",
                    )
                )
            pending_bump = None
        if topology:
            # Certain-miss tracking feeds PDE308, whose soundness argument
            # assumes the publisher is adjacent; relay hops are repaired
            # by the relays' own full-snapshot forwards instead.
            continue
        for peer in peers:
            schedule = scenario.faults.get((publisher, peer))
            if not _connected(groups, publisher, peer):
                # Partition refuses at send time: no copy ever exists.
                certain_missed[peer].add(index)
            elif _always_drops(schedule):
                certain_missed[peer].add(index)
            elif peer in crashed:
                latest = _latest_delivery(at, schedule, latency, reorder_delay)
                next_restart = next(
                    (t for t in restart_times[peer] if t > at), None
                )
                if next_restart is None or next_restart > latest:
                    # Down past every possible delivery instant (a restart
                    # exactly at delivery time wins the control-first
                    # tie-break, hence the strict comparison).
                    certain_missed[peer].add(index)

    # ---- end-of-timeline checks -------------------------------------------
    end = max(entry[0] for entry in entries) if entries else 0.0
    horizon = round(end + interval, 6)

    if groups is not None:
        rendered = " | ".join(
            "{" + ", ".join(sorted(group)) + "}" for group in groups
        )
        diagnostics.append(
            _diag(
                "PDE301",
                WARNING,
                f"partition opened at t={partition_since} is never healed "
                f"(groups {rendered}); isolated peers stay excluded from the "
                "convergence check",
                hint="append a Heal event after the partition window",
                fixes=(
                    Fix(
                        f"append a heal event at t={horizon}",
                        (
                            JsonEdit(
                                "append",
                                ("events",),
                                {"event": "heal", "at": horizon},
                            ),
                        ),
                    ),
                ),
            )
        )
    for peer, since in sorted(crashed.items()):
        diagnostics.append(
            _diag(
                "PDE302",
                WARNING,
                f"peer {peer!r} crashes at t={since} and never restarts; it "
                "is excluded from the convergence check",
                hint="append a Restart event for the peer",
                fixes=(
                    Fix(
                        f"append a restart of {peer!r} at t={horizon}",
                        (
                            JsonEdit(
                                "append",
                                ("events",),
                                {"event": "restart", "at": horizon, "peer": peer},
                            ),
                        ),
                    ),
                ),
            )
        )

    custody_gapped: set[str] = set()
    if topology:
        cycle = _relay_cycle(scenario)
        if cycle is not None:
            rendered = " -> ".join(cycle)
            diagnostics.append(
                _diag(
                    "PDE311",
                    WARNING,
                    f"the relay topology contains a directed cycle "
                    f"({rendered}): stamp watermarks keep re-forwarding "
                    "idempotent so the loop terminates, but every lap costs "
                    "deliveries that arrive stale",
                    hint="break the cycle if the redundant path is "
                    "unintentional; it is safe but wasteful",
                )
            )
        custody_gapped = set(peers) - _relay_reachable(scenario, (), None)
        for peer in sorted(custody_gapped):
            diagnostics.append(
                _diag(
                    "PDE312",
                    ERROR,
                    f"peer {peer!r} has no relay path from {publisher!r} "
                    "carrying the publisher's feed even on the fault-free "
                    "topology: it can never receive a publish and "
                    "convergence is impossible",
                    hint="add a relay link reaching the peer, or widen "
                    "custody on an existing path",
                )
            )

    if topology:
        relay_reachable = _relay_reachable(scenario, crashed, groups)
        for peer in sorted(peers):
            if (
                peer in crashed  # already PDE302
                or peer in custody_gapped  # already PDE312
                or peer in relay_reachable
            ):
                continue
            diagnostics.append(
                _diag(
                    "PDE310",
                    WARNING,
                    f"peer {peer!r} has no live relay path from "
                    f"{publisher!r} after the timeline's surviving faults "
                    "(crashed relays or unhealed partitions sever every "
                    "route); it is excluded from the convergence check",
                    hint="restart the crashed relays / heal the partition, "
                    "or add a redundant relay link",
                )
            )
        reachable = [peer for peer in peers if peer in relay_reachable]
    else:
        reachable = [
            peer
            for peer in peers
            if peer not in crashed and _connected(groups, publisher, peer)
        ]
    if not reachable:
        diagnostics.append(
            _diag(
                "PDE304",
                ERROR,
                "no peer is reachable at quiescence (all crashed or "
                "partitioned from the publisher): the convergence check is "
                "vacuously true and the run proves nothing",
                hint="heal partitions / restart peers before the timeline ends",
            )
        )

    for link in scenario.relay_links:
        schedule = scenario.faults.get((link.sender, link.recipient))
        if _always_drops(schedule):
            diagnostics.append(
                _diag(
                    "PDE305",
                    WARNING,
                    f"link {link.sender!r} -> {link.recipient!r} drops every "
                    "message (drop_rate >= 1.0): the recipient converges "
                    "only through the post-run anti-entropy repair channel, "
                    "so the run never exercises the sync protocol on that "
                    "link",
                    hint="lower drop_rate, or remove the dead link",
                )
            )

    if (
        not topology
        and n_publishes > 1
        and reorder_delay <= interval
        and any(
            _may_reorder(scenario.faults.get((publisher, peer)))
            for peer in peers
        )
    ):
        diagnostics.append(
            _diag(
                "PDE307",
                INFO,
                f"the link schedules reorder messages but reorder_delay "
                f"({reorder_delay}) does not exceed the publish interval "
                f"({interval}): a reordered message still arrives before the "
                "next publish, so reordering never actually overtakes "
                "anything",
                hint="set reorder_delay > interval to make reordering "
                "observable",
            )
        )

    if deltas and not topology:
        # PDE308's certain-miss argument assumes the publisher is adjacent
        # to every peer; relays forward full snapshots, never deltas, so a
        # relay hop cannot doom a delta chain.
        diagnostics.extend(
            _delta_chain_rules(
                scenario, epoch_starts, certain_missed, reorder_delay
            )
        )
    return diagnostics


def _delta_publishes(scenario: Scenario, epoch_starts: set[int]) -> set[int]:
    """Publish indexes that ship a :class:`~repro.net.Delta` under ``--delta``.

    Mirrors the publisher's rule: never the first publish of an epoch,
    and only when the delta's wire size (``|added| + |withdrawn|``)
    actually beats the full snapshot.
    """
    shipped: set[int] = set()
    previous = None
    for index, snapshot in enumerate(scenario.snapshots):
        if index in epoch_starts:
            previous = None
        if previous is not None:
            delta_size = len(snapshot - previous) + len(previous - snapshot)
            if delta_size < len(snapshot):
                shipped.add(index)
        previous = snapshot
    return shipped


def _delta_chain_rules(
    scenario: Scenario,
    epoch_starts: set[int],
    certain_missed: Mapping[str, set[int]],
    reorder_delay: float,
) -> list[Diagnostic]:
    """PDE308: crash/partition schedules that guarantee a broken delta chain.

    Sound only on fault-free links with ``latency < interval``: there the
    peer's watermark is exactly determined by its certain misses, so a
    delta whose base publish the peer certainly missed *must* arrive
    chain-broken (if it arrives at all) and trigger the full-snapshot
    fallback retransmit.  On lossy links a reordered or redelivered
    message could have repaired the watermark in between, so no claim is
    made.
    """
    if scenario.latency >= scenario.interval:
        return []
    diagnostics: list[Diagnostic] = []
    shipped = _delta_publishes(scenario, epoch_starts)
    if not shipped:
        return []
    for peer in scenario.peers:
        schedule = scenario.faults.get((scenario.publisher, peer))
        if not _fault_free(schedule):
            continue
        missed = certain_missed[peer]
        doomed = sorted(
            index
            for index in shipped
            if index - 1 in missed and index not in missed
        )
        if doomed:
            rendered = ", ".join(str(index) for index in doomed)
            diagnostics.append(
                _diag(
                    "PDE308",
                    WARNING,
                    f"peer {peer!r} certainly misses the base of delta "
                    f"publish(es) {rendered}: each such delta arrives "
                    "chain-broken (DELTA_CHAIN_BROKEN) and costs a "
                    "full-snapshot fallback retransmit",
                    hint="schedule an epoch bump after the outage, or accept "
                    "the fallback cost",
                )
            )
    return diagnostics


# ---------------------------------------------------------------------------
# the merge-ambiguity rules (PDE4xx)
# ---------------------------------------------------------------------------


def _merge_rules(scenario: Scenario) -> list[Diagnostic]:
    """Check the declarative multi-publisher merge contract."""
    diagnostics: list[Diagnostic] = []
    publishers = scenario.publishers
    multi = len(publishers) > 1

    if scenario.repair and scenario.repair not in REPAIR_RULES:
        known = ", ".join(REPAIR_RULES)
        diagnostics.append(
            _diag(
                "PDE405",
                ERROR,
                f"unknown repair rule {scenario.repair!r}",
                hint=f"one of: {known}",
            )
        )

    if not multi:
        if scenario.trust:
            diagnostics.append(
                _diag(
                    "PDE404",
                    INFO,
                    "a trust order is declared but the scenario has a single "
                    "publisher; trust only resolves equal stamps from "
                    "*different* publishers",
                    hint="drop the trust declaration, or add co_publishers",
                )
            )
        return diagnostics

    if not scenario.trust:
        names = ", ".join(repr(name) for name in publishers)
        diagnostics.append(
            _diag(
                "PDE401",
                ERROR,
                f"publishers {names} can issue equal stamps for conflicting "
                "facts, and no trust order is declared to resolve the merge "
                "(Bertossi–Bravo trust semantics)",
                hint='declare "trust": [...] listing every publisher, '
                "most-trusted first",
            )
        )
    else:
        missing = [name for name in publishers if name not in scenario.trust]
        unknown = [name for name in scenario.trust if name not in publishers]
        duplicated = len(set(scenario.trust)) != len(scenario.trust)
        problems: list[str] = []
        if missing:
            problems.append(
                "does not rank publisher(s) "
                + ", ".join(repr(name) for name in missing)
            )
        if unknown:
            problems.append(
                "ranks unknown name(s) "
                + ", ".join(repr(name) for name in unknown)
            )
        if duplicated:
            problems.append("ranks a publisher twice")
        if problems:
            diagnostics.append(
                _diag(
                    "PDE402",
                    ERROR,
                    "the trust order " + "; ".join(problems) + ": equal "
                    "stamps between unranked publishers stay ambiguous",
                    hint="list exactly the publishers, each once, "
                    "most-trusted first",
                )
            )

    if not scenario.repair and scenario.setting.target_egds():
        diagnostics.append(
            _diag(
                "PDE403",
                WARNING,
                f"the setting declares {len(scenario.setting.target_egds())} "
                "target egd(s) but the scenario declares no repair rule: a "
                "trust-ordered merge can still violate Σ_t with no declared "
                "resolution (cf. Exchange-Repairs)",
                hint='declare "repair": one of '
                + ", ".join(repr(rule) for rule in REPAIR_RULES),
            )
        )
    return diagnostics


# ---------------------------------------------------------------------------
# entry points
# ---------------------------------------------------------------------------


def _nest_setting_fixes(diagnostic: Diagnostic) -> Diagnostic:
    """Re-root a setting diagnostic's fix paths under the ``"setting"`` key.

    Setting rules emit :class:`~repro.analysis.fixes.JsonEdit` paths
    relative to a setting file; in a scenario file the setting is nested
    under ``"setting"``, so ``lint --fix`` needs the prefixed path.
    """
    if not diagnostic.fixes:
        return diagnostic
    fixes = tuple(
        Fix(
            fix.description,
            tuple(
                JsonEdit(edit.op, ("setting", *edit.path), edit.value)
                for edit in fix.edits
            ),
        )
        for fix in diagnostic.fixes
    )
    return replace(diagnostic, fixes=fixes)


def analyze_scenario(
    scenario: Scenario,
    deltas: bool = False,
    ignore: Iterable[str] = (),
    include_setting: bool = True,
) -> AnalysisReport:
    """Statically analyze a scenario without running it.

    Args:
        scenario: the scenario to interpret.
        deltas: also check delta-transfer consequences (``PDE308``), as
            ``simulate --delta`` would experience them.
        ignore: diagnostic codes to suppress (accepts the comma
            shorthand, see :func:`~repro.analysis.expand_ignore`).
        include_setting: also run the setting lint rules over
            ``scenario.setting`` and merge their findings into the
            report (the default — a scenario is only as sound as the
            setting it syncs under).
    """
    diagnostics = _timeline_rules(scenario, deltas)
    diagnostics.extend(_merge_rules(scenario))
    if include_setting:
        diagnostics.extend(
            _nest_setting_fixes(diagnostic)
            for diagnostic in analyze(scenario.setting).diagnostics
        )
    return AnalysisReport.build(
        scenario.name, diagnostics, ignore=expand_ignore(ignore)
    )


def analyze_scenario_dict(
    encoded: Mapping[str, Any],
    deltas: bool = False,
    ignore: Iterable[str] = (),
) -> AnalysisReport:
    """Analyze a JSON-decoded scenario dict, diagnosing load failures.

    Construction failures become ``PDE000`` diagnostics instead of
    exceptions, mirroring :func:`~repro.analysis.analyze_dict`; codes
    under the dict's ``lint_ignore`` key are suppressed in addition to
    ``ignore``.
    """
    ignore = expand_ignore(ignore) | expand_ignore(encoded.get("lint_ignore", ()))
    try:
        scenario = scenario_from_dict(encoded, validate=False)
    except ReproError as error:
        message = f"unloadable scenario: {error}"
    except (KeyError, TypeError, ValueError, AttributeError) as error:
        message = f"malformed scenario file: {type(error).__name__}: {error}"
    else:
        return analyze_scenario(scenario, deltas=deltas, ignore=ignore)
    return AnalysisReport.build(
        encoded.get("name", ""),
        [Diagnostic("PDE000", ERROR, message, rule=CODES["PDE000"].rule)],
        ignore=ignore,
    )


def analyze_scenario_text(
    text: str, deltas: bool = False, ignore: Iterable[str] = ()
) -> AnalysisReport:
    """Analyze a scenario given as JSON text (the on-disk format)."""
    try:
        encoded = json.loads(text)
    except json.JSONDecodeError as error:
        return AnalysisReport.build(
            "",
            [
                Diagnostic(
                    "PDE000",
                    ERROR,
                    f"invalid JSON: {error}",
                    rule=CODES["PDE000"].rule,
                )
            ],
            ignore=expand_ignore(ignore),
        )
    if not isinstance(encoded, dict):
        return AnalysisReport.build(
            "",
            [
                Diagnostic(
                    "PDE000",
                    ERROR,
                    "a scenario file must hold a JSON object, got "
                    + type(encoded).__name__,
                    rule=CODES["PDE000"].rule,
                )
            ],
            ignore=expand_ignore(ignore),
        )
    return analyze_scenario_dict(encoded, deltas=deltas, ignore=ignore)
