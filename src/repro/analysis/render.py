"""Rendering for lint runs: text for humans, JSON for tooling.

A lint run covers one or more setting files; each contributes an
:class:`~repro.analysis.diagnostics.AnalysisReport`.  The run's exit code
is the worst per-file exit code (2 errors / 1 warnings / 0 clean), the CI
convention the ``repro.cli lint`` subcommand exposes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.analysis.diagnostics import AnalysisReport

__all__ = ["LintRun", "render_text", "render_json"]


@dataclass
class LintRun:
    """The reports of one lint invocation, keyed by input path."""

    reports: list[tuple[str, AnalysisReport]] = field(default_factory=list)

    def add(self, path: str, report: AnalysisReport) -> None:
        """Record the report for one input file."""
        self.reports.append((path, report))

    def exit_code(self) -> int:
        """Worst exit code across all files (0 when no files were linted)."""
        return max((report.exit_code() for _, report in self.reports), default=0)


def render_text(run: LintRun) -> str:
    """Human-readable rendering: per-file diagnostics plus a summary line."""
    lines: list[str] = []
    total_errors = total_warnings = total_infos = 0
    for path, report in run.reports:
        for diagnostic in report:
            lines.append(f"{path}: {diagnostic.render()}")
        for code, suppressed in report.ignored:
            if suppressed:
                lines.append(
                    f"{path}: note: {suppressed} {code} finding(s) suppressed "
                    f"via lint_ignore"
                )
        total_errors += len(report.errors())
        total_warnings += len(report.warnings())
        total_infos += len(report.infos())
    checked = len(run.reports)
    lines.append(
        f"{checked} setting(s) checked: {total_errors} error(s), "
        f"{total_warnings} warning(s), {total_infos} info(s)"
    )
    return "\n".join(lines)


def render_json(run: LintRun, indent: int | None = 2) -> str:
    """Machine-readable rendering: one JSON document for the whole run."""
    return json.dumps(
        {
            "files": [
                {"path": path, **report.to_dict()} for path, report in run.reports
            ],
            "exit_code": run.exit_code(),
        },
        indent=indent,
        sort_keys=False,
    )
