"""Machine-applicable fixes: structural edits resolved to text spans.

A rule with an obvious remedy attaches a :class:`Fix` to its diagnostic:
a human-readable description plus one or more :class:`JsonEdit`\\ s — JSON
*path* edits (``remove`` / ``replace`` / ``append``) into the setting or
scenario document the diagnostic came from.  Because lint inputs are JSON
files whose decoded dicts carry no positions, this module re-derives the
byte span of any JSON path with a small offset-tracking scanner, so an
edit becomes a genuine ``(start, end, replacement)`` splice into the
original text — untouched regions keep their formatting byte-for-byte.

Entry points:

* :func:`resolve_edits` — turn a report's edits into text splices;
* :func:`apply_fixes` — apply every applicable fix and return the new
  text (``lint --fix``);
* :func:`fix_diff` — a unified diff preview (``lint --diff``).

Edits whose path no longer resolves (the key was already removed, the
file changed underneath) are skipped, never guessed at.
"""

from __future__ import annotations

import difflib
import json
from dataclasses import dataclass, field
from typing import Any, Iterable

__all__ = [
    "Fix",
    "JsonEdit",
    "SpanEdit",
    "apply_fixes",
    "fix_diff",
    "resolve_edits",
]

#: A path into a JSON document: object keys (str) and array indexes (int).
JsonPath = tuple  # tuple[str | int, ...]


@dataclass(frozen=True)
class JsonEdit:
    """One structural edit into a JSON document.

    Attributes:
        op: ``"remove"`` (delete the element/member at ``path``),
            ``"replace"`` (substitute ``value`` for it), or ``"append"``
            (add ``value`` at the end of the array at ``path``).
        path: where — object keys and array indexes from the root.
        value: the JSON value for ``replace``/``append``.
    """

    op: str
    path: JsonPath
    value: Any = None

    def __post_init__(self) -> None:
        if self.op not in ("remove", "replace", "append"):
            raise ValueError(f"unknown edit op {self.op!r}")

    def to_dict(self) -> dict[str, Any]:
        encoded: dict[str, Any] = {"op": self.op, "path": list(self.path)}
        if self.op != "remove":
            encoded["value"] = self.value
        return encoded


@dataclass(frozen=True)
class Fix:
    """A machine-applicable remedy attached to a diagnostic."""

    description: str
    edits: tuple[JsonEdit, ...] = field(default=())

    def to_dict(self) -> dict[str, Any]:
        return {
            "description": self.description,
            "edits": [edit.to_dict() for edit in self.edits],
        }


@dataclass(frozen=True)
class SpanEdit:
    """A resolved splice: replace ``text[start:end]`` with ``replacement``."""

    start: int
    end: int
    replacement: str


# ---------------------------------------------------------------------------
# the span scanner
# ---------------------------------------------------------------------------


class _PathNotFound(Exception):
    """The edit's path does not exist in this document."""


def _skip_ws(text: str, i: int) -> int:
    while i < len(text) and text[i] in " \t\n\r":
        i += 1
    return i


def _scan_string(text: str, i: int) -> int:
    """``i`` points at the opening quote; return the index past the close."""
    i += 1
    while i < len(text):
        if text[i] == "\\":
            i += 2
        elif text[i] == '"':
            return i + 1
        else:
            i += 1
    raise _PathNotFound("unterminated string")


def _scan_value(text: str, i: int) -> int:
    """``i`` points at a value's first character; return the index past it."""
    char = text[i]
    if char == '"':
        return _scan_string(text, i)
    if char in "{[":
        close = "}" if char == "{" else "]"
        depth = 0
        while i < len(text):
            if text[i] == '"':
                i = _scan_string(text, i)
                continue
            if text[i] in "{[":
                depth += 1
            elif text[i] in "}]":
                depth -= 1
                if depth == 0:
                    if text[i] != close:
                        raise _PathNotFound("mismatched brackets")
                    return i + 1
            i += 1
        raise _PathNotFound("unterminated container")
    # literal: number, true, false, null
    start = i
    while i < len(text) and text[i] not in ",}] \t\n\r":
        i += 1
    if i == start:
        raise _PathNotFound(f"no value at offset {start}")
    return i


def _object_members(text: str, i: int):
    """Yield ``(key, key_start, value_start, value_end)`` for the object at ``i``."""
    i = _skip_ws(text, i)
    if i >= len(text) or text[i] != "{":
        raise _PathNotFound("expected an object")
    i = _skip_ws(text, i + 1)
    if i < len(text) and text[i] == "}":
        return
    while True:
        key_start = i
        if text[i] != '"':
            raise _PathNotFound("expected an object key")
        key_end = _scan_string(text, i)
        key = json.loads(text[key_start:key_end])
        i = _skip_ws(text, key_end)
        if i >= len(text) or text[i] != ":":
            raise _PathNotFound("expected ':' after key")
        value_start = _skip_ws(text, i + 1)
        value_end = _scan_value(text, value_start)
        yield key, key_start, value_start, value_end
        i = _skip_ws(text, value_end)
        if i < len(text) and text[i] == ",":
            i = _skip_ws(text, i + 1)
            continue
        if i < len(text) and text[i] == "}":
            return
        raise _PathNotFound("malformed object")


def _array_items(text: str, i: int):
    """Yield ``(start, end)`` for each item of the array at ``i``."""
    i = _skip_ws(text, i)
    if i >= len(text) or text[i] != "[":
        raise _PathNotFound("expected an array")
    i = _skip_ws(text, i + 1)
    if i < len(text) and text[i] == "]":
        return
    while True:
        start = i
        end = _scan_value(text, start)
        yield start, end
        i = _skip_ws(text, end)
        if i < len(text) and text[i] == ",":
            i = _skip_ws(text, i + 1)
            continue
        if i < len(text) and text[i] == "]":
            return
        raise _PathNotFound("malformed array")


def _locate(text: str, path: JsonPath) -> tuple[int, int, int]:
    """Resolve ``path`` to ``(anchor, start, end)`` offsets in ``text``.

    ``start:end`` spans the value; ``anchor`` is where its removal must
    begin — the key string for an object member, the value itself for an
    array item.
    """
    start = _skip_ws(text, 0)
    anchor, end = start, _scan_value(text, start)
    for step in path:
        if isinstance(step, int):
            for index, (item_start, item_end) in enumerate(_array_items(text, start)):
                if index == step:
                    anchor, start, end = item_start, item_start, item_end
                    break
            else:
                raise _PathNotFound(f"array index {step} out of range")
        else:
            for key, key_start, value_start, value_end in _object_members(text, start):
                if key == step:
                    anchor, start, end = key_start, value_start, value_end
                    break
            else:
                raise _PathNotFound(f"no member {step!r}")
    return anchor, start, end


def _removal_span(text: str, anchor: int, end: int) -> tuple[int, int]:
    """Extend a member/item span over its separating comma and whitespace."""
    after = _skip_ws(text, end)
    if after < len(text) and text[after] == ",":
        # Consume the trailing comma and run up to the next element.
        return anchor, _skip_ws(text, after + 1)
    # Last element: consume the preceding comma instead, if any.
    before = anchor
    while before > 0 and text[before - 1] in " \t\n\r":
        before -= 1
    if before > 0 and text[before - 1] == ",":
        return before - 1, end
    return anchor, end


def _resolve_one(text: str, edit: JsonEdit) -> SpanEdit:
    if edit.op == "append":
        _anchor, start, end = _locate(text, edit.path)
        if text[start] != "[":
            raise _PathNotFound("append target is not an array")
        items = list(_array_items(text, start))
        rendered = json.dumps(edit.value, sort_keys=True)
        if not items:
            return SpanEdit(start + 1, end - 1, rendered)
        last_end = items[-1][1]
        return SpanEdit(last_end, last_end, ", " + rendered)
    anchor, start, end = _locate(text, edit.path)
    if edit.op == "replace":
        return SpanEdit(start, end, json.dumps(edit.value, sort_keys=True))
    removal_start, removal_end = _removal_span(text, anchor, end)
    return SpanEdit(removal_start, removal_end, "")


def resolve_edits(
    text: str, edits: Iterable[JsonEdit]
) -> tuple[list[SpanEdit], int]:
    """Resolve ``edits`` against ``text``; unresolvable ones are skipped.

    Returns the resolved span edits (unordered) and the skipped count.
    Overlapping resolutions keep the first and skip the rest, so two
    fixes fighting over one region never corrupt the document.
    """
    resolved: list[SpanEdit] = []
    skipped = 0
    for edit in edits:
        try:
            candidate = _resolve_one(text, edit)
        except _PathNotFound:
            skipped += 1
            continue
        overlaps = any(
            candidate.start < other.end and other.start < candidate.end
            and not (candidate.start == candidate.end == other.start == other.end)
            for other in resolved
        )
        if overlaps:
            skipped += 1
        else:
            resolved.append(candidate)
    return resolved, skipped


def apply_fixes(text: str, diagnostics: Iterable) -> tuple[str, int, int]:
    """Apply every fix carried by ``diagnostics`` to ``text``.

    Returns ``(new_text, applied, skipped)`` where ``applied`` counts the
    *fixes* (not individual edits) whose every edit resolved.  Spans are
    resolved against the original text and applied back-to-front, so
    earlier splices never shift later offsets.
    """
    edits: list[JsonEdit] = []
    fix_sizes: list[int] = []
    for diagnostic in diagnostics:
        for fix in getattr(diagnostic, "fixes", ()):
            edits.extend(fix.edits)
            fix_sizes.append(len(fix.edits))
    resolved, skipped_edits = resolve_edits(text, edits)
    for span in sorted(resolved, key=lambda s: s.start, reverse=True):
        text = text[: span.start] + span.replacement + text[span.end :]
    total_fixes = len(fix_sizes)
    # Attribute skips to whole fixes, conservatively: each skipped edit
    # fails at most one fix.
    applied = max(0, total_fixes - skipped_edits)
    return text, applied, total_fixes - applied


def fix_diff(path: str, old: str, new: str) -> str:
    """A unified diff of a fix application, for ``lint --diff``."""
    return "".join(
        difflib.unified_diff(
            old.splitlines(keepends=True),
            new.splitlines(keepends=True),
            fromfile=path,
            tofile=f"{path} (fixed)",
        )
    )
