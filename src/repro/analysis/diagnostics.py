"""Structured diagnostic records produced by the setting linter.

A :class:`Diagnostic` is one finding: a stable code from
:mod:`repro.analysis.codes`, a severity, a human-readable message, an
optional source span (the :class:`~repro.core.dependencies.Provenance`
of the offending dependency), and an optional fix hint.  An
:class:`AnalysisReport` aggregates the findings for one setting and
knows how to turn them into CI exit codes and JSON.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

from repro.analysis.codes import CODES, ERROR, INFO, SEVERITY_RANK, WARNING
from repro.analysis.fixes import Fix
from repro.core.dependencies import Provenance

__all__ = ["Diagnostic", "AnalysisReport"]


@dataclass(frozen=True)
class Diagnostic:
    """One finding of the static analyzer.

    Attributes:
        code: stable code (``PDE001``...), from the table in
            :mod:`repro.analysis.codes`.
        severity: ``"error"``, ``"warning"``, or ``"info"``.
        message: what is wrong, naming the offending dependency/relation.
        rule: kebab-case rule name (``"target-egd"``), mirrors the code.
        span: where — the provenance of the offending dependency, when
            known.
        hint: how to fix or silence the finding, when the rule has advice.
        fixes: machine-applicable remedies (``lint --fix`` applies them;
            see :mod:`repro.analysis.fixes`).
    """

    code: str
    severity: str
    message: str
    rule: str = ""
    span: Provenance | None = None
    hint: str = ""
    fixes: tuple[Fix, ...] = ()

    def __post_init__(self) -> None:
        info = CODES.get(self.code)
        if info is None:
            raise ValueError(f"unknown diagnostic code {self.code!r}")
        if self.severity not in SEVERITY_RANK:
            raise ValueError(f"unknown severity {self.severity!r}")
        if not self.rule:
            object.__setattr__(self, "rule", info.rule)

    def location(self) -> str:
        """Render the span as ``source:line:column``, or ``"-"``."""
        return self.span.label() if self.span is not None else "-"

    def render(self) -> str:
        """One-line text rendering, GCC style."""
        line = f"{self.location()}: {self.severity} {self.code} [{self.rule}] {self.message}"
        if self.hint:
            line += f"\n    hint: {self.hint}"
        for fix in self.fixes:
            line += f"\n    fix: {fix.description}"
        return line

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready encoding (machine-readable lint output)."""
        encoded: dict[str, Any] = {
            "code": self.code,
            "severity": self.severity,
            "rule": self.rule,
            "message": self.message,
        }
        if self.span is not None:
            encoded["span"] = {
                "source": self.span.source,
                "line": self.span.line,
                "column": self.span.column,
                "text": self.span.text,
            }
        if self.hint:
            encoded["hint"] = self.hint
        if self.fixes:
            encoded["fixes"] = [fix.to_dict() for fix in self.fixes]
        return encoded


def _sort_key(diagnostic: Diagnostic) -> tuple:
    span = diagnostic.span
    return (
        SEVERITY_RANK[diagnostic.severity],
        diagnostic.code,
        span.source if span else "",
        span.line if span else 0,
        span.column if span else 0,
        diagnostic.message,
    )


@dataclass(frozen=True)
class AnalysisReport:
    """All diagnostics for one setting, sorted most-severe first.

    Attributes:
        setting_name: the analyzed setting's name (may be empty).
        diagnostics: the findings, sorted by (severity, code, span).
        ignored: codes that were suppressed via ``ignore=`` / the
            ``lint_ignore`` key of a setting file, with how many findings
            each suppressed.
    """

    setting_name: str
    diagnostics: tuple[Diagnostic, ...]
    ignored: tuple[tuple[str, int], ...] = field(default=())

    @classmethod
    def build(
        cls,
        setting_name: str,
        diagnostics: Iterable[Diagnostic],
        ignore: Iterable[str] = (),
    ) -> "AnalysisReport":
        """Sort ``diagnostics``, applying the ``ignore`` suppression list."""
        ignore = set(ignore)
        kept: list[Diagnostic] = []
        suppressed: dict[str, int] = {code: 0 for code in sorted(ignore)}
        for diagnostic in diagnostics:
            if diagnostic.code in ignore:
                suppressed[diagnostic.code] += 1
            else:
                kept.append(diagnostic)
        return cls(
            setting_name=setting_name,
            diagnostics=tuple(sorted(kept, key=_sort_key)),
            ignored=tuple(sorted(suppressed.items())),
        )

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    # -- severity tallies ---------------------------------------------------

    def errors(self) -> list[Diagnostic]:
        """The error-severity findings."""
        return [d for d in self.diagnostics if d.severity == ERROR]

    def warnings(self) -> list[Diagnostic]:
        """The warning-severity findings."""
        return [d for d in self.diagnostics if d.severity == WARNING]

    def infos(self) -> list[Diagnostic]:
        """The info-severity findings."""
        return [d for d in self.diagnostics if d.severity == INFO]

    def fixable(self) -> list[Diagnostic]:
        """The findings that carry machine-applicable fixes."""
        return [d for d in self.diagnostics if d.fixes]

    def codes(self) -> list[str]:
        """The distinct codes present, in severity order."""
        seen: list[str] = []
        for diagnostic in self.diagnostics:
            if diagnostic.code not in seen:
                seen.append(diagnostic.code)
        return seen

    @property
    def clean(self) -> bool:
        """True when nothing (of any severity) was found."""
        return not self.diagnostics

    def exit_code(self) -> int:
        """CI convention: 2 with errors, 1 with warnings, 0 otherwise.

        Info findings never fail a build.
        """
        if self.errors():
            return 2
        if self.warnings():
            return 1
        return 0

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready encoding of the whole report."""
        return {
            "setting": self.setting_name,
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "ignored": [
                {"code": code, "suppressed": count} for code, count in self.ignored
            ],
            "summary": {
                "errors": len(self.errors()),
                "warnings": len(self.warnings()),
                "infos": len(self.infos()),
            },
            "exit_code": self.exit_code(),
        }
