"""Command-line interface for the peer data exchange library.

Usage (after ``pip install -e .``)::

    python -m repro.cli classify  setting.json
    python -m repro.cli lint      setting.json [scenario.json|name ...] [--fix | --diff] [--ignore CODES]
    python -m repro.cli describe  setting.json [--dot relations|positions]
    python -m repro.cli solve     setting.json source.txt [target.txt]
    python -m repro.cli explain   setting.json source.txt [target.txt]
    python -m repro.cli certain   setting.json source.txt --query "H(x, y)"
    python -m repro.cli chase     setting.json source.txt [target.txt]
    python -m repro.cli sync      setting.json snap1.txt [snap2.txt ...] [--delta]
    python -m repro.cli simulate  [name|scenario.json] [--seed N] [--delta] [--log] [--lint [--force]]
    python -m repro.cli serve     setting.json --peers a,b,c --journal-dir DIR [--listen HOST:PORT|unix:PATH]
    python -m repro.cli connect   ADDR setting.json snap1.txt [snap2.txt ...] --peer NAME [--delta]
    python -m repro.cli profile   clique [--size N] [--top K] [--trace out.jsonl]
    python -m repro.cli obs stitch [LABEL=]trace.jsonl ... [--chrome out.json]
    python -m repro.cli obs postmortem peer.postmortem.jsonl [--last N]
    python -m repro.cli obs top HOST:PORT [HOST:PORT ...] [--json]

Setting files use the JSON format of :mod:`repro.io.serialization`;
instance files use the parser's text syntax (``E(a, b); E(b, c)`` — with
``#`` comments), or JSON when the filename ends in ``.json`` (sniffed
case-insensitively, so ``SETTING.JSON`` works too).

``lint`` exits 0 on clean settings, 1 when the worst finding is a
warning, and 2 on errors — the CI convention.  Inputs may be setting
files, scenario files (``"kind": "scenario"``), or registered scenario
names; scenarios get the timeline/merge analysis (``PDE3xx``/``PDE4xx``)
on top of the setting rules.  ``--ignore PDE101,PDE203`` suppresses
codes, ``--fix`` applies the machine-applicable fixes in place, and
``--diff`` previews them as a unified diff.

``simulate --lint`` pre-flights the scenario with the same analyzer and
refuses to run (exit 1) on error findings — a statically-divergent
scenario would raise mid-run or vacuously "converge" while proving
nothing; ``--force`` overrides the refusal.

Governance: ``solve``, ``certain``, and ``sync`` accept ``--deadline
SECONDS`` and ``--budget NODES``, building a non-strict
:class:`repro.runtime.Budget`.  A computation that exhausts its budget
exits with code 4 (degraded: the printed result is partial), distinct
from 1 (a definitive negative answer).  ``sync`` replays one round per
snapshot file, optionally journaling to ``--journal`` for crash-safe
resumption, and exits 4 when any round degraded, else 1 when any round
was rejected, else 0.

``simulate`` runs a named :mod:`repro.net` scenario — a multi-peer sync
over a seeded unreliable network with drops, duplicates, reordering, and
partitions — to quiescence and checks convergence against the fault-free
oracle.  It exits 0 when every reachable peer converged and 4 when any
diverged (the degraded-result convention); ``--log`` prints the
deterministic event log, and ``--journal-dir`` gives crash scenarios a
durable directory to resume from.

Delta transfer: both ``sync`` and ``simulate`` accept ``--delta``.
``sync --delta`` stamps each round and ships only the ``(added,
withdrawn)`` difference against the previous snapshot file (the first
round, and any round whose delta chain broke, falls back to the full
snapshot) and reports the facts-on-wire saving.  ``simulate --delta``
enables the same protocol inside the network simulator: publishes carry
deltas keyed on the previous stamp, chain breaks trigger per-peer
full-snapshot fallbacks, and the transport's ``facts_sent`` counter
shows the wire reduction.

``serve`` runs the :mod:`repro.netd` daemon: one journaled sync session
per ``--peers`` name behind a TCP or unix socket (``--listen``; port 0
picks a free port and the bound address is printed on startup).
``SIGTERM``/``SIGINT`` trigger the graceful drain — in-flight rounds
finish under ``--drain`` seconds, journals commit, connections get a
``BYE`` — and the process exits 0 when the drain completed, 4 when the
deadline expired with rounds still queued.  ``connect`` is the
publisher: it replays snapshot files against a running daemon as
stamped rounds (``--delta`` ships increments with full-snapshot
fallback) and exits 0 when every round applied (or replayed stale), 1
when any was rejected, 4 when any degraded or never got through.

Observability: ``solve``, ``certain``, and ``sync`` accept ``--trace
PATH`` (record a span tree to a JSONL file readable with
:mod:`repro.obs`), ``--chrome PATH`` (the same trace as a Chrome
trace-event file), and ``--metrics`` (print the metrics summary after
the result).  ``profile`` runs a named workload from
:mod:`repro.workloads` under a tracer and prints the hottest spans.
``obs`` is the fleet toolbox: ``obs stitch`` merges per-peer JSONL
traces into one causally-ordered timeline (``--chrome`` exports it with
one lane per peer), ``obs postmortem`` renders a crash flight-recorder
file, and ``obs top`` polls running daemons over the ``STATS`` frame
for live per-peer watermark/lag (exit 4 when any daemon is
unreachable)::

    python -m repro.cli profile clique --top 10
    python -m repro.cli profile genomics --trace out.jsonl --chrome out.json
    python -m repro.cli profile --list
    python -m repro.cli profile --check   # smoke-run every workload
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.core.instance import Instance
from repro.core.parser import parse_instance, parse_query
from repro.core.setting import PDESetting
from repro.io.serialization import dumps_instance, loads_instance, loads_setting
from repro.runtime import Budget, RetryPolicy, SessionJournal
from repro.solver import certain_answers, solve
from repro.solver.explain import explain
from repro.solver.tractable import canonical_instances
from repro.tractability import classify

__all__ = ["main", "build_parser"]

#: Exit code for degraded (budget-exhausted / deadline / cancelled) results.
EXIT_DEGRADED = 4


def _is_json_path(path: str) -> bool:
    """File-type sniffing by suffix, case-insensitive (``a.JSON`` is JSON)."""
    return Path(path).suffix.lower() == ".json"


def _load_setting(path: str) -> PDESetting:
    # Settings are JSON-only; the sniff exists so a future text format can
    # dispatch here the same way instances do.
    text = Path(path).read_text()
    return loads_setting(text)


def _load_instance(path: str | None) -> Instance:
    if path is None:
        return Instance()
    text = Path(path).read_text()
    if _is_json_path(path):
        return loads_instance(text)
    return parse_instance(text)


def _build_budget(args: argparse.Namespace) -> Budget | None:
    """A non-strict budget from ``--deadline`` / ``--budget``, or None."""
    deadline = getattr(args, "deadline", None)
    node_cap = getattr(args, "budget", None)
    if deadline is None and node_cap is None:
        return None
    return Budget(wall_time_s=deadline, node_cap=node_cap, strict=False)


def _add_budget_options(command: argparse.ArgumentParser) -> None:
    command.add_argument(
        "--deadline", type=float, metavar="SECONDS",
        help="wall-clock deadline; on expiry the result degrades (exit 4)",
    )
    command.add_argument(
        "--budget", type=int, metavar="NODES",
        help="search-node cap; on exhaustion the result degrades (exit 4)",
    )


def _add_obs_options(command: argparse.ArgumentParser) -> None:
    command.add_argument(
        "--trace", metavar="PATH",
        help="record a span trace of the run to a JSONL file",
    )
    command.add_argument(
        "--chrome", metavar="PATH",
        help="also write a Chrome trace-event file (chrome://tracing)",
    )
    command.add_argument(
        "--metrics", action="store_true",
        help="print the metrics summary after the result",
    )


def _build_obs(args: argparse.Namespace):
    """(tracer, registry) from ``--trace``/``--chrome``/``--metrics``."""
    tracer = registry = None
    if getattr(args, "trace", None) or getattr(args, "chrome", None):
        from repro.obs import Tracer

        tracer = Tracer()
    if getattr(args, "metrics", False):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
    return tracer, registry


def _finish_obs(args: argparse.Namespace, tracer, registry) -> None:
    """Flush the trace exports and print the metrics summary, if requested.

    The one exporter path every command shares: ``--trace`` writes the
    JSONL span file, ``--chrome`` the Chrome trace-event file — the
    ``profile`` command routes its exports through here too, so both
    front doors produce byte-identical artifacts for the same tracer.
    """
    if tracer is not None:
        trace_path = getattr(args, "trace", None)
        if trace_path:
            from repro.obs import write_trace_jsonl

            spans = write_trace_jsonl(tracer, trace_path)
            print(
                f"trace: {spans} spans written to {trace_path}", file=sys.stderr
            )
        chrome_path = getattr(args, "chrome", None)
        if chrome_path:
            from repro.obs import write_chrome_trace

            write_chrome_trace(tracer, chrome_path)
            print(f"chrome trace written to {chrome_path}", file=sys.stderr)
    if registry is not None:
        print("metrics:")
        summary = registry.summary()
        print("  " + summary.replace("\n", "\n  ") if summary else "  (empty)")


def _cmd_classify(args: argparse.Namespace) -> int:
    setting = _load_setting(args.setting)
    report = classify(setting)
    print(f"setting: {setting}")
    print(f"in C_tract: {report.in_ctract}  ({report.subclass()})")
    print(
        f"conditions: 1={report.condition1}  2.1={report.condition2_1}  "
        f"2.2={report.condition2_2}"
    )
    print(f"Σ_t nonempty: {report.has_target_constraints}")
    print(f"disjunctive Σ_ts: {report.has_disjunctive_ts}")
    for violation in report.violations:
        print(f"  violation: {violation}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    import json

    from repro.analysis import (
        CODES,
        AnalysisReport,
        Diagnostic,
        LintRun,
        analyze_scenario,
        analyze_scenario_text,
        analyze_text,
        apply_fixes,
        expand_ignore,
        fix_diff,
        render_json,
        render_text,
    )
    from repro.net import is_scenario_dict, scenario_registry

    ignore = expand_ignore(args.ignore)
    registry = scenario_registry()
    run = LintRun()
    texts: dict[str, str] = {}
    for target in args.settings:
        builder = registry.get(target)
        if builder is not None and not Path(target).exists():
            # A registered scenario name: lint the built scenario (no file
            # to fix, but the findings and exit code are the same).
            run.add(
                target,
                analyze_scenario(builder(0), deltas=args.delta, ignore=ignore),
            )
            continue
        try:
            text = Path(target).read_text()
        except OSError as error:
            run.add(
                target,
                AnalysisReport.build(
                    "",
                    [
                        Diagnostic(
                            "PDE000",
                            "error",
                            f"cannot read file: {error}",
                            rule=CODES["PDE000"].rule,
                        )
                    ],
                    ignore=ignore,
                ),
            )
            continue
        texts[target] = text
        try:
            encoded = json.loads(text)
        except json.JSONDecodeError:
            encoded = None
        if isinstance(encoded, dict) and is_scenario_dict(encoded):
            run.add(
                target, analyze_scenario_text(text, deltas=args.delta, ignore=ignore)
            )
        else:
            run.add(target, analyze_text(text, ignore=ignore))

    if args.fix or args.diff:
        for path, report in run.reports:
            text = texts.get(path)
            if text is None or not report.fixable():
                continue
            fixed, applied, skipped = apply_fixes(text, report.diagnostics)
            if skipped:
                print(
                    f"{path}: note: {skipped} fix(es) skipped "
                    "(overlapping or unlocatable)",
                    file=sys.stderr,
                )
            if not applied:
                continue
            if args.diff:
                print(fix_diff(path, text, fixed), end="")
            if args.fix:
                Path(path).write_text(fixed)
                print(f"{path}: applied {applied} fix(es)", file=sys.stderr)

    if args.format == "json":
        print(render_json(run))
    else:
        print(render_text(run))
    return run.exit_code()


def _cmd_solve(args: argparse.Namespace) -> int:
    setting = _load_setting(args.setting)
    source = _load_instance(args.source)
    target = _load_instance(args.target)
    budget = _build_budget(args)
    tracer, registry = _build_obs(args)
    result = solve(
        setting, source, target, method=args.method, budget=budget,
        tracer=tracer, metrics=registry,
    )
    print(f"solution exists: {result.exists}  (method: {result.method})")
    if not result.decided:
        print(f"status: {result.status}  ({result.reason})")
    for key, value in sorted(result.stats.items()):
        print(f"  {key}: {value}")
    if result.exists:
        if args.json:
            print(dumps_instance(result.solution, indent=2))
        else:
            print(f"witness: {result.solution.pretty()}")
    _finish_obs(args, tracer, registry)
    if not result.decided:
        return EXIT_DEGRADED
    return 0 if result.exists else 1


def _cmd_explain(args: argparse.Namespace) -> int:
    setting = _load_setting(args.setting)
    source = _load_instance(args.source)
    target = _load_instance(args.target)
    explanation = explain(setting, source, target)
    print(f"[{explanation.reason}]")
    print(explanation.narrative)
    return 0 if explanation.exists else 1


def _cmd_certain(args: argparse.Namespace) -> int:
    setting = _load_setting(args.setting)
    source = _load_instance(args.source)
    target = _load_instance(args.target)
    query = parse_query(args.query)
    budget = _build_budget(args)
    tracer, registry = _build_obs(args)
    result = certain_answers(
        setting, query, source, target, budget=budget,
        tracer=tracer, metrics=registry,
    )
    if not result.decided:
        print(
            f"status: {result.status}  ({result.reason}); answers below are "
            "the tuples confirmed certain before the budget ran out"
        )
    if not result.solutions_exist and result.decided:
        print("no solution exists; certain answers are vacuous")
    if query.arity == 0:
        print(f"certain({query}) = {result.boolean_value}")
    else:
        print(f"{len(result.answers)} certain answers of {query}:")
        for row in sorted(result.answers, key=str):
            print("  (" + ", ".join(str(value) for value in row) + ")")
    _finish_obs(args, tracer, registry)
    return 0 if result.decided else EXIT_DEGRADED


def _cmd_describe(args: argparse.Namespace) -> int:
    from repro.report import describe_setting, position_graph_dot, relation_graph_dot

    setting = _load_setting(args.setting)
    if args.dot == "relations":
        print(relation_graph_dot(setting), end="")
    elif args.dot == "positions":
        print(position_graph_dot(setting), end="")
    else:
        print(describe_setting(setting), end="")
    return 0


def _cmd_sync(args: argparse.Namespace) -> int:
    from repro.sync import Stamp, SyncSession

    journal = SessionJournal(args.journal) if args.journal else None
    retry = RetryPolicy(max_attempts=args.retries) if args.retries > 1 else None
    if journal is not None and journal.exists():
        session = SyncSession.resume(journal)
        session.retry = retry
        print(f"resumed from journal at round {session.rounds}")
    else:
        setting = _load_setting(args.setting)
        pinned = _load_instance(args.pinned)
        session = SyncSession(setting, pinned=pinned, journal=journal, retry=retry)

    tracer, registry = _build_obs(args)
    any_rejected = False
    any_degraded = False
    # Delta mode: stamp every round (continuing a resumed watermark) and
    # ship only the difference against the previously applied snapshot;
    # the first round — and any round whose chain broke — goes as a full
    # snapshot.
    epoch, seq = (1, 0)
    if args.delta and session.last_stamp is not None:
        epoch, seq = session.last_stamp
    previous: tuple[Instance, Stamp] | None = None
    wire_facts = 0
    full_facts = 0
    for path in args.snapshots:
        snapshot = _load_instance(path)
        budget = _build_budget(args)  # fresh per round: counters reset
        if not args.delta:
            outcome = session.sync(
                snapshot, budget=budget, tracer=tracer, metrics=registry
            )
        else:
            seq += 1
            stamp = Stamp(epoch, seq)
            full_facts += len(snapshot)
            if previous is None:
                wire_facts += len(snapshot)
                outcome = session.sync(
                    snapshot, budget=budget, tracer=tracer,
                    metrics=registry, stamp=stamp,
                )
            else:
                base_snapshot, base_stamp = previous
                added = snapshot - base_snapshot
                withdrawn = base_snapshot - snapshot
                wire_facts += len(added) + len(withdrawn)
                outcome = session.sync_delta(
                    added, withdrawn, base=base_stamp, stamp=stamp,
                    budget=budget, tracer=tracer, metrics=registry,
                )
                if outcome.chain_broken:
                    print(
                        f"round: delta chain broken at base {base_stamp}; "
                        "falling back to full snapshot"
                    )
                    wire_facts += len(snapshot)
                    outcome = session.sync(
                        snapshot, budget=_build_budget(args), tracer=tracer,
                        metrics=registry, stamp=stamp,
                    )
            if outcome.ok and not outcome.stale:
                previous = (snapshot, stamp)
        if outcome.stale:
            print(f"round (stale): {outcome.reason}")
        elif outcome.ok:
            print(
                f"round {session.rounds}: ok  "
                f"+{len(outcome.added)} -{len(outcome.retracted)} "
                f"(state: {len(outcome.state)} facts, "
                f"attempts: {outcome.attempts})"
            )
        elif outcome.degraded:
            any_degraded = True
            print(
                f"round (degraded): {outcome.status}  [{outcome.reason}] "
                f"(attempts: {outcome.attempts}; state unchanged)"
            )
        else:
            any_rejected = True
            print(f"round (rejected): {outcome.reason} (state unchanged)")
    if args.delta and full_facts:
        saving = (1 - wire_facts / full_facts) * 100
        print(
            f"delta transfer: {wire_facts} facts on wire vs {full_facts} "
            f"full-snapshot ({saving:.0f}% saved)"
        )
    _finish_obs(args, tracer, registry)
    if any_degraded:
        return EXIT_DEGRADED
    return 1 if any_rejected else 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.exceptions import ReproError
    from repro.net import NetworkSimulator, loads_scenario, scenario_registry

    registry = scenario_registry()
    if args.list:
        for name, builder in registry.items():
            print(f"{name:<10s} {builder(0).description}")
        return 0
    builder = registry.get(args.scenario)
    if builder is not None and not Path(args.scenario).exists():
        scenario = builder(args.seed)
    elif Path(args.scenario).exists():
        try:
            scenario = loads_scenario(Path(args.scenario).read_text())
        except (ReproError, ValueError, KeyError, TypeError) as error:
            print(
                f"simulate: cannot load scenario file {args.scenario!r}: {error}",
                file=sys.stderr,
            )
            return 2
    else:
        known = ", ".join(sorted(registry))
        print(
            f"simulate: unknown scenario {args.scenario!r} (known: {known}, "
            "or a scenario JSON file)",
            file=sys.stderr,
        )
        return 2

    if args.lint or args.force:
        # Pre-flight: abstractly interpret the timeline before spending any
        # simulation time.  Error findings mean the run would raise or
        # vacuously "pass" while proving nothing — refuse unless --force.
        from repro.analysis import analyze_scenario

        preflight = analyze_scenario(scenario, deltas=args.delta)
        for diagnostic in preflight:
            print(f"pre-flight: {diagnostic.render()}", file=sys.stderr)
        errors = preflight.errors()
        if errors:
            if args.force:
                print(
                    f"pre-flight: {len(errors)} error(s) overridden by --force",
                    file=sys.stderr,
                )
            else:
                print(
                    f"pre-flight: refusing to run {scenario.name!r}: "
                    f"{len(errors)} error finding(s) (override with --force)",
                    file=sys.stderr,
                )
                return 1
        else:
            print(
                f"pre-flight: ok ({len(preflight.warnings())} warning(s), "
                f"{len(preflight.infos())} info(s))",
                file=sys.stderr,
            )
    tracer, metrics = _build_obs(args)
    try:
        simulator = NetworkSimulator(
            scenario, journal_dir=args.journal_dir, tracer=tracer,
            metrics=metrics, deltas=args.delta,
        )
    except ReproError as error:
        print(f"simulate: {error}", file=sys.stderr)
        return 2
    report = simulator.run()
    if args.log:
        for line in report.log:
            print(line)
        print()
    print(f"scenario: {report.scenario} (seed {report.seed}) — {scenario.description}")
    print(
        f"published {report.published} snapshots to {len(scenario.peers)} peers; "
        f"final stamp {report.final_stamp}"
    )
    stats = report.stats
    print(
        f"transport: sent={stats['sent']} delivered={stats['delivered']} "
        f"dropped={stats['dropped']} partition_dropped={stats['partition_dropped']} "
        f"duplicated={stats['duplicated']} reordered={stats['reordered']} "
        f"facts_sent={stats['facts_sent']}"
    )
    print(
        f"protocol: applied={stats['applied']} stale={stats['stale']} "
        f"rejected={stats['rejected']} degraded={stats['degraded']} "
        f"anti_entropy={stats['anti_entropy']}"
    )
    if args.delta:
        print(
            f"deltas: published={stats['delta_published']} "
            f"applied={stats['delta_applied']} "
            f"chain_broken={stats['chain_broken']} "
            f"fallback={stats['delta_fallback']}"
        )
    if scenario.topology:
        print(f"relay: forwarded={stats.get('forwarded', 0)}")
        for link, score in sorted(simulator.scorer.snapshot().items()):
            print(f"  {link:<24s} score={score:.2f}")
    convergence = report.convergence
    for peer, ok in sorted(convergence.peers.items()):
        print(f"  {peer}: {'converged' if ok else 'DIVERGED'}")
    for peer in convergence.unreachable:
        print(f"  {peer}: unreachable (excluded)")
    verdict = str(report.converged)
    if convergence.vacuous:
        verdict += " (vacuously: no reachable peers)"
    print(f"converged: {verdict}")
    _finish_obs(args, tracer, metrics)
    return 0 if report.converged else EXIT_DEGRADED


def _parse_address(text: str):
    """``HOST:PORT`` → a TCP pair, ``unix:PATH`` → a unix-socket path."""
    if text.startswith("unix:"):
        return text[len("unix:"):]
    host, _, port = text.rpartition(":")
    if not host or not port.isdigit():
        raise ValueError(
            f"address {text!r} is neither HOST:PORT nor unix:PATH"
        )
    return (host, int(port))


def _format_address(address) -> str:
    if isinstance(address, str):
        return f"unix:{address}"
    return f"{address[0]}:{address[1]}"


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    from repro.netd import SyncDaemon

    try:
        listen = _parse_address(args.listen)
    except ValueError as error:
        print(f"serve: {error}", file=sys.stderr)
        return 2
    peers = [name.strip() for name in args.peers.split(",") if name.strip()]
    if not peers:
        print("serve: --peers needs at least one peer name", file=sys.stderr)
        return 2
    setting = _load_setting(args.setting)
    tracer, registry = _build_obs(args)

    async def serve() -> bool:
        daemon = SyncDaemon(
            setting,
            peers,
            listen=listen,
            journal_dir=args.journal_dir,
            node_cap=args.budget,
            round_deadline=args.deadline,
            heartbeat_interval=args.heartbeat,
            idle_timeout=args.idle_timeout,
            max_queue=args.max_queue,
            drain_deadline=args.drain,
            tracer=tracer,
            metrics=registry,
        )
        await daemon.start()
        for name in peers:
            watermark = daemon.watermark(name)
            if watermark is not None:
                print(f"resumed {name} at stamp {watermark}", flush=True)
        # Last line before readiness, parseable by scripts (and the CLI
        # tests): the bound address.
        print(f"serving on {_format_address(daemon.address)}", flush=True)

        loop = asyncio.get_running_loop()
        stopping = asyncio.Event()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(signum, stopping.set)
        await stopping.wait()
        print("draining...", flush=True)
        return await daemon.stop(drain=True)

    drained = asyncio.run(serve())
    print(f"stopped ({'drained' if drained else 'drain deadline exceeded'})")
    _finish_obs(args, tracer, registry)
    return 0 if drained else EXIT_DEGRADED


def _cmd_connect(args: argparse.Namespace) -> int:
    import asyncio

    from repro.exceptions import ReproError
    from repro.netd import PublisherClient
    from repro.sync import Stamp

    try:
        address = _parse_address(args.address)
    except ValueError as error:
        print(f"connect: {error}", file=sys.stderr)
        return 2
    # The setting is loaded for validation parity with the daemon side
    # (and to fail fast on a bad file before dialing).
    _load_setting(args.setting)
    snapshots = [_load_instance(path) for path in args.snapshots]
    tracer, registry = _build_obs(args)

    async def publish() -> list[str]:
        client = PublisherClient(
            address,
            args.peer,
            sender=args.sender,
            deltas=args.delta,
            ack_timeout=args.ack_timeout,
            tracer=tracer,
            metrics=registry,
        )
        await client.start()
        outcomes = []
        try:
            for index, snapshot in enumerate(snapshots):
                stamp = Stamp(args.epoch, index + 1)
                outcome = await client.publish(stamp, snapshot)
                outcomes.append(outcome)
                print(f"round stamp={stamp}: {outcome}", flush=True)
        finally:
            await client.close()
        return outcomes

    try:
        outcomes = asyncio.run(publish())
    except ReproError as error:
        print(f"connect: {error}", file=sys.stderr)
        return EXIT_DEGRADED
    _finish_obs(args, tracer, registry)
    if any(outcome not in ("applied", "stale") for outcome in outcomes):
        rejected = any(outcome == "rejected" for outcome in outcomes)
        return 1 if rejected else EXIT_DEGRADED
    return 0


def _profile_run(workload, size: int):
    """Run one profiling workload under a fresh tracer.

    Returns ``(tracer, result)`` where ``result`` is the
    :class:`repro.solver.results.SolveResult` of the traced solve.
    """
    from repro.obs import MetricsRegistry, Tracer

    setting, source, target = workload.build(size)
    tracer = Tracer()
    result = solve(setting, source, target, tracer=tracer, metrics=MetricsRegistry())
    return tracer, result


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.obs import aggregate_spans, render_span_tree
    from repro.workloads import profile_workloads

    registry = profile_workloads()
    if args.list:
        for workload in registry.values():
            print(
                f"{workload.name:<14s} [{workload.kind}] "
                f"size={workload.default_size}  {workload.description}"
            )
        return 0

    if args.check:
        # Smoke-run every workload at its tiny size; fail loudly if any
        # solve errors or produces an empty trace.
        for workload in registry.values():
            tracer, result = _profile_run(workload, workload.smoke_size)
            spans = sum(1 for root in tracer.roots for _ in root.walk())
            print(
                f"{workload.name}: ok  method={result.method} "
                f"exists={result.exists} spans={spans}"
            )
            if spans == 0:
                print(f"{workload.name}: empty trace", file=sys.stderr)
                return 2
        return 0

    if not args.workload:
        print(
            "profile: a workload name is required (or --list / --check)",
            file=sys.stderr,
        )
        return 2
    workload = registry.get(args.workload)
    if workload is None:
        known = ", ".join(sorted(registry))
        print(f"profile: unknown workload {args.workload!r} (known: {known})",
              file=sys.stderr)
        return 2

    size = args.size if args.size is not None else workload.default_size
    tracer, result = _profile_run(workload, size)
    print(f"workload: {workload.name} (size {size}) — {workload.description}")
    print(f"solution exists: {result.exists}  (method: {result.method})")
    print()
    print(render_span_tree(tracer))
    print()
    entries = aggregate_spans(tracer, top=args.top)
    width = max((len(entry["name"]) for entry in entries), default=4)
    print(f"top {len(entries)} spans by self time:")
    print(f"  {'span':<{width}s}  count  total(ms)  self(ms)")
    for entry in entries:
        print(
            f"  {entry['name']:<{width}s}  {entry['count']:5d}  "
            f"{entry['total_s'] * 1000:9.2f}  {entry['self_s'] * 1000:8.2f}"
        )
    _finish_obs(args, tracer, None)
    return 0


def _cmd_obs_stitch(args: argparse.Namespace) -> int:
    from repro.exceptions import TraceError
    from repro.obs import stitch

    traces: dict[str, str] = {}
    for item in args.traces:
        if "=" in item:
            label, _, path = item.partition("=")
        else:
            label, path = Path(item).stem, item
        base, suffix = label, 2
        while label in traces:
            label = f"{base}-{suffix}"
            suffix += 1
        traces[label] = path
    try:
        timeline = stitch(traces)
    except TraceError as error:
        print(f"obs stitch: {error}", file=sys.stderr)
        return 2
    print(timeline.render())
    if timeline.corrupt_lines:
        print(
            f"({timeline.corrupt_lines} corrupt line(s) skipped)",
            file=sys.stderr,
        )
    if args.chrome:
        timeline.write_chrome(args.chrome)
        print(f"chrome trace written to {args.chrome}", file=sys.stderr)
    return 0


def _cmd_obs_postmortem(args: argparse.Namespace) -> int:
    from repro.exceptions import TraceError
    from repro.obs import read_postmortem

    try:
        postmortem = read_postmortem(args.file)
    except TraceError as error:
        print(f"obs postmortem: {error}", file=sys.stderr)
        return 2
    print(f"post-mortem: {postmortem.path}")
    print(
        f"reason: {postmortem.reason}  recorded: {postmortem.recorded}  "
        f"dropped: {postmortem.dropped}"
    )
    events = postmortem.last(args.last)
    if len(events) < len(postmortem.events):
        print(f"(showing the last {len(events)} of {len(postmortem.events)})")
    for event in events:
        attributes = " ".join(
            f"{key}={value}"
            for key, value in sorted(event["attributes"].items())
        )
        line = f"  t={event['at']:.3f} {event['name']}"
        print(f"{line} {attributes}" if attributes else line)
    return 0


def _cmd_obs_top(args: argparse.Namespace) -> int:
    import asyncio
    import json

    from repro.netd import fetch_stats

    addresses = []
    for text in args.addresses:
        try:
            addresses.append((text, _parse_address(text)))
        except ValueError as error:
            print(f"obs top: {error}", file=sys.stderr)
            return 2

    async def probe() -> dict[str, dict]:
        results: dict[str, dict] = {}
        for text, address in addresses:
            try:
                results[text] = await fetch_stats(address, timeout=args.timeout)
            except Exception as error:  # noqa: BLE001 - report, don't die
                results[text] = {"unreachable": str(error) or type(error).__name__}
        return results

    results = asyncio.run(probe())
    if args.json:
        print(json.dumps(results, indent=2, sort_keys=True))
    degraded = False
    for text, payload in results.items():
        if "unreachable" in payload:
            degraded = True
            if not args.json:
                print(f"{text}: unreachable ({payload['unreachable']})")
            continue
        if args.json:
            continue
        print(f"{text}: state={payload.get('state', '?')}")
        for name, peer in sorted(payload.get("peers", {}).items()):
            watermark = peer.get("watermark")
            mark = (
                f"{watermark[0]}.{watermark[1]}"
                if isinstance(watermark, list) and len(watermark) == 2
                else "-"
            )
            flags = "  CRASHED" if peer.get("crashed") else ""
            print(
                f"  {name:<12s} watermark={mark:<8s} "
                f"lag={peer.get('lag', 0):<4d} "
                f"queue={peer.get('queue_depth', 0)}{flags}"
            )
        for link, score in sorted(payload.get("scores", {}).items()):
            print(f"  {link:<24s} score={score:.2f}")
    return EXIT_DEGRADED if degraded else 0


def _cmd_chase(args: argparse.Namespace) -> int:
    setting = _load_setting(args.setting)
    source = _load_instance(args.source)
    target = _load_instance(args.target)
    j_can, i_can, stats = canonical_instances(setting, source, target)
    print("J_can (Σ_st-chase of (I, J), target part):")
    print("  " + (j_can.pretty().replace("\n", "\n  ") or "(empty)"))
    print("I_can (Σ_ts-chase of (J_can, ∅), source part):")
    print("  " + (i_can.pretty().replace("\n", "\n  ") or "(empty)"))
    for key, value in sorted(stats.items()):
        print(f"  {key}: {value}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Peer data exchange: solve, classify, chase, explain.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    classify_cmd = commands.add_parser("classify", help="C_tract classification")
    classify_cmd.add_argument("setting")
    classify_cmd.set_defaults(handler=_cmd_classify)

    lint_cmd = commands.add_parser(
        "lint", help="static diagnostics for settings and scenarios (exit 0/1/2)"
    )
    lint_cmd.add_argument(
        "settings", nargs="+",
        help="setting JSON files, scenario JSON files, or scenario names",
    )
    lint_cmd.add_argument(
        "--format", choices=["text", "json"], default="text",
        help="output format (default: text)",
    )
    lint_cmd.add_argument(
        "--ignore", default="", metavar="CODES",
        help="comma-separated diagnostic codes to suppress (e.g. PDE101,PDE203)",
    )
    lint_cmd.add_argument(
        "--fix", action="store_true",
        help="apply the machine-applicable fixes in place",
    )
    lint_cmd.add_argument(
        "--diff", action="store_true",
        help="print a unified diff of the fixes without applying them",
    )
    lint_cmd.add_argument(
        "--delta", action="store_true",
        help="also check delta-transfer consequences of scenarios (PDE308)",
    )
    lint_cmd.set_defaults(handler=_cmd_lint)

    solve_cmd = commands.add_parser("solve", help="decide SOL(P)(I, J)")
    solve_cmd.add_argument("setting")
    solve_cmd.add_argument("source")
    solve_cmd.add_argument("target", nargs="?")
    solve_cmd.add_argument(
        "--method",
        choices=["auto", "tractable", "valuation", "branching"],
        default="auto",
    )
    solve_cmd.add_argument("--json", action="store_true", help="JSON witness output")
    _add_budget_options(solve_cmd)
    _add_obs_options(solve_cmd)
    solve_cmd.set_defaults(handler=_cmd_solve)

    explain_cmd = commands.add_parser("explain", help="explain the outcome")
    explain_cmd.add_argument("setting")
    explain_cmd.add_argument("source")
    explain_cmd.add_argument("target", nargs="?")
    explain_cmd.set_defaults(handler=_cmd_explain)

    certain_cmd = commands.add_parser("certain", help="certain answers of a query")
    certain_cmd.add_argument("setting")
    certain_cmd.add_argument("source")
    certain_cmd.add_argument("target", nargs="?")
    certain_cmd.add_argument("--query", required=True)
    _add_budget_options(certain_cmd)
    _add_obs_options(certain_cmd)
    certain_cmd.set_defaults(handler=_cmd_certain)

    sync_cmd = commands.add_parser(
        "sync", help="replay sync rounds (exit 0 ok / 1 rejected / 4 degraded)"
    )
    sync_cmd.add_argument("setting")
    sync_cmd.add_argument("snapshots", nargs="+", help="source snapshots, in order")
    sync_cmd.add_argument("--pinned", help="target peer's own facts")
    sync_cmd.add_argument(
        "--journal", help="crash-safe journal file; resumes when it exists"
    )
    sync_cmd.add_argument(
        "--retries", type=int, default=1, metavar="N",
        help="attempts per round, with budget escalation (default: 1)",
    )
    sync_cmd.add_argument(
        "--delta", action="store_true",
        help=(
            "stamp rounds and ship only the (added, withdrawn) difference "
            "between consecutive snapshots, with full-snapshot fallback"
        ),
    )
    _add_budget_options(sync_cmd)
    _add_obs_options(sync_cmd)
    sync_cmd.set_defaults(handler=_cmd_sync)

    simulate_cmd = commands.add_parser(
        "simulate",
        help="run a peer-network scenario to convergence (exit 0 / 4 diverged)",
    )
    simulate_cmd.add_argument(
        "scenario", nargs="?", default="registry",
        help="scenario name or scenario JSON file (see --list; default: registry)",
    )
    simulate_cmd.add_argument(
        "--lint", action="store_true",
        help=(
            "pre-flight the scenario with the static analyzer; error "
            "findings refuse the run with exit 1"
        ),
    )
    simulate_cmd.add_argument(
        "--force", action="store_true",
        help="run despite pre-flight error findings",
    )
    simulate_cmd.add_argument(
        "--seed", type=int, default=0, metavar="N",
        help="scenario seed; same seed replays byte-for-byte (default: 0)",
    )
    simulate_cmd.add_argument(
        "--delta", action="store_true",
        help=(
            "enable delta transfer: publishes ship (added, withdrawn) keyed "
            "on the previous stamp, falling back to full snapshots on a "
            "broken chain"
        ),
    )
    simulate_cmd.add_argument(
        "--log", action="store_true", help="print the deterministic event log",
    )
    simulate_cmd.add_argument(
        "--journal-dir", metavar="DIR",
        help="directory for per-peer journals (crash scenarios resume from it)",
    )
    simulate_cmd.add_argument(
        "--list", action="store_true", help="list the known scenarios and exit",
    )
    _add_obs_options(simulate_cmd)
    simulate_cmd.set_defaults(handler=_cmd_simulate)

    serve_cmd = commands.add_parser(
        "serve",
        help="run the netd sync daemon (exit 0 drained / 4 drain expired)",
    )
    serve_cmd.add_argument("setting")
    serve_cmd.add_argument(
        "--peers", required=True, metavar="A,B,C",
        help="comma-separated names of the hosted subscriber peers",
    )
    serve_cmd.add_argument(
        "--listen", default="127.0.0.1:0", metavar="HOST:PORT|unix:PATH",
        help=(
            "listen address; port 0 picks a free port, printed on startup "
            "(default: 127.0.0.1:0)"
        ),
    )
    serve_cmd.add_argument(
        "--journal-dir", metavar="DIR",
        help="per-peer journal directory; existing journals are resumed",
    )
    serve_cmd.add_argument(
        "--heartbeat", type=float, default=1.0, metavar="SECONDS",
        help="heartbeat interval on idle connections (default: 1.0)",
    )
    serve_cmd.add_argument(
        "--idle-timeout", type=float, default=None, metavar="SECONDS",
        help="close connections silent this long (default: 4x heartbeat)",
    )
    serve_cmd.add_argument(
        "--max-queue", type=int, default=32, metavar="N",
        help="bound on send and ingest queues per connection (default: 32)",
    )
    serve_cmd.add_argument(
        "--drain", type=float, default=5.0, metavar="SECONDS",
        help="graceful-shutdown deadline for in-flight rounds (default: 5.0)",
    )
    _add_budget_options(serve_cmd)
    _add_obs_options(serve_cmd)
    serve_cmd.set_defaults(handler=_cmd_serve)

    connect_cmd = commands.add_parser(
        "connect",
        help="publish snapshots to a running daemon (exit 0/1/4)",
    )
    connect_cmd.add_argument("address", metavar="HOST:PORT|unix:PATH")
    connect_cmd.add_argument("setting")
    connect_cmd.add_argument(
        "snapshots", nargs="+", help="source snapshots, in publish order"
    )
    connect_cmd.add_argument(
        "--peer", required=True, help="the hosted peer to publish to"
    )
    connect_cmd.add_argument(
        "--sender", default="origin", help="publisher name (default: origin)"
    )
    connect_cmd.add_argument(
        "--epoch", type=int, default=1, metavar="N",
        help="stamp epoch; bump after a publisher restart (default: 1)",
    )
    connect_cmd.add_argument(
        "--delta", action="store_true",
        help="ship (added, withdrawn) increments with snapshot fallback",
    )
    connect_cmd.add_argument(
        "--ack-timeout", type=float, default=5.0, metavar="SECONDS",
        help="per-round wait for the daemon's ACK (default: 5.0)",
    )
    _add_obs_options(connect_cmd)
    connect_cmd.set_defaults(handler=_cmd_connect)

    describe_cmd = commands.add_parser(
        "describe", help="markdown analysis report / DOT graphs"
    )
    describe_cmd.add_argument("setting")
    describe_cmd.add_argument(
        "--dot", choices=["relations", "positions"], default=None,
        help="emit a Graphviz graph instead of the markdown report",
    )
    describe_cmd.set_defaults(handler=_cmd_describe)

    profile_cmd = commands.add_parser(
        "profile", help="run a named workload under the tracer"
    )
    profile_cmd.add_argument(
        "workload", nargs="?",
        help="workload name (see --list): genomics, procurement, clique",
    )
    profile_cmd.add_argument(
        "--size", type=int, help="workload size (default: per-workload)",
    )
    profile_cmd.add_argument(
        "--top", type=int, default=10, metavar="K",
        help="show the K hottest spans by self time (default: 10)",
    )
    profile_cmd.add_argument(
        "--trace", metavar="PATH", help="also write the JSONL trace to PATH",
    )
    profile_cmd.add_argument(
        "--chrome", metavar="PATH",
        help="also write a Chrome trace-event file (chrome://tracing)",
    )
    profile_cmd.add_argument(
        "--list", action="store_true", help="list the known workloads and exit",
    )
    profile_cmd.add_argument(
        "--check", action="store_true",
        help="smoke-run every workload at its smallest size",
    )
    profile_cmd.set_defaults(handler=_cmd_profile)

    obs_cmd = commands.add_parser(
        "obs", help="distributed-observability toolbox (stitch/postmortem/top)"
    )
    obs_commands = obs_cmd.add_subparsers(dest="obs_command", required=True)

    stitch_cmd = obs_commands.add_parser(
        "stitch", help="merge per-peer JSONL traces into one timeline"
    )
    stitch_cmd.add_argument(
        "traces", nargs="+", metavar="[LABEL=]PATH",
        help="trace files; LABEL names the lane (default: the file stem)",
    )
    stitch_cmd.add_argument(
        "--chrome", metavar="PATH",
        help="also write the stitched Chrome trace (one lane per peer)",
    )
    stitch_cmd.set_defaults(handler=_cmd_obs_stitch)

    postmortem_cmd = obs_commands.add_parser(
        "postmortem", help="render a crash flight-recorder file"
    )
    postmortem_cmd.add_argument("file", help="a *.postmortem.jsonl file")
    postmortem_cmd.add_argument(
        "--last", type=int, default=50, metavar="N",
        help="show the final N events (default: 50)",
    )
    postmortem_cmd.set_defaults(handler=_cmd_obs_postmortem)

    top_cmd = obs_commands.add_parser(
        "top", help="poll running daemons for live watermark/lag stats"
    )
    top_cmd.add_argument(
        "addresses", nargs="+", metavar="HOST:PORT|unix:PATH",
        help="daemon addresses to poll",
    )
    top_cmd.add_argument(
        "--timeout", type=float, default=5.0, metavar="SECONDS",
        help="per-daemon STATS reply wait (default: 5.0)",
    )
    top_cmd.add_argument(
        "--json", action="store_true", help="machine-readable JSON output",
    )
    top_cmd.set_defaults(handler=_cmd_obs_top)

    chase_cmd = commands.add_parser("chase", help="show J_can and I_can")
    chase_cmd.add_argument("setting")
    chase_cmd.add_argument("source")
    chase_cmd.add_argument("target", nargs="?")
    chase_cmd.set_defaults(handler=_cmd_chase)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
