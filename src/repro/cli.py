"""Command-line interface for the peer data exchange library.

Usage (after ``pip install -e .``)::

    python -m repro.cli classify  setting.json
    python -m repro.cli lint      setting.json [more.json ...] [--format text|json]
    python -m repro.cli describe  setting.json [--dot relations|positions]
    python -m repro.cli solve     setting.json source.txt [target.txt]
    python -m repro.cli explain   setting.json source.txt [target.txt]
    python -m repro.cli certain   setting.json source.txt --query "H(x, y)"
    python -m repro.cli chase     setting.json source.txt [target.txt]
    python -m repro.cli sync      setting.json snap1.txt [snap2.txt ...]

Setting files use the JSON format of :mod:`repro.io.serialization`;
instance files use the parser's text syntax (``E(a, b); E(b, c)`` — with
``#`` comments), or JSON when the filename ends in ``.json`` (sniffed
case-insensitively, so ``SETTING.JSON`` works too).

``lint`` exits 0 on clean settings, 1 when the worst finding is a
warning, and 2 on errors — the CI convention.

Governance: ``solve``, ``certain``, and ``sync`` accept ``--deadline
SECONDS`` and ``--budget NODES``, building a non-strict
:class:`repro.runtime.Budget`.  A computation that exhausts its budget
exits with code 4 (degraded: the printed result is partial), distinct
from 1 (a definitive negative answer).  ``sync`` replays one round per
snapshot file, optionally journaling to ``--journal`` for crash-safe
resumption, and exits 4 when any round degraded, else 1 when any round
was rejected, else 0.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.core.instance import Instance
from repro.core.parser import parse_instance, parse_query
from repro.core.setting import PDESetting
from repro.io.serialization import dumps_instance, loads_instance, loads_setting
from repro.runtime import Budget, RetryPolicy, SessionJournal
from repro.solver import certain_answers, solve
from repro.solver.explain import explain
from repro.solver.tractable import canonical_instances
from repro.tractability import classify

__all__ = ["main", "build_parser"]

#: Exit code for degraded (budget-exhausted / deadline / cancelled) results.
EXIT_DEGRADED = 4


def _is_json_path(path: str) -> bool:
    """File-type sniffing by suffix, case-insensitive (``a.JSON`` is JSON)."""
    return Path(path).suffix.lower() == ".json"


def _load_setting(path: str) -> PDESetting:
    # Settings are JSON-only; the sniff exists so a future text format can
    # dispatch here the same way instances do.
    text = Path(path).read_text()
    return loads_setting(text)


def _load_instance(path: str | None) -> Instance:
    if path is None:
        return Instance()
    text = Path(path).read_text()
    if _is_json_path(path):
        return loads_instance(text)
    return parse_instance(text)


def _build_budget(args: argparse.Namespace) -> Budget | None:
    """A non-strict budget from ``--deadline`` / ``--budget``, or None."""
    deadline = getattr(args, "deadline", None)
    node_cap = getattr(args, "budget", None)
    if deadline is None and node_cap is None:
        return None
    return Budget(wall_time_s=deadline, node_cap=node_cap, strict=False)


def _add_budget_options(command: argparse.ArgumentParser) -> None:
    command.add_argument(
        "--deadline", type=float, metavar="SECONDS",
        help="wall-clock deadline; on expiry the result degrades (exit 4)",
    )
    command.add_argument(
        "--budget", type=int, metavar="NODES",
        help="search-node cap; on exhaustion the result degrades (exit 4)",
    )


def _cmd_classify(args: argparse.Namespace) -> int:
    setting = _load_setting(args.setting)
    report = classify(setting)
    print(f"setting: {setting}")
    print(f"in C_tract: {report.in_ctract}  ({report.subclass()})")
    print(
        f"conditions: 1={report.condition1}  2.1={report.condition2_1}  "
        f"2.2={report.condition2_2}"
    )
    print(f"Σ_t nonempty: {report.has_target_constraints}")
    print(f"disjunctive Σ_ts: {report.has_disjunctive_ts}")
    for violation in report.violations:
        print(f"  violation: {violation}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis import LintRun, analyze_text, render_json, render_text

    run = LintRun()
    for path in args.settings:
        try:
            text = Path(path).read_text()
        except OSError as error:
            from repro.analysis import AnalysisReport, Diagnostic

            run.add(
                path,
                AnalysisReport.build(
                    "", [Diagnostic("PDE000", "error", f"cannot read file: {error}")]
                ),
            )
            continue
        run.add(path, analyze_text(text))
    if args.format == "json":
        print(render_json(run))
    else:
        print(render_text(run))
    return run.exit_code()


def _cmd_solve(args: argparse.Namespace) -> int:
    setting = _load_setting(args.setting)
    source = _load_instance(args.source)
    target = _load_instance(args.target)
    budget = _build_budget(args)
    result = solve(setting, source, target, method=args.method, budget=budget)
    print(f"solution exists: {result.exists}  (method: {result.method})")
    if not result.decided:
        print(f"status: {result.status}  ({result.reason})")
    for key, value in sorted(result.stats.items()):
        print(f"  {key}: {value}")
    if result.exists:
        if args.json:
            print(dumps_instance(result.solution, indent=2))
        else:
            print(f"witness: {result.solution.pretty()}")
    if not result.decided:
        return EXIT_DEGRADED
    return 0 if result.exists else 1


def _cmd_explain(args: argparse.Namespace) -> int:
    setting = _load_setting(args.setting)
    source = _load_instance(args.source)
    target = _load_instance(args.target)
    explanation = explain(setting, source, target)
    print(f"[{explanation.reason}]")
    print(explanation.narrative)
    return 0 if explanation.exists else 1


def _cmd_certain(args: argparse.Namespace) -> int:
    setting = _load_setting(args.setting)
    source = _load_instance(args.source)
    target = _load_instance(args.target)
    query = parse_query(args.query)
    budget = _build_budget(args)
    result = certain_answers(setting, query, source, target, budget=budget)
    if not result.decided:
        print(
            f"status: {result.status}  ({result.reason}); answers below are "
            "the tuples confirmed certain before the budget ran out"
        )
    if not result.solutions_exist and result.decided:
        print("no solution exists; certain answers are vacuous")
    if query.arity == 0:
        print(f"certain({query}) = {result.boolean_value}")
    else:
        print(f"{len(result.answers)} certain answers of {query}:")
        for row in sorted(result.answers, key=str):
            print("  (" + ", ".join(str(value) for value in row) + ")")
    return 0 if result.decided else EXIT_DEGRADED


def _cmd_describe(args: argparse.Namespace) -> int:
    from repro.report import describe_setting, position_graph_dot, relation_graph_dot

    setting = _load_setting(args.setting)
    if args.dot == "relations":
        print(relation_graph_dot(setting), end="")
    elif args.dot == "positions":
        print(position_graph_dot(setting), end="")
    else:
        print(describe_setting(setting), end="")
    return 0


def _cmd_sync(args: argparse.Namespace) -> int:
    from repro.sync import SyncSession

    journal = SessionJournal(args.journal) if args.journal else None
    retry = RetryPolicy(max_attempts=args.retries) if args.retries > 1 else None
    if journal is not None and journal.exists():
        session = SyncSession.resume(journal)
        session.retry = retry
        print(f"resumed from journal at round {session.rounds}")
    else:
        setting = _load_setting(args.setting)
        pinned = _load_instance(args.pinned)
        session = SyncSession(setting, pinned=pinned, journal=journal, retry=retry)

    any_rejected = False
    any_degraded = False
    for path in args.snapshots:
        snapshot = _load_instance(path)
        budget = _build_budget(args)  # fresh per round: counters reset
        outcome = session.sync(snapshot, budget=budget)
        if outcome.ok:
            print(
                f"round {session.rounds}: ok  "
                f"+{len(outcome.added)} -{len(outcome.retracted)} "
                f"(state: {len(outcome.state)} facts, "
                f"attempts: {outcome.attempts})"
            )
        elif outcome.degraded:
            any_degraded = True
            print(
                f"round (degraded): {outcome.status}  [{outcome.reason}] "
                f"(attempts: {outcome.attempts}; state unchanged)"
            )
        else:
            any_rejected = True
            print(f"round (rejected): {outcome.reason} (state unchanged)")
    if any_degraded:
        return EXIT_DEGRADED
    return 1 if any_rejected else 0


def _cmd_chase(args: argparse.Namespace) -> int:
    setting = _load_setting(args.setting)
    source = _load_instance(args.source)
    target = _load_instance(args.target)
    j_can, i_can, stats = canonical_instances(setting, source, target)
    print("J_can (Σ_st-chase of (I, J), target part):")
    print("  " + (j_can.pretty().replace("\n", "\n  ") or "(empty)"))
    print("I_can (Σ_ts-chase of (J_can, ∅), source part):")
    print("  " + (i_can.pretty().replace("\n", "\n  ") or "(empty)"))
    for key, value in sorted(stats.items()):
        print(f"  {key}: {value}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Peer data exchange: solve, classify, chase, explain.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    classify_cmd = commands.add_parser("classify", help="C_tract classification")
    classify_cmd.add_argument("setting")
    classify_cmd.set_defaults(handler=_cmd_classify)

    lint_cmd = commands.add_parser(
        "lint", help="static diagnostics for setting files (exit 0/1/2)"
    )
    lint_cmd.add_argument("settings", nargs="+", help="setting JSON files")
    lint_cmd.add_argument(
        "--format", choices=["text", "json"], default="text",
        help="output format (default: text)",
    )
    lint_cmd.set_defaults(handler=_cmd_lint)

    solve_cmd = commands.add_parser("solve", help="decide SOL(P)(I, J)")
    solve_cmd.add_argument("setting")
    solve_cmd.add_argument("source")
    solve_cmd.add_argument("target", nargs="?")
    solve_cmd.add_argument(
        "--method",
        choices=["auto", "tractable", "valuation", "branching"],
        default="auto",
    )
    solve_cmd.add_argument("--json", action="store_true", help="JSON witness output")
    _add_budget_options(solve_cmd)
    solve_cmd.set_defaults(handler=_cmd_solve)

    explain_cmd = commands.add_parser("explain", help="explain the outcome")
    explain_cmd.add_argument("setting")
    explain_cmd.add_argument("source")
    explain_cmd.add_argument("target", nargs="?")
    explain_cmd.set_defaults(handler=_cmd_explain)

    certain_cmd = commands.add_parser("certain", help="certain answers of a query")
    certain_cmd.add_argument("setting")
    certain_cmd.add_argument("source")
    certain_cmd.add_argument("target", nargs="?")
    certain_cmd.add_argument("--query", required=True)
    _add_budget_options(certain_cmd)
    certain_cmd.set_defaults(handler=_cmd_certain)

    sync_cmd = commands.add_parser(
        "sync", help="replay sync rounds (exit 0 ok / 1 rejected / 4 degraded)"
    )
    sync_cmd.add_argument("setting")
    sync_cmd.add_argument("snapshots", nargs="+", help="source snapshots, in order")
    sync_cmd.add_argument("--pinned", help="target peer's own facts")
    sync_cmd.add_argument(
        "--journal", help="crash-safe journal file; resumes when it exists"
    )
    sync_cmd.add_argument(
        "--retries", type=int, default=1, metavar="N",
        help="attempts per round, with budget escalation (default: 1)",
    )
    _add_budget_options(sync_cmd)
    sync_cmd.set_defaults(handler=_cmd_sync)

    describe_cmd = commands.add_parser(
        "describe", help="markdown analysis report / DOT graphs"
    )
    describe_cmd.add_argument("setting")
    describe_cmd.add_argument(
        "--dot", choices=["relations", "positions"], default=None,
        help="emit a Graphviz graph instead of the markdown report",
    )
    describe_cmd.set_defaults(handler=_cmd_describe)

    chase_cmd = commands.add_parser("chase", help="show J_can and I_can")
    chase_cmd.add_argument("setting")
    chase_cmd.add_argument("source")
    chase_cmd.add_argument("target", nargs="?")
    chase_cmd.set_defaults(handler=_cmd_chase)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
