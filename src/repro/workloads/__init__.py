"""Synthetic workload generators: graphs, random settings, random
instances, the genomics scenario of the paper's Introduction, and the
named profiling workloads behind ``repro.cli profile``."""

from repro.workloads.graphs import (
    bipartite_graph,
    complete_graph,
    cycle_graph,
    erdos_renyi,
    path_graph,
    planted_clique,
)
from repro.workloads.instances import (
    consistent_pair,
    instance_family,
    random_instance,
    random_source,
)
from repro.workloads.profiles import ProfileWorkload, profile_workloads
from repro.workloads.scenarios import (
    generate_genomics_data,
    generate_genomics_feed,
    generate_procurement_data,
    genomics_setting,
    procurement_setting,
)
from repro.workloads.settings import (
    exact_view_setting,
    random_full_st_setting,
    random_glav_setting,
    random_lav_setting,
)

__all__ = [
    "bipartite_graph",
    "complete_graph",
    "cycle_graph",
    "erdos_renyi",
    "path_graph",
    "planted_clique",
    "consistent_pair",
    "instance_family",
    "random_instance",
    "random_source",
    "ProfileWorkload",
    "profile_workloads",
    "generate_genomics_data",
    "generate_genomics_feed",
    "generate_procurement_data",
    "genomics_setting",
    "procurement_setting",
    "exact_view_setting",
    "random_full_st_setting",
    "random_glav_setting",
    "random_lav_setting",
]
