"""Random and structured graph generators for the hardness experiments.

All generators return ``(nodes, edges)`` with undirected edges given once
as ordered pairs; the reduction builders symmetrize them.  A seeded
:class:`random.Random` keeps every experiment reproducible.
"""

from __future__ import annotations

import itertools
import random
from typing import Hashable

__all__ = [
    "erdos_renyi",
    "complete_graph",
    "cycle_graph",
    "path_graph",
    "planted_clique",
    "bipartite_graph",
]

Graph = tuple[list[Hashable], list[tuple[Hashable, Hashable]]]


def erdos_renyi(n: int, p: float, seed: int = 0) -> Graph:
    """An Erdős–Rényi graph ``G(n, p)`` on nodes ``0..n-1``."""
    rng = random.Random(seed)
    nodes = list(range(n))
    edges = [
        (u, v) for u, v in itertools.combinations(nodes, 2) if rng.random() < p
    ]
    return nodes, edges


def complete_graph(n: int) -> Graph:
    """The complete graph ``K_n``."""
    nodes = list(range(n))
    return nodes, list(itertools.combinations(nodes, 2))


def cycle_graph(n: int) -> Graph:
    """The cycle ``C_n`` (even cycles are 2-colorable, odd cycles need 3)."""
    if n < 3:
        raise ValueError("a cycle needs at least 3 nodes")
    nodes = list(range(n))
    return nodes, [(i, (i + 1) % n) for i in range(n)]


def path_graph(n: int) -> Graph:
    """The path ``P_n``."""
    nodes = list(range(n))
    return nodes, [(i, i + 1) for i in range(n - 1)]


def planted_clique(n: int, k: int, p: float, seed: int = 0) -> Graph:
    """An Erdős–Rényi graph with a planted ``k``-clique on random nodes.

    Guarantees a ``k``-clique exists, making it the "yes"-instance
    generator for the Theorem 3 experiments.
    """
    rng = random.Random(seed)
    nodes, edges = erdos_renyi(n, p, seed=rng.randrange(1 << 30))
    members = rng.sample(nodes, k)
    edge_set = set(edges)
    for u, v in itertools.combinations(members, 2):
        if (u, v) not in edge_set and (v, u) not in edge_set:
            edge_set.add((u, v))
    return nodes, sorted(edge_set)


def bipartite_graph(n_left: int, n_right: int, p: float, seed: int = 0) -> Graph:
    """A random bipartite graph (always 2-colorable, never has a triangle)."""
    rng = random.Random(seed)
    left = [("L", i) for i in range(n_left)]
    right = [("R", i) for i in range(n_right)]
    edges = [
        (u, v) for u in left for v in right if rng.random() < p
    ]
    return left + right, edges
