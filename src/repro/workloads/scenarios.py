"""The genomics scenario from the paper's Introduction.

The motivating example: the source peer is an authoritative genomic
database (Swiss-Prot); the target peer is a university database under a
different schema, already populated with its own data.  Periodically the
university imports new Swiss-Prot data, but (a) it cannot write back to
Swiss-Prot, and (b) it restricts the import to data it considers relevant
— which is exactly a PDE setting with constraints in both directions.

We ship a synthetic but structurally faithful rendition:

Source schema (the authoritative peer):
    ``protein(acc, name, organism)`` — curated protein entries;
    ``annotation(acc, go_term)`` — GO-term annotations;
    ``citation(acc, pmid)`` — literature references.

Target schema (the university peer):
    ``local_protein(acc, name, organism)``;
    ``local_annotation(acc, go_term)``;
    ``evidence(acc, pmid, batch)`` — citations tagged with an import batch.

Constraints:
    ``Σ_st``: every source protein must appear locally; every annotation of
    a locally known organism's protein must appear locally; citations are
    imported with an (existential) batch id.
    ``Σ_ts``: the target only accepts proteins, annotations, and evidence
    that the authority actually vouches for (exact-membership
    restrictions, LAV — so the scenario sits inside ``C_tract``).

The data generator can inject "stale" local facts that the authority does
not vouch for, producing inputs with no solution — the situation the
university's curators must repair before an import can succeed.
"""

from __future__ import annotations

import random

from repro.core.instance import Instance
from repro.core.setting import PDESetting

__all__ = [
    "genomics_setting",
    "generate_genomics_data",
    "generate_genomics_feed",
    "procurement_setting",
    "generate_procurement_data",
]


def genomics_setting() -> PDESetting:
    """The Swiss-Prot-style peer data exchange setting of the Introduction."""
    return PDESetting.from_text(
        source={"protein": 3, "annotation": 2, "citation": 2},
        target={"local_protein": 3, "local_annotation": 2, "evidence": 3},
        st="""
            protein(acc, name, org) -> local_protein(acc, name, org)
            protein(acc, name, org), annotation(acc, term) -> local_annotation(acc, term)
            citation(acc, pmid) -> evidence(acc, pmid, batch)
        """,
        ts="""
            local_protein(acc, name, org) -> protein(acc, name, org)
            local_annotation(acc, term) -> annotation(acc, term)
            evidence(acc, pmid, batch) -> citation(acc, pmid)
        """,
        name="genomics-sync",
    )


def generate_genomics_data(
    proteins: int = 20,
    annotations_per_protein: int = 2,
    citations_per_protein: int = 1,
    local_fraction: float = 0.3,
    stale_local_facts: int = 0,
    seed: int = 0,
) -> tuple[Instance, Instance]:
    """Generate a synthetic ``(source, target)`` pair for the scenario.

    Args:
        proteins: number of source protein entries.
        annotations_per_protein: GO annotations per entry.
        citations_per_protein: literature references per entry.
        local_fraction: fraction of authority data already present locally.
        stale_local_facts: number of local facts the authority does *not*
            vouch for; any positive number makes the input unsolvable
            (the target refuses its own stale data under ``Σ_ts``).
        seed: RNG seed.

    Returns:
        ``(source, target)`` instances for :func:`genomics_setting`.
    """
    rng = random.Random(seed)
    organisms = ["human", "mouse", "yeast", "ecoli"]
    source_rows: dict[str, list[tuple]] = {"protein": [], "annotation": [], "citation": []}
    target_rows: dict[str, list[tuple]] = {
        "local_protein": [],
        "local_annotation": [],
        "evidence": [],
    }

    for index in range(proteins):
        acc = f"P{index:05d}"
        name = f"PROT_{index}"
        organism = rng.choice(organisms)
        source_rows["protein"].append((acc, name, organism))
        if rng.random() < local_fraction:
            target_rows["local_protein"].append((acc, name, organism))
        for a in range(annotations_per_protein):
            term = f"GO:{rng.randint(1000, 9999):07d}"
            source_rows["annotation"].append((acc, term))
            if rng.random() < local_fraction:
                target_rows["local_annotation"].append((acc, term))
        for c in range(citations_per_protein):
            pmid = f"PMID{rng.randint(10_000, 99_999)}"
            source_rows["citation"].append((acc, pmid))
            if rng.random() < local_fraction:
                target_rows["evidence"].append((acc, pmid, f"batch{rng.randint(0, 3)}"))

    for index in range(stale_local_facts):
        # A protein the authority has since withdrawn: no matching source
        # fact exists, so Σ_ts can never be satisfied.
        target_rows["local_protein"].append(
            (f"STALE{index:04d}", f"WITHDRAWN_{index}", "unknown")
        )

    return (
        Instance.from_tuples(source_rows),
        Instance.from_tuples(target_rows),
    )


def generate_genomics_feed(
    rounds: int = 5,
    proteins: int = 10,
    churn: float = 0.2,
    annotations_per_protein: int = 1,
    seed: int = 0,
) -> list[Instance]:
    """A sequence of authoritative source snapshots for multi-round sync.

    Models the paper's periodic-publication scenario over time: the
    authority starts with ``proteins`` curated entries and, each round,
    withdraws a ``churn`` fraction of the live entries (curation removes
    them) and publishes roughly ``proteins / rounds`` new ones.  Every
    snapshot is the authority's *full* current state — exactly what a
    :class:`~repro.sync.SyncSession` (or a :mod:`repro.net` peer) ingests
    per round — so later snapshots absorb dropped earlier ones.

    A protein's facts are derived from its index alone (seeded per
    entry), so an entry publishes identically in every snapshot that
    contains it; only membership churns.

    Returns:
        one source :class:`Instance` per round, for
        :func:`genomics_setting`.
    """
    if rounds < 1:
        raise ValueError("a feed needs at least one round")
    if not 0.0 <= churn <= 1.0:
        raise ValueError(f"churn must be in [0, 1], got {churn}")
    rng = random.Random(seed)
    organisms = ["human", "mouse", "yeast", "ecoli"]

    def entry_rows(index: int) -> dict[str, list[tuple]]:
        entry_rng = random.Random(f"{seed}:protein:{index}")
        acc = f"P{index:05d}"
        rows: dict[str, list[tuple]] = {
            "protein": [(acc, f"PROT_{index}", entry_rng.choice(organisms))],
            "annotation": [],
            "citation": [(acc, f"PMID{entry_rng.randint(10_000, 99_999)}")],
        }
        for _ in range(annotations_per_protein):
            rows["annotation"].append((acc, f"GO:{entry_rng.randint(1000, 9999):07d}"))
        return rows

    live = list(range(proteins))
    next_index = proteins
    additions_per_round = max(1, proteins // rounds)
    feed: list[Instance] = []
    for round_number in range(rounds):
        if round_number > 0:
            withdrawn = rng.sample(live, k=min(len(live) - 1, int(len(live) * churn)))
            live = [index for index in live if index not in set(withdrawn)]
            for _ in range(additions_per_round):
                live.append(next_index)
                next_index += 1
        snapshot_rows: dict[str, list[tuple]] = {
            "protein": [], "annotation": [], "citation": [],
        }
        for index in live:
            for relation, rows in entry_rows(index).items():
                snapshot_rows[relation].extend(rows)
        feed.append(Instance.from_tuples(snapshot_rows))
    return feed


def procurement_setting() -> PDESetting:
    """A compliance scenario: a regulator feeds a manufacturer's database.

    The source peer is a regulator's registry (certifications and audits);
    the target peer is the manufacturer's procurement database.  The
    manufacturer imports approved-vendor records, but its own purchase
    orders (target-only facts) must be *backed* by regulator audits — a
    target-to-source restriction — and a target egd enforces one active
    batch per (supplier, part) order line.

    The target egd takes the setting out of ``C_tract`` (target
    constraints are present), so this scenario exercises the generic
    valuation-search path on realistic-looking data.
    """
    return PDESetting.from_text(
        source={"certified": 2, "audited": 2, "recalled": 1},
        target={"approved_vendor": 2, "order_line": 3},
        st="""
            certified(supplier, standard) -> approved_vendor(supplier, standard)
        """,
        ts="""
            approved_vendor(supplier, standard) -> certified(supplier, standard)
            order_line(supplier, part, batch) -> audited(supplier, year)
        """,
        t="""
            order_line(supplier, part, batch), order_line(supplier, part, batch2) -> batch = batch2
        """,
        name="procurement-compliance",
    )


def generate_procurement_data(
    suppliers: int = 10,
    parts_per_supplier: int = 2,
    unaudited_orders: int = 0,
    seed: int = 0,
) -> tuple[Instance, Instance]:
    """Generate a ``(source, target)`` pair for the procurement scenario.

    Args:
        suppliers: number of certified suppliers in the registry.
        parts_per_supplier: order lines per supplier in the target.
        unaudited_orders: order lines referencing suppliers the regulator
            has never audited; any positive number makes the input
            unsolvable (the audit-backing constraint cannot be met).
        seed: RNG seed.
    """
    rng = random.Random(seed)
    standards = ["iso9001", "iso14001", "as9100"]
    source_rows: dict[str, list[tuple]] = {"certified": [], "audited": [], "recalled": []}
    target_rows: dict[str, list[tuple]] = {"approved_vendor": [], "order_line": []}

    for index in range(suppliers):
        supplier = f"sup{index:03d}"
        source_rows["certified"].append((supplier, rng.choice(standards)))
        source_rows["audited"].append((supplier, 2020 + rng.randint(0, 5)))
        for part_index in range(parts_per_supplier):
            part = f"part{index:03d}_{part_index}"
            batch = f"batch{rng.randint(100, 999)}"
            target_rows["order_line"].append((supplier, part, batch))

    for index in range(unaudited_orders):
        target_rows["order_line"].append(
            (f"ghost{index:02d}", f"gpart{index:02d}", "batch000")
        )

    return (
        Instance.from_tuples(source_rows),
        Instance.from_tuples(target_rows),
    )
