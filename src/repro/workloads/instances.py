"""Random instance generators for PDE settings.

Two generation modes matter for the experiments:

* **unconstrained** random instances (:func:`random_instance`), which for a
  setting with target-to-source constraints are frequently unsatisfiable —
  these exercise the "no solution" path;
* **satisfiable-by-construction** inputs (:func:`consistent_pair`), built
  by sampling a source instance, chasing the source-to-target dependencies,
  grounding the nulls into source values, and keeping only target facts
  that respect ``Σ_ts`` — these exercise the "solution exists" path at
  scale, which is what the tractable-algorithm benchmarks need.
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.core.chase import chase
from repro.core.instance import Instance
from repro.core.atoms import Fact
from repro.core.schema import Schema
from repro.core.setting import PDESetting
from repro.core.terms import Constant, InstanceTerm, is_null

__all__ = ["random_instance", "random_source", "consistent_pair"]


def random_instance(
    schema: Schema,
    domain_size: int = 8,
    facts_per_relation: int = 6,
    seed: int = 0,
    prefix: str = "c",
) -> Instance:
    """A random ground instance over ``schema``.

    Values are drawn uniformly from a pool of ``domain_size`` constants
    named ``{prefix}0 .. {prefix}{domain_size-1}``.
    """
    rng = random.Random(seed)
    pool = [Constant(f"{prefix}{i}") for i in range(domain_size)]
    instance = Instance(schema=schema)
    for relation in schema:
        for _ in range(facts_per_relation):
            instance.add(
                Fact(relation.name, [rng.choice(pool) for _ in range(relation.arity)])
            )
    return instance


def random_source(
    setting: PDESetting,
    domain_size: int = 8,
    facts_per_relation: int = 6,
    seed: int = 0,
) -> Instance:
    """A random ground source instance for ``setting``."""
    return random_instance(
        setting.source_schema, domain_size, facts_per_relation, seed=seed
    )


def _ground_nulls(instance: Instance, pool: list[InstanceTerm], rng: random.Random) -> Instance:
    """Replace every null of ``instance`` by a random pool value."""
    mapping = {null: rng.choice(pool) for null in instance.nulls()}
    return instance.rename(mapping)


def consistent_pair(
    setting: PDESetting,
    domain_size: int = 8,
    facts_per_relation: int = 6,
    target_keep: float = 0.5,
    seed: int = 0,
) -> tuple[Instance, Instance]:
    """A ``(source, target)`` pair biased toward having a solution.

    The source is random; a candidate target is derived by chasing the
    source with ``Σ_st`` and grounding the resulting nulls into source
    values, then a random subset of candidate facts that do not create
    unsatisfiable ``Σ_ts`` premises is kept as the initial target ``J``.
    The pair is *biased* toward satisfiability, not guaranteed — callers
    that need a guarantee should check with the solver.
    """
    rng = random.Random(seed)
    source = random_source(setting, domain_size, facts_per_relation, seed=seed)
    combined = setting.combine(source, Instance())
    chased = chase(combined, setting.sigma_st)
    candidate = chased.instance.restrict_to(setting.target_schema)
    pool: list[InstanceTerm] = sorted(
        source.constants(), key=lambda c: str(c.value)
    )
    if pool:
        candidate = _ground_nulls(candidate, pool, rng)
    target = Instance(schema=setting.target_schema)
    for fact in candidate:
        if rng.random() < target_keep and not fact.nulls():
            target.add(fact)
    return source, target


def instance_family(
    setting: PDESetting,
    sizes: list[int],
    seed: int = 0,
) -> Iterator[tuple[int, Instance, Instance]]:
    """Yield ``(size, source, target)`` triples of growing size.

    Used by scaling benchmarks: ``size`` controls both the domain and the
    facts per relation.
    """
    for index, size in enumerate(sizes):
        source, target = consistent_pair(
            setting,
            domain_size=max(4, size),
            facts_per_relation=size,
            seed=seed + index,
        )
        yield size, source, target
