"""Named workloads for ``repro.cli profile``.

Each :class:`ProfileWorkload` bundles a setting + instance generator with
a size knob, so the profiler CLI (and the observability tests) can run a
known-shape solve under a tracer by name:

* ``genomics`` — the paper's Introduction scenario; in ``C_tract``, so it
  profiles the two chases and the per-block homomorphism tests of the
  polynomial Figure 3 algorithm;
* ``procurement`` — audit-backed procurement; outside ``C_tract`` (its
  ``Σ_ts`` conclusions export unmarked variables), so it dispatches to
  the NP valuation search, though the search itself is easy (``J_can``
  is null-free);
* ``clique`` — the Theorem 3 clique reduction on a triangle-free cycle,
  an *unsatisfiable* NP instance: the valuation search must rule out
  every candidate, so the trace shows real nodes-expanded/backtrack
  counts.

Sizes are small integers scaling the generator (proteins, suppliers,
cycle length); every workload also declares a ``smoke_size`` cheap
enough for ``profile --check`` in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.instance import Instance
from repro.core.setting import PDESetting

__all__ = ["ProfileWorkload", "profile_workloads"]

Workload = tuple[PDESetting, Instance, Instance]


@dataclass(frozen=True)
class ProfileWorkload:
    """One named, size-parameterized profiling workload.

    Attributes:
        name: registry key (``repro.cli profile NAME``).
        description: one-line summary shown in ``profile --list``.
        kind: ``"tractable"`` or ``"np"`` — which solver family the
            workload exercises.
        default_size: size used when the CLI gets no ``--size``.
        smoke_size: tiny size for ``profile --check`` smoke runs.
        builder: maps a size to ``(setting, source, target)``.
    """

    name: str
    description: str
    kind: str
    default_size: int
    smoke_size: int
    builder: Callable[[int], Workload]

    def build(self, size: int | None = None) -> Workload:
        """Build ``(setting, source, target)`` at ``size`` (or the default)."""
        return self.builder(size if size is not None else self.default_size)


def _genomics(size: int) -> Workload:
    from repro.workloads.scenarios import generate_genomics_data, genomics_setting

    source, target = generate_genomics_data(proteins=size, seed=7)
    return genomics_setting(), source, target


def _procurement(size: int) -> Workload:
    from repro.workloads.scenarios import (
        generate_procurement_data,
        procurement_setting,
    )

    source, target = generate_procurement_data(suppliers=size, seed=7)
    return procurement_setting(), source, target


def _clique(size: int) -> Workload:
    from repro.reductions.clique import clique_setting, clique_source_instance
    from repro.workloads.graphs import cycle_graph

    # A cycle of length >= 4 is triangle-free, so asking for a 3-clique is
    # unsatisfiable and the valuation search must exhaust its space.
    nodes, edges = cycle_graph(max(size, 4))
    source = clique_source_instance(nodes, edges, k=3)
    return clique_setting(), source, Instance()


def profile_workloads() -> dict[str, ProfileWorkload]:
    """The registry of named profiling workloads, keyed by name."""
    workloads = [
        ProfileWorkload(
            name="genomics",
            description="C_tract genomics sync (chases + per-block hom tests)",
            kind="tractable",
            default_size=20,
            smoke_size=3,
            builder=_genomics,
        ),
        ProfileWorkload(
            name="procurement",
            description="NP-dispatched procurement audit (easy search)",
            kind="np",
            default_size=10,
            smoke_size=2,
            builder=_procurement,
        ),
        ProfileWorkload(
            name="clique",
            description="Theorem 3 clique reduction, unsatisfiable (real search)",
            kind="np",
            default_size=5,
            smoke_size=4,
            builder=_clique,
        ),
    ]
    return {workload.name: workload for workload in workloads}
