"""Random PDE setting generators.

Used by the tractability and upper-bound experiments: families of settings
inside ``C_tract`` (LAV ``Σ_ts``; full ``Σ_st``) and general GLAV settings
outside it.  Generation is seeded and purely syntactic; the companion
module :mod:`repro.workloads.instances` generates data for them.
"""

from __future__ import annotations

import random

from repro.core.atoms import Atom
from repro.core.dependencies import TGD
from repro.core.schema import RelationSymbol, Schema
from repro.core.setting import PDESetting
from repro.core.terms import Variable

__all__ = [
    "random_lav_setting",
    "random_full_st_setting",
    "random_glav_setting",
    "random_weakly_acyclic_tgds",
    "exact_view_setting",
]


def _make_schema(prefix: str, relations: int, max_arity: int, rng: random.Random) -> Schema:
    return Schema(
        RelationSymbol(f"{prefix}{i}", rng.randint(2, max_arity))
        for i in range(relations)
    )


def _variables(n: int) -> list[Variable]:
    return [Variable(f"x{i}") for i in range(n)]


def _random_st_tgd(
    source: Schema,
    target: Schema,
    rng: random.Random,
    body_atoms: int,
    existentials: int,
) -> TGD:
    """A random source-to-target tgd with a connected variable pool."""
    pool = _variables(6)
    body = []
    for _ in range(body_atoms):
        relation = rng.choice(list(source))
        body.append(Atom(relation.name, [rng.choice(pool) for _ in range(relation.arity)]))
    body_variables = sorted({v for atom in body for v in atom.variables()}, key=lambda v: v.name)
    head_pool = body_variables + [Variable(f"y{i}") for i in range(existentials)]
    relation = rng.choice(list(target))
    head = [Atom(relation.name, [rng.choice(head_pool) for _ in range(relation.arity)])]
    return TGD(body, head)


def _random_lav_ts_tgd(source: Schema, target: Schema, rng: random.Random) -> TGD:
    """A LAV target-to-source tgd: single repetition-free body atom."""
    relation = rng.choice(list(target))
    variables = _variables(relation.arity)
    body = [Atom(relation.name, variables)]
    head_pool = variables + [Variable("w0"), Variable("w1")]
    source_relation = rng.choice(list(source))
    head = [
        Atom(source_relation.name, [rng.choice(head_pool) for _ in range(source_relation.arity)])
    ]
    return TGD(body, head)


def random_lav_setting(
    source_relations: int = 2,
    target_relations: int = 2,
    st_tgds: int = 3,
    ts_tgds: int = 2,
    max_arity: int = 3,
    seed: int = 0,
) -> PDESetting:
    """A random setting with LAV ``Σ_ts`` — always in ``C_tract``
    (Corollary 2)."""
    rng = random.Random(seed)
    source = _make_schema("S", source_relations, max_arity, rng)
    target = _make_schema("T", target_relations, max_arity, rng)
    sigma_st = [
        _random_st_tgd(source, target, rng, body_atoms=rng.randint(1, 2), existentials=rng.randint(0, 2))
        for _ in range(st_tgds)
    ]
    sigma_ts = [_random_lav_ts_tgd(source, target, rng) for _ in range(ts_tgds)]
    return PDESetting(source, target, sigma_st, sigma_ts, name=f"random-lav-{seed}")


def random_full_st_setting(
    source_relations: int = 2,
    target_relations: int = 2,
    st_tgds: int = 3,
    ts_tgds: int = 2,
    max_arity: int = 3,
    seed: int = 0,
) -> PDESetting:
    """A random setting with full ``Σ_st`` — always in ``C_tract``
    (Corollary 1).  ``Σ_ts`` may have multi-atom bodies."""
    rng = random.Random(seed)
    source = _make_schema("S", source_relations, max_arity, rng)
    target = _make_schema("T", target_relations, max_arity, rng)
    sigma_st = [
        _random_st_tgd(source, target, rng, body_atoms=rng.randint(1, 2), existentials=0)
        for _ in range(st_tgds)
    ]
    sigma_ts = []
    for _ in range(ts_tgds):
        pool = _variables(5)
        body = []
        for _ in range(rng.randint(1, 2)):
            relation = rng.choice(list(target))
            body.append(Atom(relation.name, [rng.choice(pool) for _ in range(relation.arity)]))
        body_variables = sorted(
            {v for atom in body for v in atom.variables()}, key=lambda v: v.name
        )
        head_pool = body_variables + [Variable("w0")]
        relation = rng.choice(list(source))
        head = [Atom(relation.name, [rng.choice(head_pool) for _ in range(relation.arity)])]
        sigma_ts.append(TGD(body, head))
    return PDESetting(source, target, sigma_st, sigma_ts, name=f"random-full-{seed}")


def random_glav_setting(
    source_relations: int = 2,
    target_relations: int = 2,
    st_tgds: int = 3,
    ts_tgds: int = 2,
    max_arity: int = 3,
    seed: int = 0,
) -> PDESetting:
    """A random unconstrained GLAV setting (may or may not be in C_tract)."""
    rng = random.Random(seed)
    source = _make_schema("S", source_relations, max_arity, rng)
    target = _make_schema("T", target_relations, max_arity, rng)
    sigma_st = [
        _random_st_tgd(source, target, rng, body_atoms=rng.randint(1, 2), existentials=rng.randint(0, 2))
        for _ in range(st_tgds)
    ]
    sigma_ts = []
    for _ in range(ts_tgds):
        pool = _variables(5)
        body = []
        for _ in range(rng.randint(1, 2)):
            relation = rng.choice(list(target))
            body.append(Atom(relation.name, [rng.choice(pool) for _ in range(relation.arity)]))
        body_variables = sorted(
            {v for atom in body for v in atom.variables()}, key=lambda v: v.name
        )
        head_pool = body_variables + [Variable("w0"), Variable("w1")]
        relation = rng.choice(list(source))
        head = [Atom(relation.name, [rng.choice(head_pool) for _ in range(relation.arity)])]
        sigma_ts.append(TGD(body, head))
    return PDESetting(source, target, sigma_st, sigma_ts, name=f"random-glav-{seed}")


def exact_view_setting() -> PDESetting:
    """The GLAV-with-exact-views pattern from Section 2.

    ``φ(x) → ∃y ψ(x, y)`` together with ``ψ(x, y) → φ(x)`` asserts that the
    target view contains exactly the tuples of the source query.
    """
    return PDESetting.from_text(
        source={"Orders": 2, "Customers": 2},
        target={"View": 2},
        st="Orders(c, item), Customers(c, region) -> View(c, item)",
        ts="View(c, item) -> Orders(c, item), Customers(c, w)",
        name="exact-view (Section 2)",
    )


def random_weakly_acyclic_tgds(
    layers: int = 3,
    relations_per_layer: int = 2,
    tgds: int = 4,
    max_arity: int = 3,
    seed: int = 0,
) -> list[TGD]:
    """Generate a random set of tgds that is weakly acyclic by construction.

    Relations are stratified into layers; every tgd's head relation lives
    in a strictly higher layer than all of its body relations, so every
    edge of the Definition 5 dependency graph points strictly upward and
    no cycle (special or otherwise) can exist.  Used by the property-based
    suite to exercise :func:`repro.core.weak_acyclicity.is_weakly_acyclic`
    and the chase-budget machinery on arbitrary shapes.
    """
    rng = random.Random(seed)
    layer_relations: list[list[RelationSymbol]] = []
    for layer in range(layers):
        layer_relations.append(
            [
                RelationSymbol(f"L{layer}R{index}", rng.randint(1, max_arity))
                for index in range(relations_per_layer)
            ]
        )

    result: list[TGD] = []
    pool = _variables(5)
    for _ in range(tgds):
        body_layer = rng.randrange(layers - 1)
        head_layer = rng.randrange(body_layer + 1, layers)
        body = []
        for _ in range(rng.randint(1, 2)):
            relation = rng.choice(layer_relations[body_layer])
            body.append(
                Atom(relation.name, [rng.choice(pool) for _ in range(relation.arity)])
            )
        body_variables = sorted(
            {v for atom in body for v in atom.variables()}, key=lambda v: v.name
        )
        head_pool = body_variables + [Variable("w0"), Variable("w1")]
        relation = rng.choice(layer_relations[head_layer])
        head = [
            Atom(relation.name, [rng.choice(head_pool) for _ in range(relation.arity)])
        ]
        result.append(TGD(body, head))
    return result
