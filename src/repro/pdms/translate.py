"""The PDE → PDMS translation of Section 2.

For a PDE setting ``P = (S, T, Σ_st, Σ_ts, Σ_t)``, the PDMS ``N(P)`` has
two peers:

* peer ``S`` with local sources ``S_i*`` (one starred replica per source
  relation) and *equality* storage descriptions ``S_i* = S_i`` — the
  source data are immutable and fully visible;
* peer ``T`` with local sources ``T_j*`` and *containment* storage
  descriptions ``T_j* ⊆ T_j`` — the target may be augmented;
* peer mappings given by ``Σ_st ∪ Σ_ts ∪ Σ_t`` verbatim (no definitional
  mappings).

The correspondence: ``K`` is a solution for ``(I, J)`` in ``P`` iff the
assignment ``((I*, I), (J*, K))`` is a consistent data instance for the
data instance ``(I*, J*)`` of ``N(P)``, where starred instances are copies
of ``I`` and ``J`` over the local replicas.
"""

from __future__ import annotations

from repro.core.atoms import Atom, Fact
from repro.core.instance import Instance
from repro.core.query import ConjunctiveQuery
from repro.core.schema import RelationSymbol, Schema
from repro.core.setting import PDESetting
from repro.core.terms import Variable
from repro.pdms.model import PDMS, Peer, StorageDescription

__all__ = ["starred", "translate_setting", "star_instance", "assemble_candidate"]


def starred(relation: str) -> str:
    """The name of the local replica of ``relation`` (``R`` → ``R_star``)."""
    return f"{relation}_star"


def _identity_query(relation: str, arity: int) -> ConjunctiveQuery:
    variables = [Variable(f"x{i}") for i in range(arity)]
    return ConjunctiveQuery(
        [Atom(starred(relation), variables)], variables, name=f"{relation}_view"
    )


def _star_schema(schema: Schema) -> Schema:
    return Schema(
        RelationSymbol(starred(relation.name), relation.arity) for relation in schema
    )


def translate_setting(setting: PDESetting) -> PDMS:
    """Build the PDMS ``N(P)`` for a PDE setting ``P``."""
    source_peer = Peer(
        name="S",
        schema=setting.source_schema,
        local_schema=_star_schema(setting.source_schema),
        storage=[
            StorageDescription(
                peer_relation=relation.name,
                query=_identity_query(relation.name, relation.arity),
                kind="equality",
            )
            for relation in setting.source_schema
        ],
    )
    target_peer = Peer(
        name="T",
        schema=setting.target_schema,
        local_schema=_star_schema(setting.target_schema),
        storage=[
            StorageDescription(
                peer_relation=relation.name,
                query=_identity_query(relation.name, relation.arity),
                kind="containment",
            )
            for relation in setting.target_schema
        ],
    )
    return PDMS(
        peers=[source_peer, target_peer],
        mappings=setting.all_dependencies(),
        name=f"N({setting.name})" if setting.name else "N(P)",
    )


def star_instance(instance: Instance) -> Instance:
    """Copy ``instance`` onto the starred local replicas."""
    replica = Instance()
    for fact in instance:
        replica.add(Fact(starred(fact.relation), fact.args))
    return replica


def assemble_candidate(
    setting: PDESetting,
    source: Instance,
    target: Instance,
    candidate_solution: Instance,
) -> tuple[Instance, Instance]:
    """Build the PDMS data instance and consistency candidate.

    Returns ``(local_data, candidate)`` where ``local_data = (I*, J*)`` and
    ``candidate = ((I*, I), (J*, K))`` — the assignment whose consistency
    in ``N(P)`` is equivalent to ``K`` being a solution for ``(I, J)``.
    """
    local_data = star_instance(source).union(star_instance(target))
    candidate = local_data.copy()
    candidate.add_all(source)
    candidate.add_all(candidate_solution)
    return local_data, candidate
