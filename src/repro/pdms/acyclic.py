"""Certain answers in containment-only, inclusion-mapped PDMS.

Section 3.2 of the paper recalls a tractability result of Halevy et al.:
if *all* storage descriptions are containment descriptions and all peer
mappings are inclusion mappings whose dependency graph is acyclic, then
certain answers of conjunctive queries are computable in polynomial time.
The paper then points out that its own Theorem 3 setting has exactly such
acyclic inclusion mappings — the coNP-hardness of PDE comes from the
*equality* storage descriptions of the source peer (the immutability of
``I``), not from the mapping topology.

This module implements the tractable containment-only procedure so the
contrast is executable:

* every storage description ``Q ⊆ R`` and every inclusion mapping (a tgd)
  only ever *lower-bounds* relations, so a least consistent instance
  exists: the chase of the local data with the description-induced tgds
  and the peer mappings;
* that canonical instance maps homomorphically into every consistent
  instance, so naive evaluation over it (null-free answers) computes the
  certain answers of conjunctive queries.

Experiment E16 (``bench_pdms.py`` / ``tests/test_pdms_acyclic.py``) runs
the Theorem 3 mappings under both semantics: containment-only is
polynomial and oblivious to cliques; restoring the equality descriptions
(i.e. genuine PDE) brings back the clique-driven behavior.
"""

from __future__ import annotations

from repro.core.atoms import Atom
from repro.core.chase import chase
from repro.core.dependencies import TGD, Dependency
from repro.core.instance import Instance
from repro.core.query import ConjunctiveQuery, UnionOfConjunctiveQueries
from repro.core.terms import InstanceTerm
from repro.core.weak_acyclicity import is_weakly_acyclic
from repro.exceptions import SolverError
from repro.pdms.model import PDMS
from repro.solver.results import CertainAnswerResult

__all__ = ["canonical_consistent_instance", "acyclic_certain_answers"]

Query = ConjunctiveQuery | UnionOfConjunctiveQueries


def _storage_tgds(pdms: PDMS) -> list[TGD]:
    """One tgd ``Q(x) → R(x)`` per containment storage description."""
    tgds = []
    for peer in pdms.peers:
        for description in peer.storage:
            if description.kind != "containment":
                raise SolverError(
                    "the acyclic-PDMS procedure requires containment-only "
                    f"storage descriptions; peer {peer.name!r} declares an "
                    f"equality description for {description.peer_relation!r} "
                    "(that is what makes peer data exchange hard — use the "
                    "PDE solvers instead)"
                )
            head = Atom(description.peer_relation, description.query.free)
            tgds.append(TGD(list(description.query.body), [head]))
    return tgds


def _mapping_tgds(pdms: PDMS) -> list[TGD]:
    for mapping in pdms.mappings:
        if not isinstance(mapping, TGD):
            raise SolverError(
                "the acyclic-PDMS procedure requires inclusion (tgd) peer "
                f"mappings only, got {mapping}"
            )
    return list(pdms.mappings)  # type: ignore[return-value]


def canonical_consistent_instance(pdms: PDMS, local_data: Instance) -> Instance:
    """Chase the local data into the least consistent instance.

    Requires containment-only storage descriptions and inclusion (tgd)
    peer mappings forming a weakly acyclic set; under those hypotheses the
    chase terminates and its result maps homomorphically into every
    consistent data instance for ``local_data``.

    Returns the full assignment (local sources plus peer relations).
    """
    dependencies: list[Dependency] = [*_storage_tgds(pdms), *_mapping_tgds(pdms)]
    if not is_weakly_acyclic([d for d in dependencies if isinstance(d, TGD)]):
        raise SolverError(
            "the storage and mapping tgds are not weakly acyclic; the "
            "canonical chase is not guaranteed to terminate"
        )
    result = chase(local_data, dependencies)
    return result.instance


def acyclic_certain_answers(
    pdms: PDMS, local_data: Instance, query: Query
) -> CertainAnswerResult:
    """Certain answers of ``query`` over all consistent instances.

    Polynomial time: one chase plus one naive evaluation — the Section 3.2
    contrast with the coNP-complete PDE problem.
    """
    canonical = canonical_consistent_instance(pdms, local_data)
    if query.arity == 0:
        answers: set[tuple[InstanceTerm, ...]] = (
            {()} if query.holds(canonical) else set()
        )
    else:
        answers = query.answers(canonical, allow_nulls=False)
    return CertainAnswerResult(
        answers=answers,
        solutions_exist=True,  # least consistent instance always exists
        stats={"canonical_size": len(canonical)},
    )
