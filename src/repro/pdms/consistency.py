"""Checking the PDE ↔ PDMS correspondence of Section 2.

The paper's claim: ``K`` is a solution for ``(I, J)`` in ``P`` iff
``((I*, I), (J*, K))`` is a consistent data instance for ``(I*, J*)`` in
``N(P)``.  :func:`check_correspondence` evaluates both sides for a given
candidate so tests and benchmarks can assert the equivalence.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.instance import Instance
from repro.core.setting import PDESetting
from repro.pdms.translate import assemble_candidate, translate_setting

__all__ = ["CorrespondenceCheck", "check_correspondence"]


@dataclass(frozen=True)
class CorrespondenceCheck:
    """Both sides of the Section 2 equivalence for one candidate."""

    is_pde_solution: bool
    is_pdms_consistent: bool

    @property
    def agrees(self) -> bool:
        """True when the two formalisms agree on the candidate."""
        return self.is_pde_solution == self.is_pdms_consistent


def check_correspondence(
    setting: PDESetting,
    source: Instance,
    target: Instance,
    candidate: Instance,
) -> CorrespondenceCheck:
    """Evaluate the PDE solution test and the PDMS consistency test.

    Args:
        setting: the PDE setting ``P``.
        source: the source instance ``I``.
        target: the target instance ``J``.
        candidate: the candidate solution ``K`` (a target instance).

    Returns:
        a :class:`CorrespondenceCheck`; by the paper's Section 2 argument,
        :attr:`CorrespondenceCheck.agrees` must always be True.
    """
    pdms = translate_setting(setting)
    local_data, assignment = assemble_candidate(setting, source, target, candidate)
    return CorrespondenceCheck(
        is_pde_solution=setting.is_solution(source, target, candidate),
        is_pdms_consistent=pdms.is_consistent(local_data, assignment),
    )
