"""A peer data management system (PDMS) model, after Halevy et al. [14].

The paper relates peer data exchange to PDMS (Section 2, "Relationship to
PDMS").  This module implements the fragment needed for that relationship:

* each **peer** has a visible peer schema and a set of local source
  relations accessible only to it;
* **storage descriptions** relate a query over a peer's local sources to a
  relation of its peer schema — either by *containment* (``Q ⊆ R``: the
  peer relation may hold more than what is stored) or *equality*
  (``Q = R``: the peer relation is exactly the stored data);
* **peer mappings** are constraints over the union of the peer schemas;
  the translation of a PDE setting uses its tgds and egds directly (the
  paper notes the translated PDMS has no definitional mappings).

A *data instance* assigns values to the local sources; a *consistency
candidate* additionally assigns the peer relations.  The candidate is
consistent when it extends the data instance on the local sources and
satisfies every storage description and peer mapping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.core.chase import satisfies
from repro.core.dependencies import Dependency
from repro.core.homomorphism import iter_homomorphisms
from repro.core.instance import Instance
from repro.core.query import ConjunctiveQuery
from repro.core.schema import Schema
from repro.core.terms import is_null
from repro.exceptions import SchemaError

__all__ = ["StorageDescription", "Peer", "PDMS"]


@dataclass(frozen=True)
class StorageDescription:
    """A storage description ``Q ⊆ R`` or ``Q = R`` for one peer.

    ``query`` ranges over the peer's local sources; ``peer_relation`` names
    a relation of the peer schema with the same arity as the query.
    """

    peer_relation: str
    query: ConjunctiveQuery
    kind: str  # "containment" or "equality"

    def __post_init__(self) -> None:
        if self.kind not in ("containment", "equality"):
            raise ValueError(f"unknown storage description kind {self.kind!r}")

    def holds(self, local: Instance, peer_view: Instance) -> bool:
        """Check the description against local data and the peer relation.

        The comparison uses the stored rows verbatim (instances may contain
        nulls; nulls are treated as plain values here, matching the
        containment semantics of [14]).
        """
        stored = {
            tuple(assignment[v] for v in self.query.free)
            for assignment in iter_homomorphisms(self.query.body, local)
        }
        visible = set(peer_view.tuples(self.peer_relation))
        if self.kind == "containment":
            return stored <= visible
        return stored == visible

    def __str__(self) -> str:
        symbol = "⊆" if self.kind == "containment" else "="
        return f"{self.query} {symbol} {self.peer_relation}"


@dataclass(frozen=True)
class Peer:
    """One peer: a visible schema, local sources, and storage descriptions."""

    name: str
    schema: Schema
    local_schema: Schema
    storage: tuple[StorageDescription, ...] = ()

    def __init__(
        self,
        name: str,
        schema: Schema,
        local_schema: Schema,
        storage: Sequence[StorageDescription] = (),
    ):
        if not schema.disjoint_from(local_schema):
            raise SchemaError(
                f"peer {name!r}: peer schema and local sources must be disjoint"
            )
        for description in storage:
            if description.peer_relation not in schema:
                raise SchemaError(
                    f"peer {name!r}: storage description targets unknown "
                    f"relation {description.peer_relation!r}"
                )
            for atom in description.query.body:
                if atom.relation not in local_schema:
                    raise SchemaError(
                        f"peer {name!r}: storage query atom {atom} is not over "
                        f"the local sources"
                    )
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "schema", schema)
        object.__setattr__(self, "local_schema", local_schema)
        object.__setattr__(self, "storage", tuple(storage))


@dataclass(frozen=True)
class PDMS:
    """A peer data management system: peers plus peer mappings."""

    peers: tuple[Peer, ...]
    mappings: tuple[Dependency, ...]
    name: str = field(default="", compare=False)

    def __init__(
        self,
        peers: Sequence[Peer],
        mappings: Iterable[Dependency],
        name: str = "",
    ):
        peers = tuple(peers)
        seen: Schema = Schema()
        for peer in peers:
            if not seen.disjoint_from(peer.schema) or not seen.disjoint_from(
                peer.local_schema
            ):
                raise SchemaError(f"peer {peer.name!r} overlaps earlier schemas")
            seen = seen.union(peer.schema).union(peer.local_schema)
        object.__setattr__(self, "peers", peers)
        object.__setattr__(self, "mappings", tuple(mappings))
        object.__setattr__(self, "name", name)

    def peer(self, name: str) -> Peer:
        """Return the peer named ``name``."""
        for peer in self.peers:
            if peer.name == name:
                return peer
        raise KeyError(f"no peer named {name!r}")

    def peer_schema(self) -> Schema:
        """The union of all visible peer schemas."""
        union = Schema()
        for peer in self.peers:
            union = union.union(peer.schema)
        return union

    def local_schema(self) -> Schema:
        """The union of all local source schemas."""
        union = Schema()
        for peer in self.peers:
            union = union.union(peer.local_schema)
        return union

    def is_consistent(self, local_data: Instance, candidate: Instance) -> bool:
        """Is ``candidate`` a consistent data instance for ``local_data``?

        ``local_data`` assigns the local sources of every peer;
        ``candidate`` assigns both the local sources and the peer schemas.
        Consistency requires: (1) ``candidate`` agrees with ``local_data``
        on the local sources, (2) every storage description holds, and (3)
        every peer mapping holds over the peer relations of ``candidate``.
        """
        locals_in_candidate = candidate.restrict_to(self.local_schema())
        if locals_in_candidate != local_data.restrict_to(self.local_schema()):
            return False
        peer_view = candidate.restrict_to(self.peer_schema())
        for peer in self.peers:
            local = candidate.restrict_to(peer.local_schema)
            for description in peer.storage:
                if not description.holds(local, peer_view):
                    return False
        return satisfies(candidate, self.mappings)
