"""Peer data management system substrate (Section 2 of the paper).

Implements the PDMS fragment of Halevy et al. needed to state the
PDE ↔ PDMS correspondence: peers with local sources, containment/equality
storage descriptions, dependency-based peer mappings, and the consistency
test for data instances.
"""

from repro.pdms.acyclic import acyclic_certain_answers, canonical_consistent_instance
from repro.pdms.consistency import CorrespondenceCheck, check_correspondence
from repro.pdms.model import PDMS, Peer, StorageDescription
from repro.pdms.translate import (
    assemble_candidate,
    star_instance,
    starred,
    translate_setting,
)

__all__ = [
    "acyclic_certain_answers",
    "canonical_consistent_instance",
    "CorrespondenceCheck",
    "check_correspondence",
    "PDMS",
    "Peer",
    "StorageDescription",
    "assemble_candidate",
    "star_instance",
    "starred",
    "translate_setting",
]
