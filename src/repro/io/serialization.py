"""JSON serialization for settings, instances, dependencies, and results.

Gives the library a stable on-disk interchange format so that workloads,
settings, and solver outputs can be saved, diffed, and shipped between
experiment runs.  The format is deliberately simple:

* terms are tagged objects — ``{"const": v}``, ``{"null": label}`` (with
  an optional ``"hint"``), dependency/query variables are plain strings;
* instances are ``{relation: [[term, ...], ...]}``;
* dependencies round-trip through the parser's text syntax, which is the
  library's canonical human-readable form;
* settings carry their schemas as arity maps plus the three dependency
  blocks.

Everything round-trips: ``loads_x(dumps_x(value)) == value``.
"""

from __future__ import annotations

import json
from typing import Any

from repro.core.dependencies import EGD, TGD, Dependency, DisjunctiveTGD
from repro.core.instance import Instance
from repro.core.schema import Schema
from repro.core.setting import PDESetting
from repro.core.terms import Constant, InstanceTerm, Null
from repro.exceptions import ParseError

__all__ = [
    "instance_to_dict",
    "instance_from_dict",
    "dumps_instance",
    "loads_instance",
    "dependency_to_text",
    "setting_to_dict",
    "setting_from_dict",
    "dumps_setting",
    "loads_setting",
]


# ---------------------------------------------------------------------------
# terms
# ---------------------------------------------------------------------------


def _term_to_json(term: InstanceTerm) -> dict[str, Any]:
    if isinstance(term, Constant):
        return {"const": term.value}
    if isinstance(term, Null):
        encoded: dict[str, Any] = {"null": term.label}
        if term.hint:
            encoded["hint"] = term.hint
        return encoded
    raise TypeError(f"cannot serialize term {term!r}")


def _term_from_json(encoded: dict[str, Any]) -> InstanceTerm:
    if "const" in encoded:
        return Constant(encoded["const"])
    if "null" in encoded:
        return Null(encoded["null"], encoded.get("hint", ""))
    raise ParseError(f"unknown term encoding {encoded!r}")


# ---------------------------------------------------------------------------
# instances
# ---------------------------------------------------------------------------


def instance_to_dict(instance: Instance) -> dict[str, list[list[dict]]]:
    """Encode an instance as a plain dict (JSON-ready)."""
    encoded: dict[str, list[list[dict]]] = {}
    for relation in sorted(instance.relations()):
        rows = sorted(
            instance.tuples(relation),
            key=lambda row: [repr(value) for value in row],
        )
        encoded[relation] = [[_term_to_json(value) for value in row] for row in rows]
    return encoded


def instance_from_dict(
    encoded: dict[str, list[list[dict]]], schema: Schema | None = None
) -> Instance:
    """Decode an instance from :func:`instance_to_dict` output."""
    from repro.core.atoms import Fact

    instance = Instance(schema=schema)
    for relation, rows in encoded.items():
        for row in rows:
            instance.add(Fact(relation, [_term_from_json(value) for value in row]))
    return instance


def dumps_instance(instance: Instance, indent: int | None = None) -> str:
    """Serialize an instance to a JSON string."""
    return json.dumps(instance_to_dict(instance), indent=indent, sort_keys=True)


def loads_instance(text: str, schema: Schema | None = None) -> Instance:
    """Deserialize an instance from :func:`dumps_instance` output."""
    return instance_from_dict(json.loads(text), schema=schema)


# ---------------------------------------------------------------------------
# dependencies and settings
# ---------------------------------------------------------------------------


def dependency_to_text(dependency: Dependency) -> str:
    """Render a dependency in the parser's canonical text syntax."""
    def atom_text(atom) -> str:
        parts = []
        for arg in atom.args:
            if isinstance(arg, Constant):
                if isinstance(arg.value, str):
                    parts.append(f"'{arg.value}'")
                else:
                    parts.append(repr(arg.value))
            else:
                parts.append(str(arg))
        return f"{atom.relation}({', '.join(parts)})"

    body = ", ".join(atom_text(atom) for atom in dependency.body)
    if isinstance(dependency, TGD):
        head = ", ".join(atom_text(atom) for atom in dependency.head)
        return f"{body} -> {head}"
    if isinstance(dependency, EGD):
        return f"{body} -> {dependency.left} = {dependency.right}"
    if isinstance(dependency, DisjunctiveTGD):
        head = " | ".join(
            "(" + ", ".join(atom_text(atom) for atom in disjunct) + ")"
            for disjunct in dependency.disjuncts
        )
        return f"{body} -> {head}"
    raise TypeError(f"cannot serialize dependency {dependency!r}")


def _schema_to_dict(schema: Schema) -> dict[str, int]:
    return {relation.name: relation.arity for relation in schema}


def setting_to_dict(setting: PDESetting) -> dict[str, Any]:
    """Encode a PDE setting as a plain dict (JSON-ready)."""
    return {
        "name": setting.name,
        "source": _schema_to_dict(setting.source_schema),
        "target": _schema_to_dict(setting.target_schema),
        "sigma_st": [dependency_to_text(d) for d in setting.sigma_st],
        "sigma_ts": [dependency_to_text(d) for d in setting.sigma_ts],
        "sigma_t": [dependency_to_text(d) for d in setting.sigma_t],
    }


def setting_from_dict(encoded: dict[str, Any], validate: bool = True) -> PDESetting:
    """Decode a setting from :func:`setting_to_dict` output.

    With ``validate=False`` the setting is built without well-formedness
    checks, so :mod:`repro.analysis` can lint malformed inputs; dependency
    provenance lines then index into the JSON arrays (1-based).
    """
    return PDESetting.from_text(
        source=encoded["source"],
        target=encoded["target"],
        st="\n".join(encoded.get("sigma_st", [])),
        ts="\n".join(encoded.get("sigma_ts", [])),
        t="\n".join(encoded.get("sigma_t", [])),
        name=encoded.get("name", ""),
        validate=validate,
    )


def dumps_setting(setting: PDESetting, indent: int | None = None) -> str:
    """Serialize a setting to a JSON string."""
    return json.dumps(setting_to_dict(setting), indent=indent, sort_keys=True)


def loads_setting(text: str, validate: bool = True) -> PDESetting:
    """Deserialize a setting from :func:`dumps_setting` output."""
    return setting_from_dict(json.loads(text), validate=validate)
