"""Input/output: JSON serialization for settings, instances, and results."""

from repro.io.serialization import (
    dependency_to_text,
    dumps_instance,
    dumps_setting,
    instance_from_dict,
    instance_to_dict,
    loads_instance,
    loads_setting,
    setting_from_dict,
    setting_to_dict,
)

__all__ = [
    "dependency_to_text",
    "dumps_instance",
    "dumps_setting",
    "instance_from_dict",
    "instance_to_dict",
    "loads_instance",
    "loads_setting",
    "setting_from_dict",
    "setting_to_dict",
]
