"""Exception hierarchy for the peer data exchange library.

All exceptions raised deliberately by this library derive from
:class:`ReproError`, so callers can catch library failures with a single
``except`` clause while letting programming errors propagate.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ParseError",
    "SchemaError",
    "DependencyError",
    "ChaseFailure",
    "ChaseNonTermination",
    "IncrementalChaseUnsupported",
    "SolverError",
    "BudgetExceeded",
    "InvariantViolation",
    "JournalError",
    "TraceError",
    "NotWeaklyAcyclicError",
    "ProtocolError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ParseError(ReproError):
    """Raised when textual input (dependency, instance, query) is malformed.

    When ``text`` and ``position`` are given, the error derives the 1-based
    ``line`` and ``column`` of the offending character, and its message
    renders the same ``line L, column C`` span that lint diagnostics use.
    """

    def __init__(self, message: str, text: str | None = None, position: int | None = None):
        self.text = text
        self.position = position
        self.line: int | None = None
        self.column: int | None = None
        if text is not None and position is not None:
            self.line = text.count("\n", 0, position) + 1
            self.column = position - text.rfind("\n", 0, position)
            context = text[max(0, position - 20):position + 20]
            message = (
                f"{message} (line {self.line}, column {self.column}, "
                f"position {position}: ...{context!r}...)"
            )
        super().__init__(message)


class SchemaError(ReproError):
    """Raised when facts, atoms, or dependencies do not match a schema.

    Examples: wrong arity, unknown relation symbol, a source-to-target tgd
    whose left-hand side mentions a target relation.
    """


class DependencyError(ReproError):
    """Raised when a dependency is structurally invalid.

    Examples: an egd equating variables that do not occur in its body, or a
    tgd with an empty left-hand side.
    """


class ChaseFailure(ReproError):
    """Raised when an egd chase step fails (tries to equate two constants).

    Corresponds to the result ``⊥`` of Definition 6 in the paper.  A failing
    chase certifies that no solution exists for the chased instance.
    """


class ChaseNonTermination(ReproError):
    """Raised when a chase exceeds its step budget.

    Weakly acyclic dependency sets are guaranteed to terminate (Lemma 1 of
    the paper); this error signals either a non-weakly-acyclic set or a step
    budget that is too small.
    """

    def __init__(self, steps: int):
        self.steps = steps
        super().__init__(
            f"chase did not terminate within {steps} steps; the dependency "
            f"set may not be weakly acyclic"
        )


class IncrementalChaseUnsupported(ReproError):
    """Raised when a delta cannot be chased incrementally.

    The semi-naive incremental chase only handles histories free of egd
    merges (a merge rewrites facts in place, invalidating the provenance
    the retraction walk relies on) and deltas that do not make an egd
    newly applicable.  Callers are expected to catch this and fall back
    to the from-scratch :func:`repro.core.chase.chase`.
    """


class SolverError(ReproError):
    """Raised when a solver is invoked outside its region of soundness.

    Example: running the Figure 3 tractable algorithm on a setting that is
    not in C_tract without explicitly forcing it.
    """


class BudgetExceeded(SolverError):
    """Raised when a governed computation runs out of resource budget.

    Carries the degradation ``status`` — one of the string values of
    :class:`repro.runtime.SolveStatus` (``"budget-exhausted"``,
    ``"deadline"``, ``"cancelled"``) — so entry points can convert the
    exception into a structured partial result.  Subclasses
    :class:`SolverError` so legacy callers catching budget exhaustion
    keep working; with a non-strict :class:`repro.runtime.Budget` the
    solver entry points catch this internally and return a degraded
    result instead of letting it escape.
    """

    def __init__(self, message: str, status: str = "budget-exhausted"):
        self.status = status
        super().__init__(message)


class InvariantViolation(ReproError):
    """Raised when an internal consistency invariant of the library fails.

    Example: a witness produced by solving a merged multi-PDE setting is
    rejected by one of the member settings, contradicting the Section 2
    equivalence.  Signals a library bug rather than bad input, but derives
    from :class:`ReproError` so callers relying on the module contract
    ("every deliberate failure is a ReproError") still catch it.
    """


class JournalError(ReproError):
    """Raised when a sync-session journal cannot be read or replayed.

    A truncated *final* record (the signature of a crash mid-write) is
    tolerated by the loader and does not raise; this error signals real
    corruption — an unreadable header, a damaged interior record, or a
    journal written for a different setting than the one restoring it.
    """


class TraceError(ReproError):
    """Raised when a trace file cannot be parsed.

    Mirrors :class:`JournalError`'s crash contract: a truncated *final*
    line (a process died mid-write) is tolerated by the reader and does
    not raise; this error signals real damage — a missing or wrong-format
    header, an unsupported schema version, or a corrupt interior record.
    """


class NotWeaklyAcyclicError(ReproError):
    """Raised when an operation requires a weakly acyclic set of tgds."""


class SimulationError(ReproError):
    """Raised when a peer-network simulation is driven incorrectly.

    Signals misuse of the :mod:`repro.net` machinery — delivering to a
    crashed peer, restarting a live one, or a scenario whose events
    reference unknown peers — never a fault *injected by* the scenario
    (injected faults are the simulation working as intended and surface
    in the :class:`repro.net.SimulationReport` instead).
    """


class ProtocolError(ReproError):
    """Raised when a :mod:`repro.netd` wire frame violates the protocol.

    Covers structural damage the codec refuses to guess about: a bad
    magic/version byte, an unknown frame type, a frame larger than the
    negotiated maximum, or a payload that is not the UTF-8 JSON object
    the frame type requires.  The daemon's contract is *close, don't
    corrupt*: a connection that raises this is torn down and the peer
    reconnects from its journal-committed watermark — it is never fed
    into a :class:`~repro.sync.SyncSession`.
    """
