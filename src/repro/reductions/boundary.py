"""The Section 4 boundary settings: minimal relaxations that cross into
NP-hardness even though ``Σ_st`` and ``Σ_ts`` satisfy the ``C_tract``
conditions.

Two settings are built here (the third — disjunctive ``Σ_ts`` — lives in
:mod:`repro.reductions.coloring`):

* :func:`egd_boundary_setting` — ``Σ_st``/``Σ_ts`` satisfy conditions (1)
  and (2.1) of Definition 9, but ``Σ_t`` contains target *egds*; CLIQUE
  reduces to SOL.
* :func:`full_tgd_boundary_setting` — ``Σ_st``/``Σ_ts`` satisfy conditions
  (1) and (2.1), but ``Σ_t`` contains *full target tgds* routing the
  consistency check through a copy relation ``S'``; CLIQUE reduces to SOL.

**Fidelity note.** As with Theorem 3 (see :mod:`repro.reductions.clique`),
the paper displays a single consistency dependency per setting and appeals
to the property "one associated node per element"; realizing that property
requires the symmetric variants as well, which we include.  Each added
dependency has the same shape as the displayed one (a target egd in the
first setting, a full target tgd in the second), so the minimality claims
— "a single kind of relaxation suffices for NP-hardness" — are preserved.
"""

from __future__ import annotations

from typing import Hashable, Iterable

from repro.core.instance import Instance
from repro.core.setting import PDESetting
from repro.reductions.clique import Edge, normalize_graph

__all__ = [
    "egd_boundary_setting",
    "egd_boundary_source_instance",
    "full_tgd_boundary_setting",
    "full_tgd_boundary_source_instance",
]


def egd_boundary_setting() -> PDESetting:
    """The first boundary setting: target egds only.

    ``Σ_st`` and ``Σ_ts`` satisfy conditions (1) and (2.1) of Definition 9
    (every ``Σ_ts`` dependency is LAV), yet SOL is NP-hard because of the
    target egds.
    """
    return PDESetting.from_text(
        source={"D": 2, "E": 2},
        target={"P": 4},
        st="D(x, y) -> P(x, z, y, w)",
        ts="P(x, z, y, w) -> E(z, w)",
        t="""
            P(x, z, y, w), P(x, z2, y2, w2) -> z = z2
            P(x, z, y, w), P(x2, z2, y, w2) -> w = w2
            P(x, z, y, w), P(y, z2, y2, w2) -> w = z2
        """,
        name="egd boundary (Section 4)",
    )


def egd_boundary_source_instance(
    nodes: Iterable[Hashable], edges: Iterable[Edge], k: int
) -> Instance:
    """Source instance for the egd boundary setting: ``D`` = inequality on
    ``a_1..a_k``, ``E`` = the graph's symmetric irreflexive edge relation.

    ``G`` has a ``k``-clique iff a solution for ``(I, ∅)`` exists (k ≥ 2).
    """
    if k < 2:
        raise ValueError("the reduction needs k >= 2")
    _nodes, symmetric = normalize_graph(nodes, edges)
    elements = [f"a{i}" for i in range(1, k + 1)]
    return Instance.from_tuples(
        {
            "D": [
                (first, second)
                for first in elements
                for second in elements
                if first != second
            ],
            "E": sorted(symmetric),
        }
    )


def full_tgd_boundary_setting() -> PDESetting:
    """The second boundary setting: full target tgds through a copy ``S'``.

    ``Σ_st`` copies ``S`` into ``S'`` and posts the ``D`` pairs; the full
    target tgds derive ``S'`` consistency facts; ``Σ_ts`` exports ``S'``
    back to ``S`` (LAV) and edges to ``E``.  Conditions (1) and (2.1) hold
    for ``Σ_st``/``Σ_ts``, yet SOL is NP-hard.
    """
    return PDESetting.from_text(
        source={"D": 2, "S": 2, "E": 2},
        target={"P": 4, "Sp": 2},
        st="""
            S(z, w) -> Sp(z, w)
            D(x, y) -> P(x, z, y, w)
        """,
        ts="""
            Sp(z, z2) -> S(z, z2)
            P(x, z, y, w) -> E(z, w)
        """,
        t="""
            P(x, z, y, w), P(x, z2, y2, w2) -> Sp(z, z2)
            P(x, z, y, w), P(x2, z2, y, w2) -> Sp(w, w2)
            P(x, z, y, w), P(y, z2, y2, w2) -> Sp(w, z2)
        """,
        name="full-tgd boundary (Section 4)",
    )


def full_tgd_boundary_source_instance(
    nodes: Iterable[Hashable], edges: Iterable[Edge], k: int
) -> Instance:
    """Source instance for the full-tgd boundary setting.

    ``D`` = inequality on ``a_1..a_k``, ``S`` = equality on ``V``, ``E`` =
    the graph's edges.  ``G`` has a ``k``-clique iff a solution exists
    (k ≥ 2).
    """
    if k < 2:
        raise ValueError("the reduction needs k >= 2")
    node_list, symmetric = normalize_graph(nodes, edges)
    elements = [f"a{i}" for i in range(1, k + 1)]
    return Instance.from_tuples(
        {
            "D": [
                (first, second)
                for first in elements
                for second in elements
                if first != second
            ],
            "S": [(v, v) for v in node_list],
            "E": sorted(symmetric),
        }
    )
