"""Hardness reductions from the paper.

* :mod:`repro.reductions.clique` — the CLIQUE reduction of Theorem 3
  (NP-hardness of SOL, coNP-hardness of certain answers).
* :mod:`repro.reductions.boundary` — the Section 4 minimal relaxations
  with target egds and with full target tgds.
* :mod:`repro.reductions.coloring` — the 3-colorability reduction with
  disjunctive target-to-source dependencies.
"""

from repro.reductions.boundary import (
    egd_boundary_setting,
    egd_boundary_source_instance,
    full_tgd_boundary_setting,
    full_tgd_boundary_source_instance,
)
from repro.reductions.clique import (
    certain_answer_query,
    clique_setting,
    clique_source_instance,
    has_k_clique,
    normalize_graph,
)
from repro.reductions.coloring import (
    coloring_setting,
    coloring_source_instance,
    is_three_colorable,
)

__all__ = [
    "egd_boundary_setting",
    "egd_boundary_source_instance",
    "full_tgd_boundary_setting",
    "full_tgd_boundary_source_instance",
    "certain_answer_query",
    "clique_setting",
    "clique_source_instance",
    "has_k_clique",
    "normalize_graph",
    "coloring_setting",
    "coloring_source_instance",
    "is_three_colorable",
]
