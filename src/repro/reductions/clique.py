"""The CLIQUE reduction of Theorem 3.

The setting has source schema ``{D/2, S/2, E/2}``, target schema ``{P/4}``
and no target constraints:

* ``Σ_st``: ``D(x, y) → ∃z ∃w P(x, z, y, w)``;
* ``Σ_ts``: ``P(x, z, y, w) → E(z, w)`` plus the association-consistency
  dependencies concluding in ``S``.

Given a graph ``G = (V, E)`` and ``k ≥ 2``, the source instance
``I(G, k)`` consists of the inequality relation ``D`` on ``k`` fresh
elements ``a_1, ..., a_k``, the equality relation ``S = {(v, v) | v ∈ V}``,
and the (symmetric, irreflexive) edge relation of ``G``.  Then ``G`` has a
``k``-clique iff a solution for ``(I(G, k), ∅)`` exists.

**Fidelity note.** The paper's proof sketch lists a single consistency
dependency, ``P(x,z,y,w) ∧ P(x,z',y',w') → S(z,z')``, and describes its
role as "an element in a_1, ..., a_k cannot be associated with two
distinct nodes of G".  Read literally, that one dependency only makes the
*first* component of the association functional, which is not sufficient
for the stated equivalence (a single edge would admit a solution for any
``k``).  We therefore materialize the described property in full, with two
additional dependencies of the same shape that make the second component
functional and tie the two components together.  All three share the
features the paper analyzes (two-literal left-hand sides whose marked
variables violate condition 2.2 while respecting condition 1), so the
setting still witnesses every claim of Sections 3.2 and 4.

For the coNP-hardness of certain answers, the same construction is used
with the ``a_i`` drawn from ``V`` (padding ``V`` when ``k > |V|``) and the
Boolean query ``∃x P(x, x, x, x)``: ``G`` has a ``k``-clique iff the query
is *not* certain.
"""

from __future__ import annotations

import itertools
from typing import Hashable, Iterable, Sequence

from repro.core.instance import Instance
from repro.core.query import ConjunctiveQuery
from repro.core.parser import parse_query
from repro.core.setting import PDESetting

__all__ = [
    "clique_setting",
    "clique_source_instance",
    "certain_answer_query",
    "has_k_clique",
    "normalize_graph",
]

Edge = tuple[Hashable, Hashable]


def clique_setting() -> PDESetting:
    """Build the PDE setting of Theorem 3 (no target constraints)."""
    return PDESetting.from_text(
        source={"D": 2, "S": 2, "E": 2},
        target={"P": 4},
        st="D(x, y) -> P(x, z, y, w)",
        ts="""
            P(x, z, y, w) -> E(z, w)
            P(x, z, y, w), P(x, z2, y2, w2) -> S(z, z2)
            P(x, z, y, w), P(x2, z2, y, w2) -> S(w, w2)
            P(x, z, y, w), P(y, z2, y2, w2) -> S(w, z2)
        """,
        name="clique-reduction (Theorem 3)",
    )


def normalize_graph(
    nodes: Iterable[Hashable], edges: Iterable[Edge]
) -> tuple[list[Hashable], set[Edge]]:
    """Normalize a graph: collect nodes, symmetrize edges, drop self-loops."""
    node_list = list(dict.fromkeys(nodes))
    node_set = set(node_list)
    symmetric: set[Edge] = set()
    for u, v in edges:
        if u == v:
            continue
        for endpoint in (u, v):
            if endpoint not in node_set:
                node_set.add(endpoint)
                node_list.append(endpoint)
        symmetric.add((u, v))
        symmetric.add((v, u))
    return node_list, symmetric


def clique_source_instance(
    nodes: Iterable[Hashable],
    edges: Iterable[Edge],
    k: int,
    draw_from_nodes: bool = False,
) -> Instance:
    """Build the source instance ``I(G, k)`` of Theorem 3.

    Args:
        nodes: the vertices of ``G``.
        edges: the edges of ``G`` (symmetrized, self-loops dropped).
        k: the clique size; must be at least 2 for the equivalence to hold.
        draw_from_nodes: draw the elements ``a_1, ..., a_k`` from ``V``
            itself (the certain-answers variant of the proof); ``V`` is
            padded with fresh elements when ``k > |V|``, exactly as the
            paper suggests.

    Returns:
        an :class:`Instance` over the source schema of
        :func:`clique_setting`.
    """
    if k < 2:
        raise ValueError("the reduction needs k >= 2")
    node_list, symmetric = normalize_graph(nodes, edges)

    if draw_from_nodes:
        pool = list(node_list)
        index = 0
        while len(pool) < k:
            pool.append(f"__pad{index}")
            index += 1
        elements = pool[:k]
        s_nodes = list(dict.fromkeys(node_list + pool))
    else:
        elements = [f"a{i}" for i in range(1, k + 1)]
        s_nodes = node_list

    tuples: dict[str, list[tuple]] = {
        "D": [
            (first, second)
            for first in elements
            for second in elements
            if first != second
        ],
        "S": [(v, v) for v in s_nodes],
        "E": sorted(symmetric),
    }
    return Instance.from_tuples(tuples)


def certain_answer_query() -> ConjunctiveQuery:
    """The Boolean query ``∃x P(x, x, x, x)`` from Theorem 3."""
    return parse_query("P(x, x, x, x)")


def has_k_clique(
    nodes: Sequence[Hashable], edges: Iterable[Edge], k: int
) -> bool:
    """Reference oracle: does ``G`` contain a ``k``-clique?

    Exhaustive over node combinations; fine for the small graphs used in
    tests and benchmarks.
    """
    node_list, symmetric = normalize_graph(nodes, edges)
    if k <= 0:
        return True
    if k == 1:
        return bool(node_list)
    for combo in itertools.combinations(node_list, k):
        if all(
            (u, v) in symmetric for u, v in itertools.combinations(combo, 2)
        ):
            return True
    return False
