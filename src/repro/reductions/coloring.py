"""The 3-colorability boundary setting (end of Section 4).

Shows that allowing *disjunction* in the right-hand side of target-to-
source dependencies crosses the tractability boundary even with no target
constraints and with conditions (1) and (2.2) of Definition 9 satisfied.

Source schema: ``{E/2, R/1, B/1, G/1}``; target schema: ``{Ep/2, C/2}``.

* ``Σ_st``: ``E(x, y) → ∃u C(x, u)`` and ``E(x, y) → Ep(x, y)``;
* ``Σ_ts``: ``Ep(x, y) ∧ C(x, u) ∧ C(y, v) →`` the disjunction of the six
  ordered pairs of distinct colors over ``(u, v)``.

With ``I = (E, R={r}, G={g}, B={b})`` and ``J = ∅``, the graph ``E`` is
3-colorable iff a solution exists.  (The paper's displayed formula mixes
``∧``/``∨`` typographically; the intended right-hand side is the
disjunction of the six conjunctions, which is what we build.)
"""

from __future__ import annotations

import itertools
from typing import Hashable, Iterable, Sequence

from repro.core.instance import Instance
from repro.core.setting import PDESetting
from repro.reductions.clique import Edge, normalize_graph

__all__ = [
    "coloring_setting",
    "coloring_source_instance",
    "is_three_colorable",
]


def coloring_setting() -> PDESetting:
    """Build the disjunctive-``Σ_ts`` setting of the 3-COL reduction."""
    disjuncts = " | ".join(
        f"({first}(u), {second}(v))"
        for first, second in itertools.permutations(("R", "B", "G"), 2)
    )
    return PDESetting.from_text(
        source={"E": 2, "R": 1, "B": 1, "G": 1},
        target={"Ep": 2, "C": 2},
        st="""
            E(x, y) -> C(x, u)
            E(x, y) -> Ep(x, y)
        """,
        ts=f"Ep(x, y), C(x, u), C(y, v) -> {disjuncts}",
        name="3-colorability boundary (Section 4)",
    )


def coloring_source_instance(
    nodes: Iterable[Hashable], edges: Iterable[Edge]
) -> Instance:
    """Build the source instance: the graph's edges plus one color constant
    per color relation."""
    _nodes, symmetric = normalize_graph(nodes, edges)
    return Instance.from_tuples(
        {
            "E": sorted(symmetric),
            "R": [("r",)],
            "B": [("b",)],
            "G": [("g",)],
        }
    )


def is_three_colorable(
    nodes: Sequence[Hashable], edges: Iterable[Edge]
) -> bool:
    """Reference oracle: brute-force 3-colorability over the node list."""
    node_list, symmetric = normalize_graph(nodes, edges)
    if not node_list:
        return True
    for coloring in itertools.product(range(3), repeat=len(node_list)):
        color = dict(zip(node_list, coloring))
        if all(color[u] != color[v] for (u, v) in symmetric):
            return True
    return False
