"""Tractability analysis: marked positions/variables and the C_tract class.

Implements Definitions 8 and 9 of the paper, with diagnostic reports
explaining membership decisions.
"""

from repro.tractability.classifier import (
    CtractReport,
    classify,
    condition1_violations,
    condition2_2_violations,
    is_in_ctract,
)
from repro.tractability.marking import marked_positions, marked_variables

__all__ = [
    "CtractReport",
    "classify",
    "condition1_violations",
    "condition2_2_violations",
    "is_in_ctract",
    "marked_positions",
    "marked_variables",
]
