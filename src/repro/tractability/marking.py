"""Marked positions and marked variables (Definition 8).

For a PDE setting with no target constraints:

* the ``i``-th position of a target relation ``T`` is **marked** when some
  source-to-target tgd has a head atom ``T(z1, ..., zn)`` whose ``i``-th
  argument is an existentially quantified variable — i.e. a chase of
  ``Σ_st`` may place a labeled null there;
* a variable ``z`` of a target-to-source tgd is **marked** when it occurs
  at a marked position of a body atom, or when it is existentially
  quantified — i.e. the corresponding value of a chase of ``Σ_ts`` may be
  a labeled null.

These notions drive the definition of the tractable class ``C_tract``
(Definition 9) implemented in :mod:`repro.tractability.classifier`.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.dependencies import TGD, DisjunctiveTGD
from repro.core.terms import Variable, is_variable

__all__ = ["marked_positions", "marked_variables"]


def marked_positions(sigma_st: Iterable[TGD]) -> set[tuple[str, int]]:
    """Return the marked positions ``(relation, index)`` of the target schema.

    A position is marked when some tgd of ``Σ_st`` writes an existentially
    quantified variable into it.
    """
    marked: set[tuple[str, int]] = set()
    for tgd in sigma_st:
        existentials = tgd.existential_variables()
        for atom in tgd.head:
            for index, arg in enumerate(atom.args):
                if is_variable(arg) and arg in existentials:
                    marked.add((atom.relation, index))
    return marked


def marked_variables(
    ts_dependency: TGD | DisjunctiveTGD,
    positions: set[tuple[str, int]],
) -> set[Variable]:
    """Return the marked variables of one target-to-source dependency.

    A variable is marked when (1) it occurs at a marked position of a body
    atom, or (2) it is existentially quantified.  The two cases are
    mutually exclusive (an existential variable never occurs in the body).

    Args:
        ts_dependency: a dependency of ``Σ_ts``.
        positions: the marked positions, from :func:`marked_positions`.
    """
    marked: set[Variable] = set()
    for atom in ts_dependency.body:
        for index, arg in enumerate(atom.args):
            if is_variable(arg) and (atom.relation, index) in positions:
                marked.add(arg)
    marked |= ts_dependency.existential_variables()
    return marked


def body_occurrence_count(
    body: Sequence, variable: Variable
) -> int:
    """Count the total occurrences of ``variable`` across the body atoms.

    Condition 1 of Definition 9 requires every marked variable to appear
    *at most once* in the left-hand side — counting occurrences, not atoms,
    so a repeated variable inside a single atom also violates it.
    """
    return sum(
        1 for atom in body for arg in atom.args if arg == variable
    )
