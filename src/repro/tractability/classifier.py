"""The tractable class ``C_tract`` (Definition 9) and its classifier.

A PDE setting with no target constraints is in ``C_tract`` when:

1. for every tgd ``D`` of ``Σ_ts``, every marked variable of ``D`` appears
   at most once in the left-hand side of ``D``; and
2. one of:

   * **2.1** the left-hand side of every tgd of ``Σ_ts`` is a single
     literal; or
   * **2.2** for every tgd ``D`` of ``Σ_ts`` and every pair of marked
     variables that appear together in a conjunct of the right-hand side,
     either they appear together in some conjunct of the left-hand side,
     or neither appears in the left-hand side at all.

Two prominent subclasses (Corollaries 1 and 2): settings whose ``Σ_st``
consists of full tgds, and settings whose ``Σ_ts`` consists of LAV tgds.
The classifier reports which conditions hold, every violation it finds,
and the recognized subclass, so solvers and tests can explain dispatch
decisions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations

from repro.core.dependencies import TGD, DisjunctiveTGD
from repro.core.setting import PDESetting
from repro.core.terms import Variable
from repro.tractability.marking import body_occurrence_count, marked_positions, marked_variables

__all__ = [
    "CtractReport",
    "classify",
    "is_in_ctract",
    "condition1_violations",
    "condition2_2_violations",
]


@dataclass(frozen=True)
class CtractReport:
    """The result of classifying a setting against Definition 9.

    Attributes:
        in_ctract: overall membership verdict.
        condition1: condition 1 holds (marked variables not repeated in any
            left-hand side).
        condition2_1: condition 2.1 holds (every ``Σ_ts`` left-hand side is
            a single literal).
        condition2_2: condition 2.2 holds (co-occurring marked variables are
            body-adjacent or body-absent).
        has_target_constraints: the setting has a non-empty ``Σ_t`` —
            ``C_tract`` is only defined for settings without them.
        has_disjunctive_ts: ``Σ_ts`` contains a disjunctive tgd, which falls
            outside Definition 9.
        lav_ts: every ``Σ_ts`` dependency is a LAV tgd (Corollary 2).
        full_st: every ``Σ_st`` tgd is full (Corollary 1).
        violations: human-readable explanations of each failed check.
    """

    in_ctract: bool
    condition1: bool
    condition2_1: bool
    condition2_2: bool
    has_target_constraints: bool
    has_disjunctive_ts: bool
    lav_ts: bool
    full_st: bool
    violations: tuple[str, ...] = field(default=())

    def subclass(self) -> str:
        """Return the recognized subclass name, for reporting."""
        if self.full_st and self.lav_ts:
            return "full Σ_st + LAV Σ_ts"
        if self.full_st:
            return "full Σ_st (Corollary 1)"
        if self.lav_ts:
            return "LAV Σ_ts (Corollary 2)"
        if self.in_ctract:
            return "general C_tract"
        return "not in C_tract"


def condition1_violations(
    dependency: TGD | DisjunctiveTGD, marked: set[Variable]
) -> list[str]:
    """Per-dependency condition 1 checks, one message per repeated marked
    variable.  Shared by :func:`classify` and the lint rules of
    :mod:`repro.analysis`, so the two always report identical text.
    """
    violations = []
    for variable in sorted(marked, key=lambda v: v.name):
        occurrences = body_occurrence_count(dependency.body, variable)
        if occurrences > 1:
            violations.append(
                f"condition 1: marked variable {variable} occurs {occurrences} "
                f"times in the left-hand side of {dependency}"
            )
    return violations


def _pairs_in_conjuncts(
    atoms, marked: set[Variable]
) -> set[frozenset[Variable]]:
    """Pairs of distinct marked variables co-occurring in some atom."""
    pairs: set[frozenset[Variable]] = set()
    for atom in atoms:
        present = sorted(
            (v for v in atom.variables() if v in marked), key=lambda v: v.name
        )
        for first, second in combinations(set(present), 2):
            pairs.add(frozenset((first, second)))
    return pairs


def condition2_2_violations(
    dependency: TGD | DisjunctiveTGD, marked: set[Variable]
) -> list[str]:
    """Per-dependency condition 2.2 checks, one message per offending pair
    of marked variables.  Shared with the lint rules of :mod:`repro.analysis`.
    """
    body_variables = dependency.body_variables()
    body_pairs = _pairs_in_conjuncts(dependency.body, marked)
    if isinstance(dependency, TGD):
        head_atoms = list(dependency.head)
    else:
        # For reporting purposes, a disjunctive head is checked over the
        # atoms of all its disjuncts ("conjunct" in Definition 9 means a
        # single atom).  Membership in C_tract is still denied separately,
        # because disjunction falls outside the tgd language of the class.
        head_atoms = [atom for disjunct in dependency.disjuncts for atom in disjunct]
    violations = []
    for pair in sorted(
        _pairs_in_conjuncts(head_atoms, marked),
        key=lambda p: sorted(v.name for v in p),
    ):
        if pair in body_pairs:
            continue  # 2.2 (a): adjacent in some body conjunct
        if not (pair & body_variables):
            continue  # 2.2 (b): neither occurs in the body
        first, second = sorted(pair, key=lambda v: v.name)
        violations.append(
            f"condition 2.2: marked variables {first} and {second} co-occur in "
            f"the right-hand side of {dependency} but are neither body-adjacent "
            f"nor both body-absent"
        )
    return violations


def classify(setting: PDESetting) -> CtractReport:
    """Classify ``setting`` against Definition 9, with full diagnostics."""
    violations: list[str] = []

    has_target_constraints = setting.has_target_constraints
    if has_target_constraints:
        violations.append(
            "C_tract is defined for settings with no target constraints, "
            f"but Σ_t has {len(setting.sigma_t)} dependencies"
        )
    has_disjunctive_ts = setting.has_disjunctive_ts
    if has_disjunctive_ts:
        violations.append(
            "Σ_ts contains a disjunctive tgd, which falls outside Definition 9"
        )

    positions = marked_positions(setting.sigma_st)

    condition1 = True
    condition2_1 = True
    condition2_2 = True
    multi_literal: list[TGD | DisjunctiveTGD] = []
    for dependency in setting.sigma_ts:
        marked = marked_variables(dependency, positions)
        failures = condition1_violations(dependency, marked)
        if failures:
            condition1 = False
            violations.extend(failures)
        if len(dependency.body) != 1:
            condition2_1 = False
            multi_literal.append(dependency)
        failures = condition2_2_violations(dependency, marked)
        if failures:
            condition2_2 = False
            violations.extend(failures)
    if not condition2_1 and not condition2_2:
        # Only when condition 2 fails outright do the 2.1 details matter;
        # a multi-literal lhs is fine on its own as long as 2.2 holds.
        for dependency in multi_literal:
            violations.append(
                f"condition 2.1: the left-hand side of {dependency} has "
                f"{len(dependency.body)} literals (a single literal is required)"
            )
        violations.append("condition 2: neither 2.1 nor 2.2 holds")

    lav_ts = all(
        isinstance(d, TGD) and d.is_lav() for d in setting.sigma_ts
    )
    full_st = all(tgd.is_full() for tgd in setting.sigma_st)

    in_ctract = (
        not has_target_constraints
        and not has_disjunctive_ts
        and condition1
        and (condition2_1 or condition2_2)
    )
    return CtractReport(
        in_ctract=in_ctract,
        condition1=condition1,
        condition2_1=condition2_1,
        condition2_2=condition2_2,
        has_target_constraints=has_target_constraints,
        has_disjunctive_ts=has_disjunctive_ts,
        lav_ts=lav_ts,
        full_st=full_st,
        violations=tuple(violations),
    )


def is_in_ctract(setting: PDESetting) -> bool:
    """Return True if ``setting`` belongs to ``C_tract`` (Definition 9)."""
    return classify(setting).in_ctract
