"""Exporters for recorded traces: JSONL files, text trees, Chrome dumps.

Three consumers, three formats:

* **JSONL trace files** (:func:`write_trace_jsonl` /
  :func:`read_trace_jsonl`) — the durable, diffable artifact.  One JSON
  record per line: a schema-versioned ``header`` first, then every span
  in depth-first preorder (so a parent always precedes its children) and
  any orphan events.  Like :class:`~repro.runtime.SessionJournal`, the
  reader tolerates a torn final line — a process that died mid-write
  loses only the record it was writing.
* **a text tree** (:func:`render_span_tree`) — the CLI's human view:
  nesting, per-span wall time, and compactly rendered attributes and
  counters.
* **Chrome ``trace_event`` dumps** (:func:`chrome_trace` /
  :func:`write_chrome_trace`) — load into ``chrome://tracing`` or
  Perfetto for a flamegraph; complete spans (``ph: "X"``) with
  microsecond timestamps, events as instants (``ph: "i"``).

:func:`aggregate_spans` folds a span forest into per-name totals
(count, inclusive and self time) — the data behind
``repro.cli profile``'s top-k table.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable, Iterator, Sequence

from repro.exceptions import TraceError
from repro.obs.tracer import Span, Tracer

__all__ = [
    "TRACE_SCHEMA_VERSION",
    "trace_records",
    "write_trace_jsonl",
    "read_trace_jsonl",
    "render_span_tree",
    "chrome_trace",
    "write_chrome_trace",
    "aggregate_spans",
]

#: Version stamped into every JSONL trace header.
TRACE_SCHEMA_VERSION = 1


def _jsonable(value: Any) -> Any:
    """Recursively coerce a span attribute into JSON-safe data."""
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, (set, frozenset)):
        return sorted(str(item) for item in value)
    return str(value)


def _roots(trace: "Tracer | Sequence[Span]") -> list[Span]:
    if isinstance(trace, Tracer):
        return list(trace.roots)
    return list(trace)


def trace_records(trace: "Tracer | Sequence[Span]") -> Iterator[dict[str, Any]]:
    """Yield the JSONL records for a trace: header, spans, orphan events."""
    yield {
        "type": "header",
        "version": TRACE_SCHEMA_VERSION,
        "format": "repro-trace",
    }
    next_id = 0
    for root in _roots(trace):
        stack: list[tuple[Span, int | None]] = [(root, None)]
        while stack:
            span, parent = stack.pop()
            span_id = next_id
            next_id += 1
            yield {
                "type": "span",
                "id": span_id,
                "parent": parent,
                "name": span.name,
                "start": span.start,
                "end": span.end,
                "attributes": _jsonable(span.attributes),
                "counters": _jsonable(span.counters),
                "events": _jsonable(span.events),
            }
            # Reversed so preorder pops children in recorded order.
            for child in reversed(span.children):
                stack.append((child, span_id))
    if isinstance(trace, Tracer):
        for event in trace.orphan_events:
            yield {"type": "event", "parent": None, **_jsonable(event)}


def write_trace_jsonl(trace: "Tracer | Sequence[Span]", path: str | Path) -> int:
    """Write a trace to ``path`` in JSONL form; returns the span count."""
    spans = 0
    with open(path, "w", encoding="utf-8") as handle:
        for record in trace_records(trace):
            handle.write(json.dumps(record, sort_keys=True) + "\n")
            if record["type"] == "span":
                spans += 1
    return spans


def read_trace_jsonl(path: str | Path) -> list[Span]:
    """Rebuild the span forest from a JSONL trace file.

    Raises :class:`~repro.exceptions.TraceError` on a missing/invalid
    header, unsupported version, or corrupt interior record.  A torn
    final line (crash mid-write) is dropped silently, along with any
    spans whose parent record was lost with it.
    """
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as error:
        raise TraceError(f"cannot read trace {path}: {error}")
    lines = text.split("\n")
    tail_committed = lines and lines[-1] == ""
    if tail_committed:
        lines = lines[:-1]
    records: list[dict[str, Any]] = []
    for index, line in enumerate(lines):
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError:
            if index == len(lines) - 1 and not tail_committed:
                break  # torn final write
            raise TraceError(f"trace {path} corrupt at line {index + 1}")
    if not records or records[0].get("type") != "header":
        raise TraceError(f"trace {path} has no header record")
    if records[0].get("format") != "repro-trace":
        raise TraceError(f"trace {path} is not a repro trace")
    if records[0].get("version") != TRACE_SCHEMA_VERSION:
        raise TraceError(
            f"trace {path} has unsupported version {records[0].get('version')!r}"
        )

    roots: list[Span] = []
    by_id: dict[int, Span] = {}
    for record in records[1:]:
        if record.get("type") != "span":
            continue
        span = Span(record.get("name", "?"))
        span.start = float(record.get("start", 0.0))
        span.end = float(record.get("end", span.start))
        span.attributes = dict(record.get("attributes", {}))
        span.counters = dict(record.get("counters", {}))
        span.events = list(record.get("events", []))
        by_id[int(record["id"])] = span
        parent = record.get("parent")
        if parent is None:
            roots.append(span)
        elif parent in by_id:
            by_id[parent].children.append(span)
        # else: the parent was on the torn final line — drop the orphan.
    return roots


def _compact(value: Any, limit: int = 48) -> str:
    """Render an attribute value on one line, truncated for the tree view."""
    if isinstance(value, float):
        rendered = f"{value:.4g}"
    elif isinstance(value, dict):
        rendered = "{" + ", ".join(f"{k}={_compact(v)}" for k, v in value.items()) + "}"
    else:
        rendered = str(value)
    if len(rendered) > limit:
        rendered = rendered[: limit - 1] + "…"
    return rendered


def render_span_tree(trace: "Tracer | Sequence[Span]") -> str:
    """Render the span forest as an indented text tree with durations."""
    lines: list[str] = []
    for root in _roots(trace):
        for depth, span in root.walk():
            annotations = {**span.attributes, **span.counters}
            suffix = ""
            if annotations:
                rendered = " ".join(
                    f"{key}={_compact(value)}" for key, value in annotations.items()
                )
                suffix = f"  [{rendered}]"
            name = "  " * depth + span.name
            lines.append(f"{name:<32s} {span.duration * 1000:9.2f} ms{suffix}")
            for event in span.events:
                marker = "  " * (depth + 1) + "· " + str(event.get("name", "?"))
                attrs = event.get("attributes") or {}
                rendered = " ".join(f"{k}={_compact(v)}" for k, v in attrs.items())
                lines.append(f"{marker:<32s}  @{float(event.get('at', 0.0)):.6f}"
                             + (f"  [{rendered}]" if rendered else ""))
    return "\n".join(lines)


def chrome_trace(trace: "Tracer | Sequence[Span]") -> dict[str, Any]:
    """Convert a trace to the Chrome ``trace_event`` JSON format.

    Timestamps are microseconds relative to the earliest span start, so
    the dump loads with t=0 at the left edge of the timeline.
    """
    roots = _roots(trace)
    starts = [span.start for root in roots for _d, span in root.walk()]
    origin = min(starts, default=0.0)
    events: list[dict[str, Any]] = []
    for root in roots:
        for _depth, span in root.walk():
            events.append(
                {
                    "name": span.name,
                    "ph": "X",
                    "ts": (span.start - origin) * 1e6,
                    "dur": span.duration * 1e6,
                    "pid": 1,
                    "tid": 1,
                    "args": _jsonable({**span.attributes, **span.counters}),
                }
            )
            for event in span.events:
                events.append(
                    {
                        "name": str(event.get("name", "?")),
                        "ph": "i",
                        "s": "t",
                        "ts": (float(event.get("at", span.start)) - origin) * 1e6,
                        "pid": 1,
                        "tid": 1,
                        "args": _jsonable(event.get("attributes") or {}),
                    }
                )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(trace: "Tracer | Sequence[Span]", path: str | Path) -> None:
    """Write the Chrome ``trace_event`` dump to ``path``."""
    Path(path).write_text(
        json.dumps(chrome_trace(trace), sort_keys=True), encoding="utf-8"
    )


def aggregate_spans(
    trace: "Tracer | Sequence[Span]", top: int | None = None
) -> list[dict[str, Any]]:
    """Fold the span forest into per-name totals, heaviest self-time first.

    Each entry carries ``name``, ``count``, ``total_s`` (inclusive wall
    time), and ``self_s`` (inclusive minus direct children).  ``top``
    truncates the list after sorting.
    """
    totals: dict[str, dict[str, Any]] = {}
    for root in _roots(trace):
        for _depth, span in root.walk():
            entry = totals.setdefault(
                span.name, {"name": span.name, "count": 0, "total_s": 0.0, "self_s": 0.0}
            )
            entry["count"] += 1
            entry["total_s"] += span.duration
            entry["self_s"] += span.self_duration
    ranked = sorted(totals.values(), key=lambda e: (-e["self_s"], -e["total_s"], e["name"]))
    return ranked[:top] if top is not None else ranked
