"""Hierarchical tracing with a pay-nothing no-op default.

A :class:`Tracer` records a tree of :class:`Span` objects — one per
instrumented region, nested by dynamic extent::

    tracer = Tracer()
    with tracer.span("solve", method="auto") as span:
        with tracer.span("chase"):
            ...
        span.set("exists", True)

Each span carries wall time (measured on an injectable clock), free-form
``attributes``, integer ``counters``, and point-in-time ``events``.  The
tree is an in-memory artifact; :mod:`repro.obs.exporters` turns it into
JSONL trace files, a human-readable tree, or a Chrome ``trace_event``
dump.

Untraced runs must pay ~nothing, so every instrumented entry point
accepts ``tracer=None`` and substitutes :data:`NULL_TRACER` — a
:class:`NullTracer` whose ``span()`` returns a shared, stateless context
manager and whose other methods are empty.  Instrumented code guards any
*expensive* attribute computation behind ``tracer.enabled``; the cheap
calls themselves cost one no-op method dispatch at span granularity
(never per chase step or per search node — those are aggregated into
counters from data the solvers already keep).
"""

from __future__ import annotations

import time
from typing import Any, Callable, Iterator

__all__ = ["Span", "Tracer", "NullTracer", "NULL_TRACER"]


class Span:
    """One timed region of a traced computation.

    Attributes:
        name: the region's name (``"solve"``, ``"chase"``, ...).
        attributes: free-form key/value annotations (JSON-sanitized on
            export; values may be any Python object in memory).
        counters: integer/float deltas accumulated via :meth:`add`.
        events: point-in-time records ``{"name", "at", "attributes"}``.
        children: sub-spans, in start order.
        start: clock reading when the span opened.
        end: clock reading when the span closed (== ``start`` while open).
    """

    __slots__ = ("name", "attributes", "counters", "events", "children", "start", "end")

    def __init__(
        self,
        name: str,
        attributes: dict[str, Any] | None = None,
        start: float = 0.0,
    ) -> None:
        self.name = name
        self.attributes: dict[str, Any] = dict(attributes) if attributes else {}
        self.counters: dict[str, int | float] = {}
        self.events: list[dict[str, Any]] = []
        self.children: list[Span] = []
        self.start = start
        self.end = start

    @property
    def duration(self) -> float:
        """Wall time spent inside the span, in clock units (seconds)."""
        return max(0.0, self.end - self.start)

    @property
    def self_duration(self) -> float:
        """Duration minus the time spent in direct children."""
        return max(0.0, self.duration - sum(c.duration for c in self.children))

    def set(self, key: str, value: Any) -> None:
        """Set one attribute on the span."""
        self.attributes[key] = value

    def add(self, counter: str, delta: int | float = 1) -> None:
        """Accumulate ``delta`` into a named counter."""
        self.counters[counter] = self.counters.get(counter, 0) + delta

    def walk(self, depth: int = 0) -> Iterator[tuple[int, "Span"]]:
        """Yield ``(depth, span)`` over the subtree, depth-first preorder."""
        yield depth, self
        for child in self.children:
            yield from child.walk(depth + 1)

    def find(self, name: str) -> "Span | None":
        """The first span named ``name`` in the subtree (preorder), or None."""
        for _depth, span in self.walk():
            if span.name == name:
                return span
        return None

    def total(self, counter: str) -> int | float:
        """Sum a counter over the whole subtree."""
        return sum(span.counters.get(counter, 0) for _d, span in self.walk())

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, {self.duration * 1000:.2f}ms, "
            f"{len(self.children)} children)"
        )


class _SpanContext:
    """Context manager opening one span on a tracer."""

    __slots__ = ("_tracer", "_name", "_attributes", "span")

    def __init__(self, tracer: "Tracer", name: str, attributes: dict[str, Any]):
        self._tracer = tracer
        self._name = name
        self._attributes = attributes
        self.span: Span | None = None

    def __enter__(self) -> Span:
        self.span = self._tracer._push(self._name, self._attributes)
        return self.span

    def __exit__(self, exc_type, exc, _tb) -> bool:
        assert self.span is not None
        if exc_type is not None:
            self.span.set("error", exc_type.__name__)
        self._tracer._pop(self.span)
        return False


class Tracer:
    """Records a forest of spans with a stack-shaped open-span state.

    Args:
        clock: monotone time source; injectable for deterministic tests.
            Defaults to :func:`time.perf_counter`.
    """

    enabled = True

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self.clock = clock
        self.roots: list[Span] = []
        self.orphan_events: list[dict[str, Any]] = []
        self._stack: list[Span] = []

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------

    def span(self, name: str, **attributes: Any) -> _SpanContext:
        """Open a span as a context manager; yields the :class:`Span`."""
        return _SpanContext(self, name, attributes)

    def event(self, name: str, **attributes: Any) -> None:
        """Record a point-in-time event on the current span.

        Events outside any span are kept in :attr:`orphan_events` (they
        still export, parentless).
        """
        record = {"name": name, "at": self.clock(), "attributes": attributes}
        if self._stack:
            self._stack[-1].events.append(record)
        else:
            self.orphan_events.append(record)

    def add(self, counter: str, delta: int | float = 1) -> None:
        """Accumulate a counter on the current span (no-op outside spans)."""
        if self._stack:
            self._stack[-1].add(counter, delta)

    def annotate(self, **attributes: Any) -> None:
        """Set attributes on the current span (no-op outside spans)."""
        if self._stack:
            self._stack[-1].attributes.update(attributes)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------

    @property
    def current(self) -> Span | None:
        """The innermost open span, or None."""
        return self._stack[-1] if self._stack else None

    def spans(self) -> Iterator[Span]:
        """All recorded spans, depth-first preorder across roots."""
        for root in self.roots:
            for _depth, span in root.walk():
                yield span

    def find(self, name: str) -> Span | None:
        """The first recorded span named ``name``, or None."""
        for span in self.spans():
            if span.name == name:
                return span
        return None

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _push(self, name: str, attributes: dict[str, Any]) -> Span:
        span = Span(name, attributes, start=self.clock())
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        return span

    def _pop(self, span: Span) -> None:
        span.end = self.clock()
        # Tolerate mispaired exits instead of corrupting the stack.
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        elif span in self._stack:
            while self._stack and self._stack.pop() is not span:
                pass


class _NullSpan:
    """The span handed out by :class:`NullTracer`: every method is a no-op.

    Doubles as its own context manager so ``with tracer.span(...) as s``
    costs two attribute lookups and nothing else on the no-op path.
    """

    __slots__ = ()
    name = ""
    attributes: dict[str, Any] = {}
    counters: dict[str, int | float] = {}
    events: list[dict[str, Any]] = []
    children: list["Span"] = []
    start = 0.0
    end = 0.0
    duration = 0.0
    self_duration = 0.0

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *_exc) -> bool:
        return False

    def set(self, key: str, value: Any) -> None:
        pass

    def add(self, counter: str, delta: int | float = 1) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer(Tracer):
    """A tracer that records nothing; the default for untraced runs.

    Instrumentation checks :attr:`enabled` before computing expensive
    attributes, so the no-op path pays one method call per *span*, not
    per unit of solver work.
    """

    enabled = False
    roots: list[Span] = []
    orphan_events: list[dict[str, Any]] = []

    def __init__(self) -> None:  # deliberately stateless
        pass

    def span(self, name: str, **attributes: Any) -> _NullSpan:  # type: ignore[override]
        return _NULL_SPAN

    def event(self, name: str, **attributes: Any) -> None:
        pass

    def add(self, counter: str, delta: int | float = 1) -> None:
        pass

    def annotate(self, **attributes: Any) -> None:
        pass

    @property
    def current(self) -> Span | None:
        return None

    def spans(self) -> Iterator[Span]:
        return iter(())

    def find(self, name: str) -> Span | None:
        return None


#: Shared no-op tracer; instrumented entry points substitute it for None.
NULL_TRACER = NullTracer()
