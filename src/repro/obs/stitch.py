"""Stitch per-peer JSONL trace files into one cross-peer timeline.

Each process in a distributed run exports its own trace file; the wire
context (:class:`~repro.obs.context.TraceContext`) leaves correlation
breadcrumbs in span attributes (``ctx.trace`` / ``ctx.span`` /
``ctx.parent``).  :func:`stitch` merges the files back into one
:class:`StitchedTimeline`:

* every span is tagged with its **lane** — the peer/process it came
  from (the span's own ``lane`` attribute when set, else the file's
  label);
* spans sharing a ``ctx.trace`` id are grouped into one trace and
  ordered **causally** (parent before child along ``ctx.parent`` links,
  start time as the tiebreak), so a publish reads top-to-bottom:
  publisher → daemon ingest → peer apply — even though the hops were
  recorded by different tracers;
* orphan events (chaos injections, queue evictions) ride along as
  instants, carrying their lane and any ``trace`` correlation id.

The reader here is deliberately **more lenient** than
:func:`~repro.obs.exporters.read_trace_jsonl`: files written by
concurrent daemons may interleave multiple header records (span ids
restart after each) and tear arbitrary lines, not just the final one.
Unparsable lines are skipped and counted (:attr:`StitchedTimeline.
corrupt_lines`) rather than raised — a half-dead fleet's traces must
still stitch.  Only an unreadable *file* raises
:class:`~repro.exceptions.TraceError`.

Exports: :meth:`StitchedTimeline.chrome` produces a Chrome
``trace_event`` dump with **one lane per peer** (``tid`` per lane,
thread-name metadata), and :meth:`StitchedTimeline.render` a text
timeline grouped by trace id.

Caveat: stitching compares raw clock readings across files, so it
assumes the writers shared a clock domain (one test process, or
wall-clock tracers).  Skew between machines skews lanes, not causality
— the ctx links still order parent before child.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping

from repro.exceptions import TraceError

__all__ = ["StitchedSpan", "StitchedEvent", "StitchedTimeline", "stitch"]


@dataclass
class StitchedSpan:
    """One span from one lane's trace file, with its wire correlation."""

    lane: str
    name: str
    start: float
    end: float
    attributes: dict[str, Any] = field(default_factory=dict)
    counters: dict[str, Any] = field(default_factory=dict)
    events: list[dict[str, Any]] = field(default_factory=list)

    @property
    def duration(self) -> float:
        return max(0.0, self.end - self.start)

    @property
    def trace_id(self) -> str | None:
        value = self.attributes.get("ctx.trace")
        return value if isinstance(value, str) else None

    @property
    def span_id(self) -> str | None:
        value = self.attributes.get("ctx.span")
        return value if isinstance(value, str) else None

    @property
    def parent_id(self) -> str | None:
        value = self.attributes.get("ctx.parent")
        return value if isinstance(value, str) else None


@dataclass
class StitchedEvent:
    """One parentless instant (orphan event) from one lane's trace file."""

    lane: str
    name: str
    at: float
    attributes: dict[str, Any] = field(default_factory=dict)

    @property
    def trace_id(self) -> str | None:
        value = self.attributes.get("trace")
        return value if isinstance(value, str) else None


@dataclass
class StitchedTimeline:
    """The merged, causally-ordered view over per-peer trace files.

    Attributes:
        spans: every span from every file, causally ordered — traces in
            first-start order, and within a trace parents before
            children along the ``ctx.parent`` links.
        events: every orphan event, in time order.
        lanes: the distinct lanes seen, sorted.
        files: label → path for the stitched files.
        corrupt_lines: unparsable lines skipped across all files.
    """

    spans: list[StitchedSpan] = field(default_factory=list)
    events: list[StitchedEvent] = field(default_factory=list)
    lanes: list[str] = field(default_factory=list)
    files: dict[str, str] = field(default_factory=dict)
    corrupt_lines: int = 0

    def traces(self) -> dict[str | None, list[StitchedSpan]]:
        """Spans grouped by correlation id (None = uncorrelated), in order."""
        groups: dict[str | None, list[StitchedSpan]] = {}
        for span in self.spans:
            groups.setdefault(span.trace_id, []).append(span)
        return groups

    def trace_ids(self) -> list[str]:
        """The correlation ids present, in first-start order."""
        return [key for key in self.traces() if key is not None]

    # ------------------------------------------------------------------
    # exports
    # ------------------------------------------------------------------

    def chrome(self) -> dict[str, Any]:
        """A Chrome ``trace_event`` dump with one ``tid`` lane per peer.

        Timestamps are microseconds relative to the earliest reading in
        the timeline, so the dump loads with t=0 at the left edge.
        """
        from repro.obs.exporters import _jsonable

        starts = [s.start for s in self.spans] + [e.at for e in self.events]
        origin = min(starts, default=0.0)
        tids = {lane: index + 1 for index, lane in enumerate(self.lanes)}
        records: list[dict[str, Any]] = [
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "args": {"name": lane},
            }
            for lane, tid in tids.items()
        ]
        for span in self.spans:
            records.append(
                {
                    "name": span.name,
                    "ph": "X",
                    "ts": (span.start - origin) * 1e6,
                    "dur": span.duration * 1e6,
                    "pid": 1,
                    "tid": tids.get(span.lane, 0),
                    "args": _jsonable({**span.attributes, **span.counters}),
                }
            )
            for event in span.events:
                records.append(
                    {
                        "name": str(event.get("name", "?")),
                        "ph": "i",
                        "s": "t",
                        "ts": (float(event.get("at", span.start)) - origin) * 1e6,
                        "pid": 1,
                        "tid": tids.get(span.lane, 0),
                        "args": _jsonable(event.get("attributes") or {}),
                    }
                )
        for event in self.events:
            records.append(
                {
                    "name": event.name,
                    "ph": "i",
                    "s": "t",
                    "ts": (event.at - origin) * 1e6,
                    "pid": 1,
                    "tid": tids.get(event.lane, 0),
                    "args": _jsonable(event.attributes),
                }
            )
        return {"traceEvents": records, "displayTimeUnit": "ms"}

    def write_chrome(self, path: str | Path) -> None:
        """Write the Chrome dump to ``path``."""
        Path(path).write_text(json.dumps(self.chrome(), sort_keys=True), encoding="utf-8")

    def render(self) -> str:
        """A text timeline: one block per trace id, hops in causal order."""
        starts = [s.start for s in self.spans] + [e.at for e in self.events]
        origin = min(starts, default=0.0)
        lines: list[str] = []
        for trace_id, group in self.traces().items():
            lines.append(f"trace {trace_id if trace_id is not None else '(uncorrelated)'}")
            for span in group:
                offset = (span.start - origin) * 1000
                lines.append(
                    f"  {offset:10.3f} ms  {span.lane:<12s} {span.name:<20s}"
                    f" {span.duration * 1000:8.2f} ms"
                )
        if self.events:
            lines.append("events")
            for event in sorted(self.events, key=lambda e: e.at):
                offset = (event.at - origin) * 1000
                trace = event.trace_id
                suffix = f"  trace={trace}" if trace else ""
                lines.append(
                    f"  {offset:10.3f} ms  {event.lane:<12s} {event.name}{suffix}"
                )
        return "\n".join(lines)


def _read_lenient(path: Path) -> tuple[list[dict[str, Any]], int]:
    """Read one trace file's records, skipping damage instead of raising.

    Concurrent writers can tear *any* line, and a re-opened tracer
    re-emits its header (span ids restart), so unlike
    :func:`~repro.obs.exporters.read_trace_jsonl` this accepts multiple
    headers and counts unparsable lines rather than raising.  Only an
    unreadable file raises :class:`~repro.exceptions.TraceError`.
    """
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as error:
        raise TraceError(f"cannot read trace {path}: {error}")
    lines = text.split("\n")
    if lines and lines[-1] == "":
        lines = lines[:-1]
    records: list[dict[str, Any]] = []
    corrupt = 0
    for line in lines:
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            corrupt += 1
            continue
        if isinstance(record, dict):
            records.append(record)
        else:
            corrupt += 1
    return records, corrupt


def _causal_order(group: list[StitchedSpan]) -> list[StitchedSpan]:
    """Parents before children along ctx links, start order as tiebreak."""
    emitted: set[str] = set()
    ordered: list[StitchedSpan] = []
    known = {span.span_id for span in group if span.span_id is not None}
    pending = sorted(group, key=lambda s: (s.start, s.lane, s.name))
    while pending:
        remaining: list[StitchedSpan] = []
        progressed = False
        for span in pending:
            parent = span.parent_id
            if parent is None or parent not in known or parent in emitted:
                ordered.append(span)
                if span.span_id is not None:
                    emitted.add(span.span_id)
                progressed = True
            else:
                remaining.append(span)
        if not progressed:
            # Broken or cyclic links (damaged files): start order wins.
            ordered.extend(remaining)
            break
        pending = remaining
    return ordered


def stitch(
    traces: Mapping[str, str | Path] | Iterable[str | Path],
) -> StitchedTimeline:
    """Merge per-peer JSONL trace files into one timeline.

    Args:
        traces: either a mapping of lane label → trace path, or an
            iterable of paths (each file's stem becomes its label).  A
            span's own ``lane`` attribute, when present, overrides the
            file label — one file can carry several lanes.
    """
    if isinstance(traces, Mapping):
        labelled = {str(label): Path(p) for label, p in traces.items()}
    else:
        labelled = {Path(p).stem: Path(p) for p in traces}

    spans: list[StitchedSpan] = []
    events: list[StitchedEvent] = []
    corrupt = 0
    for label, path in labelled.items():
        records, bad = _read_lenient(path)
        corrupt += bad
        for record in records:
            kind = record.get("type")
            if kind == "span":
                attributes = record.get("attributes")
                counters = record.get("counters")
                span_events = record.get("events")
                attributes = dict(attributes) if isinstance(attributes, dict) else {}
                lane = attributes.get("lane")
                start = record.get("start", 0.0)
                end = record.get("end", start)
                try:
                    start = float(start)
                    end = float(end)
                except (TypeError, ValueError):
                    corrupt += 1
                    continue
                spans.append(
                    StitchedSpan(
                        lane=lane if isinstance(lane, str) else label,
                        name=str(record.get("name", "?")),
                        start=start,
                        end=end,
                        attributes=attributes,
                        counters=dict(counters) if isinstance(counters, dict) else {},
                        events=list(span_events) if isinstance(span_events, list) else [],
                    )
                )
            elif kind == "event":
                attributes = record.get("attributes")
                attributes = dict(attributes) if isinstance(attributes, dict) else {}
                lane = attributes.get("lane")
                try:
                    at = float(record.get("at", 0.0))
                except (TypeError, ValueError):
                    corrupt += 1
                    continue
                events.append(
                    StitchedEvent(
                        lane=lane if isinstance(lane, str) else label,
                        name=str(record.get("name", "?")),
                        at=at,
                        attributes=attributes,
                    )
                )
            # headers (including repeats from re-opened writers) and
            # unknown record types are structural, not data — skip.

    # Order: traces by first start, spans causally within each trace.
    groups: dict[str | None, list[StitchedSpan]] = {}
    for span in spans:
        groups.setdefault(span.trace_id, []).append(span)
    ranked = sorted(
        groups.items(),
        key=lambda item: (min(s.start for s in item[1]), item[0] is None, str(item[0])),
    )
    ordered: list[StitchedSpan] = []
    for _trace_id, group in ranked:
        ordered.extend(_causal_order(group))

    lanes = sorted({s.lane for s in ordered} | {e.lane for e in events})
    return StitchedTimeline(
        spans=ordered,
        events=sorted(events, key=lambda e: (e.at, e.lane, e.name)),
        lanes=lanes,
        files={label: str(path) for label, path in labelled.items()},
        corrupt_lines=corrupt,
    )
