"""Wire-propagated trace context: one correlation id per publish.

A distributed sync round crosses process boundaries — the publisher's
``netd.publish`` span, the daemon's ``netd.ingest`` span, and the peer's
apply all belong to one causal story, but each process records its own
trace file.  :class:`TraceContext` is the compact correlation record
that ties them together on the wire:

* ``trace_id`` — the publish's identity, shared by every span the
  publish causes anywhere in the fleet.  It is **deterministic**:
  ``sender:epoch.seq`` — the same :class:`~repro.sync.Stamp` arithmetic
  that makes ingestion idempotent also names the trace, so two peers
  (or two runs) ingesting the same publish agree on the id with no
  coordination and no randomness;
* ``span_id`` — this hop's own span (``<trace>:publish``,
  ``<trace>:peer-a:ingest``, ...);
* ``parent_id`` — the upstream hop's ``span_id``, None at the origin;
* ``published_at`` — the publisher's clock at publish time, carried so
  downstream hops can observe end-to-end publish→apply latency.

On the wire the context is a small JSON object (see :meth:`to_wire`)
riding in the optional ``"ctx"`` field of ``SNAPSHOT``/``DELTA`` frame
payloads and on :class:`~repro.net.Message`.  Decoding is deliberately
**lenient** (:meth:`from_wire` returns None on anything malformed):
context is observability metadata, and a peer must never refuse a
well-stamped snapshot because its tracing envelope is dented.

In recorded spans the context lives in ordinary span *attributes*
(``ctx.trace`` / ``ctx.span`` / ``ctx.parent``, via :meth:`annotate`),
so the JSONL trace schema is unchanged and
:func:`~repro.obs.stitch.stitch` can correlate spans across per-peer
trace files written by processes that never shared a tracer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

__all__ = ["TraceContext"]


@dataclass(frozen=True)
class TraceContext:
    """One hop's correlation context for a published snapshot.

    Attributes:
        trace_id: the publish's fleet-wide identity (``sender:epoch.seq``).
        span_id: this hop's span identity within the trace.
        parent_id: the upstream hop's ``span_id``, or None at the origin.
        published_at: the publisher's clock reading at publish time
            (wall clock for the daemon, virtual clock in the simulator),
            or None when unknown.
    """

    trace_id: str
    span_id: str
    parent_id: str | None = None
    published_at: float | None = None

    @classmethod
    def for_publish(
        cls,
        sender: str,
        stamp: tuple[int, int],
        at: float | None = None,
    ) -> "TraceContext":
        """The origin context for one publish: deterministic trace id.

        The id is pure stamp arithmetic — no randomness — so every
        process that sees this publish derives the identical trace id.
        ``stamp`` is any ``(epoch, seq)`` pair (duck-typed so this module
        stays import-cycle-free of :mod:`repro.sync`).
        """
        epoch, seq = stamp
        trace_id = f"{sender}:{int(epoch)}.{int(seq)}"
        return cls(trace_id=trace_id, span_id=f"{trace_id}:publish", published_at=at)

    def child(self, site: str) -> "TraceContext":
        """A downstream hop's context: same trace, parented on this span."""
        return TraceContext(
            trace_id=self.trace_id,
            span_id=f"{self.trace_id}:{site}",
            parent_id=self.span_id,
            published_at=self.published_at,
        )

    # ------------------------------------------------------------------
    # wire codec
    # ------------------------------------------------------------------

    def to_wire(self) -> dict[str, Any]:
        """The compact JSON object carried in a frame's ``"ctx"`` field."""
        encoded: dict[str, Any] = {"t": self.trace_id, "s": self.span_id}
        if self.parent_id is not None:
            encoded["p"] = self.parent_id
        if self.published_at is not None:
            encoded["at"] = self.published_at
        return encoded

    @classmethod
    def from_wire(cls, encoded: Any) -> "TraceContext | None":
        """Decode a wire context; None on anything malformed.

        Lenient by contract: a missing or dented context must never
        fail the frame it rides on — the snapshot is still perfectly
        good data, it just goes untraced.
        """
        if not isinstance(encoded, dict):
            return None
        trace_id = encoded.get("t")
        span_id = encoded.get("s")
        if not isinstance(trace_id, str) or not isinstance(span_id, str):
            return None
        parent = encoded.get("p")
        if parent is not None and not isinstance(parent, str):
            parent = None
        at = encoded.get("at")
        if not isinstance(at, (int, float)) or isinstance(at, bool):
            at = None
        return cls(
            trace_id=trace_id, span_id=span_id,
            parent_id=parent, published_at=at,
        )

    # ------------------------------------------------------------------
    # span integration
    # ------------------------------------------------------------------

    def annotate(self, span) -> None:
        """Stamp this context into a span's attributes.

        Uses plain attributes (``ctx.trace`` / ``ctx.span`` /
        ``ctx.parent``) so the JSONL trace schema stays at version 1;
        :func:`~repro.obs.stitch.stitch` reads them back to correlate
        spans across files.
        """
        span.set("ctx.trace", self.trace_id)
        span.set("ctx.span", self.span_id)
        if self.parent_id is not None:
            span.set("ctx.parent", self.parent_id)

    def __str__(self) -> str:
        return self.span_id
