"""Observability: hierarchical tracing, metrics, and trace exporters.

``repro.obs`` is the measurement substrate for the solver stack.  It is
zero-dependency and pay-nothing by default: every instrumented entry
point (``chase``, ``solve``, ``certain_answers``, ``SyncSession.sync``)
accepts ``tracer=None`` and substitutes :data:`NULL_TRACER`, whose spans
are shared no-op objects.

* :class:`Tracer` / :class:`Span` — hierarchical wall-time spans with
  attributes, counters, and point-in-time events
  (:mod:`repro.obs.tracer`);
* :class:`MetricsRegistry` with :class:`Counter` / :class:`Gauge` /
  :class:`Histogram` — structured instruments carried by result objects
  as an optional ``metrics`` payload (:mod:`repro.obs.metrics`);
* exporters — schema-versioned JSONL trace files (crash-tolerant like
  the sync journal), a human-readable span tree, and Chrome
  ``trace_event`` dumps (:mod:`repro.obs.exporters`).

PR 8 grew it into a *distributed* observability plane:

* :class:`TraceContext` — a compact wire-propagated correlation context
  (deterministic trace id per publish) carried on ``netd`` frames and
  simulator messages (:mod:`repro.obs.context`);
* :func:`stitch` — merge per-peer JSONL trace files into one
  causally-ordered :class:`StitchedTimeline` with a one-lane-per-peer
  Chrome export (:mod:`repro.obs.stitch`);
* :class:`FlightRecorder` / :func:`read_postmortem` — a bounded ring of
  recent events flushed to a torn-tail-tolerant post-mortem file on
  crash/abort/stop (:mod:`repro.obs.recorder`);
* :data:`METRIC_NAME_TABLE` / :data:`DEPRECATED_METRICS` — the unified
  ``net.*`` / ``netd.*`` / ``chaos.*`` metric vocabulary with rename
  shims (:mod:`repro.obs.names`).

CLI integration: ``--trace PATH`` / ``--chrome PATH`` / ``--metrics`` on
``solve`` / ``certain`` / ``sync`` / ``simulate`` / ``profile``,
``repro.cli profile`` for running a :mod:`repro.workloads` profile
workload under the tracer, and ``repro.cli obs`` (``stitch`` /
``postmortem`` / ``top``) for the distributed artifacts.
"""

from repro.obs.context import TraceContext
from repro.obs.exporters import (
    TRACE_SCHEMA_VERSION,
    aggregate_spans,
    chrome_trace,
    read_trace_jsonl,
    render_span_tree,
    trace_records,
    write_chrome_trace,
    write_trace_jsonl,
)
from repro.obs.metrics import (
    DEFAULT_DURATION_BUCKETS_MS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.names import (
    DEPRECATED_METRICS,
    METRIC_NAME_TABLE,
    canonical_metric_name,
    metric_documented,
    undocumented,
)
from repro.obs.recorder import (
    POSTMORTEM_SCHEMA_VERSION,
    FlightRecorder,
    Postmortem,
    read_postmortem,
)
from repro.obs.stitch import StitchedEvent, StitchedSpan, StitchedTimeline, stitch
from repro.obs.tracer import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "Tracer",
    "Span",
    "NullTracer",
    "NULL_TRACER",
    "TraceContext",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_DURATION_BUCKETS_MS",
    "METRIC_NAME_TABLE",
    "DEPRECATED_METRICS",
    "canonical_metric_name",
    "metric_documented",
    "undocumented",
    "TRACE_SCHEMA_VERSION",
    "trace_records",
    "write_trace_jsonl",
    "read_trace_jsonl",
    "render_span_tree",
    "chrome_trace",
    "write_chrome_trace",
    "aggregate_spans",
    "stitch",
    "StitchedTimeline",
    "StitchedSpan",
    "StitchedEvent",
    "FlightRecorder",
    "Postmortem",
    "read_postmortem",
    "POSTMORTEM_SCHEMA_VERSION",
]
