"""Observability: hierarchical tracing, metrics, and trace exporters.

``repro.obs`` is the measurement substrate for the solver stack.  It is
zero-dependency and pay-nothing by default: every instrumented entry
point (``chase``, ``solve``, ``certain_answers``, ``SyncSession.sync``)
accepts ``tracer=None`` and substitutes :data:`NULL_TRACER`, whose spans
are shared no-op objects.

* :class:`Tracer` / :class:`Span` — hierarchical wall-time spans with
  attributes, counters, and point-in-time events
  (:mod:`repro.obs.tracer`);
* :class:`MetricsRegistry` with :class:`Counter` / :class:`Gauge` /
  :class:`Histogram` — structured instruments carried by result objects
  as an optional ``metrics`` payload (:mod:`repro.obs.metrics`);
* exporters — schema-versioned JSONL trace files (crash-tolerant like
  the sync journal), a human-readable span tree, and Chrome
  ``trace_event`` dumps (:mod:`repro.obs.exporters`).

CLI integration: ``--trace PATH`` / ``--metrics`` on ``solve`` /
``certain`` / ``sync``, and ``repro.cli profile`` for running a
:mod:`repro.workloads` profile workload under the tracer.
"""

from repro.obs.exporters import (
    TRACE_SCHEMA_VERSION,
    aggregate_spans,
    chrome_trace,
    read_trace_jsonl,
    render_span_tree,
    trace_records,
    write_chrome_trace,
    write_trace_jsonl,
)
from repro.obs.metrics import (
    DEFAULT_DURATION_BUCKETS_MS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.tracer import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "Tracer",
    "Span",
    "NullTracer",
    "NULL_TRACER",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_DURATION_BUCKETS_MS",
    "TRACE_SCHEMA_VERSION",
    "trace_records",
    "write_trace_jsonl",
    "read_trace_jsonl",
    "render_span_tree",
    "chrome_trace",
    "write_chrome_trace",
    "aggregate_spans",
]
