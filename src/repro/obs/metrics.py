"""Counters, gauges, and fixed-bucket histograms.

A :class:`MetricsRegistry` is the structured sibling of the free-form
``stats`` dicts the solvers have always returned: named instruments with
explicit semantics, carried by :class:`~repro.solver.results.SolveResult`
/ :class:`~repro.solver.results.CertainAnswerResult` /
:class:`~repro.sync.SyncOutcome` as an optional ``metrics`` payload.

* :class:`Counter` — a monotone accumulator (``inc``);
* :class:`Gauge` — a last-value-wins measurement (``set``);
* :class:`Histogram` — fixed upper-bound buckets plus count/sum
  (``observe``), Prometheus-style cumulative-free (each bucket counts
  only its own interval; export sums if you need cumulative);
* string facts (which solver ran, the dispatch explanation) are kept as
  ``labels`` via :meth:`MetricsRegistry.annotate`.

Everything is plain-Python and allocation-light; a registry's
:meth:`~MetricsRegistry.snapshot` is a JSON-safe dict and
:meth:`~MetricsRegistry.summary` a human-readable rendering for the CLI.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Mapping

from repro.obs.names import DEPRECATED_METRICS

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_DURATION_BUCKETS_MS",
]

#: Default histogram buckets for durations in milliseconds.
DEFAULT_DURATION_BUCKETS_MS = (
    1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0,
)


class Counter:
    """A monotone accumulator."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: int | float = 0

    def inc(self, delta: int | float = 1) -> None:
        if delta < 0:
            raise ValueError(f"counter {self.name} cannot decrease (delta={delta})")
        self.value += delta

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A last-value-wins measurement; ``value`` is None until first set."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: int | float | None = None

    def set(self, value: int | float) -> None:
        self.value = value

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self.value})"


class Histogram:
    """A fixed-bucket histogram with count and sum.

    ``buckets`` are ascending upper bounds; observations above the last
    bound land in an implicit overflow bucket (rendered ``+Inf``).
    """

    __slots__ = ("name", "buckets", "bucket_counts", "count", "sum")

    def __init__(self, name: str, buckets: tuple[float, ...] = DEFAULT_DURATION_BUCKETS_MS):
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("histogram buckets must be non-empty and ascending")
        self.name = name
        self.buckets = tuple(float(b) for b in buckets)
        self.bucket_counts = [0] * (len(self.buckets) + 1)  # + overflow
        self.count = 0
        self.sum: float = 0.0

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.sum += value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def snapshot(self) -> dict[str, Any]:
        return {
            "buckets": list(self.buckets),
            "counts": list(self.bucket_counts),
            "count": self.count,
            "sum": self.sum,
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name}: n={self.count}, sum={self.sum:.3f})"


class MetricsRegistry:
    """A named collection of counters, gauges, histograms, and labels.

    Instruments are created on first access (``registry.counter("x")``)
    and shared on every later access, so instrumentation sites never need
    to coordinate registration.  Accessing a name as a different
    instrument kind raises :class:`TypeError`.
    """

    def __init__(self) -> None:
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}
        self.labels: dict[str, str] = {}

    def _get(self, name: str, kind: type, factory) -> Any:
        # Deprecated names alias their replacement: both address ONE
        # instrument, so dashboards keyed on either agree mid-migration.
        name = DEPRECATED_METRICS.get(name, name)
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = factory(name)
            self._instruments[name] = instrument
        elif not isinstance(instrument, kind):
            raise TypeError(
                f"metric {name!r} is a {type(instrument).__name__}, "
                f"not a {kind.__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge, Gauge)

    def histogram(
        self, name: str, buckets: tuple[float, ...] = DEFAULT_DURATION_BUCKETS_MS
    ) -> Histogram:
        # First registration wins the bucket layout; later callers share it.
        return self._get(name, Histogram, lambda name: Histogram(name, buckets))

    def annotate(self, key: str, value: Any) -> None:
        """Record a string fact (solver chosen, dispatch explanation, ...)."""
        self.labels[key] = str(value)

    def absorb(self, stats: Mapping[str, Any], prefix: str = "") -> None:
        """Fold a solver ``stats`` dict into the registry.

        Numeric values become counter increments; booleans become gauges
        (0/1); strings become labels.  Anything else is stringified into
        a label — ``stats`` dicts are shallow by convention.
        """
        for key, value in stats.items():
            name = f"{prefix}{key}"
            if isinstance(value, bool):
                self.gauge(name).set(int(value))
            elif isinstance(value, (int, float)):
                self.counter(name).inc(value)
            else:
                self.annotate(name, value)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """A JSON-safe dict of everything recorded so far."""
        counters = {}
        gauges = {}
        histograms = {}
        for name in sorted(self._instruments):
            instrument = self._instruments[name]
            if isinstance(instrument, Counter):
                counters[name] = instrument.value
            elif isinstance(instrument, Gauge):
                gauges[name] = instrument.value
            else:
                histograms[name] = instrument.snapshot()
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
            "labels": dict(sorted(self.labels.items())),
        }

    def summary(self) -> str:
        """Human-readable one-instrument-per-line rendering."""
        lines: list[str] = []
        for key, value in sorted(self.labels.items()):
            lines.append(f"{key} = {value}")
        for name in sorted(self._instruments):
            instrument = self._instruments[name]
            if isinstance(instrument, Counter):
                lines.append(f"{name} = {instrument.value}")
            elif isinstance(instrument, Gauge):
                lines.append(f"{name} = {instrument.value}")
            else:
                lines.append(
                    f"{name}: count={instrument.count} "
                    f"sum={instrument.sum:.2f} mean={instrument.mean:.2f}"
                )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry({len(self._instruments)} instruments, "
            f"{len(self.labels)} labels)"
        )
