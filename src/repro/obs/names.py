"""The unified metric name table for the network layers.

``repro.net`` (the simulator), ``repro.netd`` (the real daemon), and the
chaos proxy emit overlapping telemetry; this module is the single
authority on what a network metric is called and what it means:

* :data:`METRIC_NAME_TABLE` — every canonical ``net.*`` / ``netd.*`` /
  ``chaos.*`` instrument name with its kind and meaning.  Wildcard
  entries (``netd.rounds.*``) cover per-key families.  A test asserts
  that every metric the code emits appears here, so the table cannot rot;
* :data:`DEPRECATED_METRICS` — renamed instruments.
  :class:`~repro.obs.metrics.MetricsRegistry` resolves old names to
  their replacements on access, so ``registry.counter(old)`` and
  ``registry.counter(new)`` are the *same* instrument and dashboards
  keyed on either name agree during a migration window;
* :func:`metric_documented` / :func:`undocumented` — the lookup helpers
  the completeness test (and ``scripts/selfcheck.py``) use.

Solver-side metrics (``solve.*``, ``certain.*``, ``sync.*``) are named
by their result objects and documented in ``docs/api.md``; this table
covers the distributed namespaces, where the simulator and the daemon
must agree on vocabulary to be comparable, plus the ``chase.*``
incremental-chase counters shared by every sync stack.
"""

from __future__ import annotations

from typing import Iterable

__all__ = [
    "METRIC_NAME_TABLE",
    "DEPRECATED_METRICS",
    "canonical_metric_name",
    "metric_documented",
    "undocumented",
]

#: Canonical network-layer metric names: name → (kind, meaning).
#: A trailing ``.*`` makes an entry a family: it documents every name
#: sharing the prefix (``netd.rounds.applied``, ``netd.lag.peer-a``, ...).
METRIC_NAME_TABLE: dict[str, tuple[str, str]] = {
    # -- net.* : the deterministic simulator (transport + simulator) ----
    "net.sent": ("counter", "messages handed to the simulated transport"),
    "net.delivered": ("counter", "messages delivered to their recipient"),
    "net.dropped": ("counter", "messages lost to the seeded drop fault"),
    "net.partition_dropped": ("counter", "messages lost to an active partition"),
    "net.duplicated": ("counter", "messages delivered twice by the dup fault"),
    "net.reordered": ("counter", "messages delivered out of order"),
    "net.delayed": ("counter", "messages held back by the delay fault"),
    "net.facts_sent": ("counter", "facts on the wire (delta-aware payload size)"),
    "net.queue_evicted": ("counter", "pending messages evicted by the queue bound"),
    "net.partitions": ("counter", "partition events applied"),
    "net.heals": ("counter", "partition heals applied"),
    "net.delta_applied": ("counter", "delta payloads applied by a peer"),
    "net.delta_fallbacks": ("counter", "chain-broken deltas resent as snapshots"),
    "net.anti_entropy": ("counter", "anti-entropy repair publishes"),
    "net.chain_broken": ("counter", "delta-chain breaks observed at peers"),
    "net.forwarded": ("counter", "stamped snapshots relayed down a topology link"),
    "net.score.*": ("gauge", "per-link peer health score (sender->recipient)"),
    "net.publish_apply_ms": ("histogram", "end-to-end publish→apply latency, ms"),
    # -- netd.* : the real asyncio daemon + publisher client ------------
    "netd.connections": ("counter", "connections accepted by the daemon"),
    "netd.protocol_errors": ("counter", "connections dropped for protocol errors"),
    "netd.drained_rounds": ("counter", "queued rounds completed during drain"),
    "netd.rounds.*": ("counter", "ingest rounds by verdict (applied/stale/...)"),
    "netd.reconnects": ("counter", "publisher reconnect attempts that re-dialed"),
    "netd.queue_depth": ("gauge", "current pending-queue depth (client or peer)"),
    "netd.queue_peak": ("gauge", "high-water pending-queue depth"),
    "netd.queue_evicted": ("counter", "pending entries evicted by the queue bound"),
    "netd.sent_snapshots": ("counter", "full snapshots put on the wire"),
    "netd.sent_deltas": ("counter", "delta payloads put on the wire"),
    "netd.ack_timeouts": ("counter", "publishes whose ACK never arrived in time"),
    "netd.ack_unmatched": ("counter", "ACKs discarded by stamp mismatch"),
    "netd.delta_fallbacks": ("counter", "chain-broken deltas resent as snapshots"),
    "netd.chain_broken": ("counter", "delta-chain breaks observed by the daemon"),
    "netd.anti_entropy": ("counter", "anti-entropy repair publishes"),
    "netd.forwarded": ("counter", "applied rounds enqueued for relay forwarding"),
    "netd.score.*": ("gauge", "per-link peer health score (sender->recipient)"),
    "netd.lag.*": ("gauge", "per-peer watermark lag (publishes not yet applied)"),
    "netd.publish_apply_ms": ("histogram", "end-to-end publish→apply latency, ms"),
    # -- chase.* : the incremental (semi-naive) chase on the sync path --
    "chase.incremental": ("counter", "solve rounds served by the warm incremental pipeline"),
    "chase.retracted": ("counter", "derived facts withdrawn by provenance-guided retraction"),
    "chase.refired": ("counter", "chase steps re-fired by semi-naive delta matching"),
    "chase.fallback": ("counter", "incremental rounds that fell back to a from-scratch chase"),
    # -- chaos.* : the socket-level fault-injection proxy ---------------
    "chaos.connections": ("counter", "connections the proxy accepted and linked"),
    "chaos.refused": ("counter", "connections refused (severed/partitioned)"),
    "chaos.forwarded": ("counter", "data frames forwarded unharmed"),
    "chaos.dropped": ("counter", "data frames swallowed by the drop fault"),
    "chaos.delayed": ("counter", "data frames held back by the delay fault"),
    "chaos.reordered": ("counter", "data frames forwarded out of order"),
    "chaos.duplicated": ("counter", "data frames forwarded twice"),
    "chaos.severed": ("counter", "frames lost to a mid-stream connection kill"),
}

#: Renamed instruments: old name → canonical name.  The registry resolves
#: these on access, so both names address one instrument.
DEPRECATED_METRICS: dict[str, str] = {
    # PR 8: pluralized to match netd.delta_fallbacks (one vocabulary for
    # the simulator and the daemon).
    "net.delta_fallback": "net.delta_fallbacks",
}


def canonical_metric_name(name: str) -> str:
    """Resolve a possibly-deprecated metric name to its canonical form."""
    return DEPRECATED_METRICS.get(name, name)


def metric_documented(name: str) -> bool:
    """True when ``name`` (canonicalized) appears in the table.

    Names outside the ``net.`` / ``netd.`` / ``chaos.`` / ``chase.``
    namespaces are not this table's business and always pass.
    """
    name = canonical_metric_name(name)
    if not name.startswith(("net.", "netd.", "chaos.", "chase.")):
        return True
    if name in METRIC_NAME_TABLE:
        return True
    return any(
        name.startswith(entry[:-1])
        for entry in METRIC_NAME_TABLE
        if entry.endswith(".*")
    )


def undocumented(names: Iterable[str]) -> list[str]:
    """The subset of ``names`` missing from the table, sorted."""
    return sorted({name for name in names if not metric_documented(name)})
