"""Crash flight recorder: a bounded ring of recent events, flushed on death.

Traces answer "what happened during a run that *finished*"; the flight
recorder answers "what were the last things a daemon did before it
*died*".  A :class:`FlightRecorder` keeps a bounded in-memory ring of
recent events — cheap dict appends, always on — and :meth:`~
FlightRecorder.flush` writes the ring to a post-mortem file when the
process is about to stop mattering: a simulated kill-9
(``SyncDaemon.crash_peer`` / ``abort``), a graceful stop, a SIGTERM from
the ``serve`` CLI.

The post-mortem file is JSONL with the same crash discipline as every
other on-disk artifact here: a schema-versioned header first, one event
per line, fsynced, and a reader (:func:`read_postmortem`) that drops a
torn final line — a crash *during* the flush still leaves a readable
prefix.  The file lands next to the peer's sync journal, so the
post-mortem workflow is: read the journal for the durable watermark,
read the post-mortem for the last ``N`` events that led up to it.
"""

from __future__ import annotations

import json
import os
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from repro.exceptions import TraceError

__all__ = [
    "POSTMORTEM_SCHEMA_VERSION",
    "FlightRecorder",
    "Postmortem",
    "read_postmortem",
]

#: Version stamped into every post-mortem file header.
POSTMORTEM_SCHEMA_VERSION = 1


class FlightRecorder:
    """A bounded in-memory ring of recent events.

    Recording is always-on and allocation-light (one small dict per
    event); the ring holds the most recent ``capacity`` events and
    silently evicts the oldest — :attr:`dropped` counts evictions so a
    post-mortem says how much history it is missing.

    Args:
        capacity: ring size (events retained).
        clock: timestamp source; wall time by default so post-mortems
            are correlatable across machines, injectable for tests and
            for the simulator's virtual clock.
    """

    def __init__(
        self, capacity: int = 256, clock: Callable[[], float] = time.time
    ) -> None:
        if capacity < 1:
            raise ValueError(f"flight recorder capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.clock = clock
        self.recorded = 0
        self._ring: deque[dict[str, Any]] = deque(maxlen=capacity)

    def record(self, name: str, **attributes: Any) -> None:
        """Append one event to the ring (evicting the oldest when full)."""
        self.recorded += 1
        self._ring.append(
            {"name": name, "at": self.clock(), "attributes": attributes}
        )

    @property
    def dropped(self) -> int:
        """Events evicted from the ring so far."""
        return self.recorded - len(self._ring)

    def events(self) -> list[dict[str, Any]]:
        """The retained events, oldest first."""
        return list(self._ring)

    def __len__(self) -> int:
        return len(self._ring)

    def flush(self, path: str | Path, reason: str) -> Path:
        """Write the ring to a post-mortem file, fsynced; returns the path.

        Overwrites any previous flush at ``path`` — the latest ring is
        the one that describes the death.  The ring itself is left
        intact, so a flush on crash followed by a flush on final stop
        both see the full history.
        """
        from repro.obs.exporters import _jsonable

        path = Path(path)
        header = {
            "type": "header",
            "version": POSTMORTEM_SCHEMA_VERSION,
            "format": "repro-postmortem",
            "reason": reason,
            "recorded": self.recorded,
            "dropped": self.dropped,
            "flushed_at": self.clock(),
        }
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(header, sort_keys=True) + "\n")
            for event in self._ring:
                record = {
                    "type": "event",
                    "name": event["name"],
                    "at": event["at"],
                    "attributes": _jsonable(event["attributes"]),
                }
                handle.write(json.dumps(record, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        return path


@dataclass
class Postmortem:
    """A recovered post-mortem record.

    Attributes:
        path: the file the record was read from.
        reason: why the ring was flushed (``"crash"``, ``"abort"``,
            ``"stop"``, ...).
        recorded: total events the recorder ever saw.
        dropped: events evicted before the flush (history not retained).
        flushed_at: the recorder clock reading at flush time.
        events: the retained events, oldest first.
    """

    path: Path
    reason: str
    recorded: int
    dropped: int
    flushed_at: float
    events: list[dict[str, Any]] = field(default_factory=list)

    def last(self, n: int) -> list[dict[str, Any]]:
        """The final ``n`` events (fewer when the ring held fewer)."""
        return self.events[-n:] if n > 0 else []


def read_postmortem(path: str | Path) -> Postmortem:
    """Read a post-mortem file written by :meth:`FlightRecorder.flush`.

    Tolerates a torn final line (the flush itself died); raises
    :class:`~repro.exceptions.TraceError` on a missing/invalid header or
    interior damage.
    """
    # Function-level import: repro.runtime reaches repro.core, whose chase
    # module imports repro.obs.tracer — a module-level import here would
    # close that cycle during package init.
    from repro.runtime.journal import read_jsonl_tolerant

    path = Path(path)
    records = read_jsonl_tolerant(path, label="post-mortem file", error=TraceError)
    if not records or not isinstance(records[0], dict) or records[0].get("type") != "header":
        raise TraceError(f"post-mortem file {path} has no header record")
    header = records[0]
    if header.get("format") != "repro-postmortem":
        raise TraceError(f"post-mortem file {path} is not a repro post-mortem")
    if header.get("version") != POSTMORTEM_SCHEMA_VERSION:
        raise TraceError(
            f"post-mortem file {path} has unsupported version "
            f"{header.get('version')!r}"
        )
    events = [
        {
            "name": str(record.get("name", "?")),
            "at": float(record.get("at", 0.0)),
            "attributes": dict(record.get("attributes") or {}),
        }
        for record in records[1:]
        if isinstance(record, dict) and record.get("type") == "event"
    ]
    return Postmortem(
        path=path,
        reason=str(header.get("reason", "?")),
        recorded=int(header.get("recorded", len(events))),
        dropped=int(header.get("dropped", 0)),
        flushed_at=float(header.get("flushed_at", 0.0)),
        events=events,
    )
