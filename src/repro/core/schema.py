"""Relational schemas.

A :class:`Schema` is a finite collection of relation symbols, each with a
fixed arity (Section 2, Preliminaries).  Peer data exchange uses two
disjoint schemas: the *source* schema ``S`` and the *target* schema ``T``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

from repro.core.atoms import Atom, Fact
from repro.exceptions import SchemaError

__all__ = ["RelationSymbol", "Schema"]


@dataclass(frozen=True, slots=True, order=True)
class RelationSymbol:
    """A relation symbol with a fixed arity and optional attribute names.

    Attribute names default to ``#0, #1, ...`` and exist purely to make the
    *positions* of Definition 5 (the pairs ``(R, A)`` of the dependency
    graph) readable; they carry no semantics.
    """

    name: str
    arity: int
    attributes: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.arity < 0:
            raise SchemaError(f"relation {self.name!r} has negative arity {self.arity}")
        if self.attributes and len(self.attributes) != self.arity:
            raise SchemaError(
                f"relation {self.name!r} declares {len(self.attributes)} attribute "
                f"names but has arity {self.arity}"
            )
        if not self.attributes:
            object.__setattr__(self, "attributes", tuple(f"#{i}" for i in range(self.arity)))

    def positions(self) -> Iterator[tuple[str, int]]:
        """Yield the positions ``(name, index)`` of this relation."""
        for index in range(self.arity):
            yield (self.name, index)

    def __str__(self) -> str:
        return f"{self.name}/{self.arity}"


class Schema:
    """A finite collection of relation symbols, indexed by name."""

    def __init__(self, relations: Iterable[RelationSymbol] = ()):
        self._relations: dict[str, RelationSymbol] = {}
        for relation in relations:
            self.add(relation)

    @classmethod
    def from_arities(cls, arities: Mapping[str, int]) -> "Schema":
        """Build a schema from a ``{name: arity}`` mapping.

        This is the most convenient constructor for tests and examples::

            Schema.from_arities({"E": 2, "H": 2})
        """
        return cls(RelationSymbol(name, arity) for name, arity in arities.items())

    def add(self, relation: RelationSymbol) -> None:
        """Add a relation symbol; re-adding an identical symbol is a no-op."""
        existing = self._relations.get(relation.name)
        if existing is not None and existing != relation:
            raise SchemaError(
                f"relation {relation.name!r} already declared with arity "
                f"{existing.arity}, cannot redeclare with arity {relation.arity}"
            )
        self._relations[relation.name] = relation

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __getitem__(self, name: str) -> RelationSymbol:
        try:
            return self._relations[name]
        except KeyError:
            raise SchemaError(f"unknown relation symbol {name!r}") from None

    def __iter__(self) -> Iterator[RelationSymbol]:
        return iter(self._relations.values())

    def __len__(self) -> int:
        return len(self._relations)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._relations == other._relations

    def names(self) -> list[str]:
        """Return the relation names in declaration order."""
        return list(self._relations)

    def arity_of(self, name: str) -> int:
        """Return the arity of relation ``name``."""
        return self[name].arity

    def positions(self) -> list[tuple[str, int]]:
        """Return every position ``(relation, index)`` of the schema.

        These are the nodes of the dependency graph of Definition 5.
        """
        return [pos for relation in self for pos in relation.positions()]

    def disjoint_from(self, other: "Schema") -> bool:
        """Return True if this schema shares no relation names with ``other``."""
        return not set(self._relations) & set(other._relations)

    def union(self, other: "Schema") -> "Schema":
        """Return the union schema ``(S, T)`` of two disjoint schemas.

        Raises:
            SchemaError: if the schemas share a relation name with
                conflicting arity.
        """
        merged = Schema(self)
        for relation in other:
            merged.add(relation)
        return merged

    def validate_atom(self, atom: Atom) -> None:
        """Check that ``atom`` names a known relation with the right arity."""
        declared = self[atom.relation]
        if declared.arity != atom.arity:
            raise SchemaError(
                f"atom {atom} has arity {atom.arity}, but {declared} expects "
                f"{declared.arity}"
            )

    def validate_fact(self, fact: Fact) -> None:
        """Check that ``fact`` names a known relation with the right arity."""
        self.validate_atom(fact.to_atom())

    def __str__(self) -> str:
        return "{" + ", ".join(str(relation) for relation in self) + "}"

    def __repr__(self) -> str:
        return f"Schema({list(self._relations.values())!r})"
