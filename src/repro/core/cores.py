"""Cores of instances with labeled nulls.

The *core* of an instance ``K`` is a smallest sub-instance ``C ⊆ K`` such
that ``K`` maps homomorphically into ``C`` (constants fixed).  Cores are
the canonical "smallest" representatives used throughout the data exchange
literature (Fagin, Kolaitis, Popa: *Data exchange: getting to the core*,
reference [7] of the paper); the block machinery of Definition 10 is
itself adapted from that work.

In peer data exchange, cores give the smallest witness solutions: if
``J'`` is a solution with nulls treated as values, the core of ``J'``
relative to the fixed facts of ``J`` is a solution too (target-to-source
tgds are anti-monotone in the target, and ``Σ_st`` satisfaction transfers
along the retraction), and no solution obtained by shrinking ``J'`` can be
smaller.

The implementation searches for *proper retractions* block by block:
thanks to Proposition 1's block independence, an instance is a core iff
every block is, and a block shrinks independently of the others.
"""

from __future__ import annotations

from repro.core.blocks import decompose_into_blocks
from repro.core.homomorphism import iter_instance_homomorphisms
from repro.core.instance import Instance
from repro.core.terms import InstanceTerm, Null

__all__ = ["core", "is_core"]


def _retract_block(block_facts: Instance, frozen: Instance) -> Instance | None:
    """Try to find a proper retraction of one block.

    Searches for a homomorphism from ``block_facts`` into
    ``block_facts ∪ frozen`` whose image (within the block) is strictly
    smaller, i.e. that identifies some null with another value.  Returns
    the retracted block (image facts minus those absorbed into ``frozen``)
    or None if the block is already a core relative to ``frozen``.

    ``frozen`` holds facts that must stay (the other blocks and any
    protected facts); mapping block facts onto frozen facts is allowed and
    shrinks the block.
    """
    target = block_facts.union(frozen)
    block_size = len(block_facts)
    for mapping in iter_instance_homomorphisms(block_facts, target):
        if all(null == image for null, image in mapping.items()):
            continue  # the identity: not a proper retraction
        image = Instance(schema=block_facts.schema)
        for fact in block_facts:
            image.add(fact.substitute(mapping))
        survivors = Instance(schema=block_facts.schema)
        for fact in image:
            if fact not in frozen:
                survivors.add(fact)
        if len(survivors) < block_size:
            return survivors
    return None


def core(instance: Instance, protect: Instance | None = None) -> Instance:
    """Compute the core of ``instance`` (constants fixed pointwise).

    Args:
        instance: the instance to minimize; may contain nulls.
        protect: facts that must survive verbatim (e.g. the original target
            instance ``J``, which every solution has to contain).  Ground
            facts are always their own image, so protecting ground facts
            never changes the result; protecting null-carrying facts does.

    Returns:
        a sub-instance ``C`` of ``instance`` such that ``instance`` maps
        homomorphically into ``C`` and no proper sub-instance of ``C`` has
        that property.  Ground instances are returned unchanged.

    The search is exponential in the number of nulls per block — which is
    exactly the quantity Theorem 6 bounds by a constant for ``C_tract``
    settings, so cores of canonical instances are cheap in the tractable
    class.
    """
    protect = protect if protect is not None else Instance()
    current = instance.copy()
    improved = True
    while improved:
        improved = False
        for block in decompose_into_blocks(current):
            if block.is_ground():
                continue  # ground facts are their own homomorphic image
            shrinkable = Instance(schema=current.schema)
            for fact in block.facts:
                if fact not in protect:
                    shrinkable.add(fact)
            if not shrinkable:
                continue
            frozen = Instance(schema=current.schema)
            for fact in current:
                if fact not in shrinkable:
                    frozen.add(fact)
            retracted = _retract_block(shrinkable, frozen)
            if retracted is not None:
                current = frozen.union(retracted)
                improved = True
                break  # block structure changed: recompute from scratch
    return current


def is_core(instance: Instance) -> bool:
    """Return True if ``instance`` equals its own core."""
    return core(instance) == instance
