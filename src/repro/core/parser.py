"""Datalog-style text syntax for dependencies, instances, and queries.

Grammar overview (whitespace-insensitive):

* **tgd**: ``E(x, z), E(z, y) -> H(x, y)`` — variables that appear only on
  the right-hand side are existentially quantified, exactly as the paper
  writes dependencies with implicit universal quantifiers.
* **egd**: ``P(x, z, y, w), P(x, z2, y2, w2) -> z = z2``.
* **disjunctive tgd**: ``E(x, y) -> (R(x), B(y)) | (B(x), R(y))``.
* **instance facts**: ``E(a, b); E(b, c)`` or newline-separated; bare
  identifiers denote constants, identifiers starting with ``_`` denote
  labeled nulls (same name, same null within one parser session).
* **query**: ``q(x) :- H(x, y), H(y, z)`` or a bare conjunction (Boolean
  query).

Term conventions inside *dependencies and queries*: a bare identifier is a
variable; ``'a'`` / ``"a"`` is a string constant; digits form an integer
constant.  Inside *instances*, bare identifiers are constants (instances
never contain variables).
"""

from __future__ import annotations

import re
from typing import Iterator

from repro.core.atoms import Atom, Fact
from repro.core.dependencies import EGD, TGD, Dependency, DisjunctiveTGD, Provenance
from repro.core.instance import Instance
from repro.core.schema import Schema
from repro.core.terms import Constant, InstanceTerm, Null, Term, Variable
from repro.exceptions import ParseError

__all__ = [
    "parse_dependency",
    "parse_dependencies",
    "parse_instance",
    "parse_query",
    "NullInterner",
]

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<arrow>->|:-)
  | (?P<pipe>\|)
  | (?P<lpar>\()
  | (?P<rpar>\))
  | (?P<comma>,)
  | (?P<semicolon>;)
  | (?P<eq>=)
  | (?P<string>'[^']*'|"[^"]*")
  | (?P<number>-?\d+)
  | (?P<name>[A-Za-z_][A-Za-z0-9_']*)
    """,
    re.VERBOSE,
)


class _Token:
    __slots__ = ("kind", "text", "position")

    def __init__(self, kind: str, text: str, position: int):
        self.kind = kind
        self.text = text
        self.position = position

    def __repr__(self) -> str:
        return f"_Token({self.kind}, {self.text!r})"


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise ParseError("unexpected character", text, position)
        kind = match.lastgroup or ""
        if kind != "ws":
            tokens.append(_Token(kind, match.group(), position))
        position = match.end()
    return tokens


class NullInterner:
    """Maps textual null names (``_x``) to stable :class:`Null` objects.

    One interner should be shared across the instance strings of a single
    scenario so that ``_x`` denotes the same null everywhere.
    """

    def __init__(self, start: int = 0):
        self._by_name: dict[str, Null] = {}
        self._next = start

    def get(self, name: str) -> Null:
        """Return the null registered for ``name``, creating it if needed."""
        null = self._by_name.get(name)
        if null is None:
            null = Null(self._next, hint=name.lstrip("_"))
            self._next += 1
            self._by_name[name] = null
        return null


class _Parser:
    """Recursive-descent parser over the token list."""

    def __init__(self, text: str):
        self.text = text
        self.tokens = _tokenize(text)
        self.index = 0

    # -- token plumbing ------------------------------------------------------

    def peek(self) -> _Token | None:
        if self.index < len(self.tokens):
            return self.tokens[self.index]
        return None

    def next(self) -> _Token:
        token = self.peek()
        if token is None:
            raise ParseError("unexpected end of input", self.text, len(self.text))
        self.index += 1
        return token

    def expect(self, kind: str) -> _Token:
        token = self.next()
        if token.kind != kind:
            raise ParseError(
                f"expected {kind}, found {token.text!r}", self.text, token.position
            )
        return token

    def at_end(self) -> bool:
        return self.index >= len(self.tokens)

    # -- terms and atoms -----------------------------------------------------

    def parse_term(self, variables_allowed: bool, interner: NullInterner | None) -> Term:
        token = self.next()
        if token.kind == "string":
            return Constant(token.text[1:-1])
        if token.kind == "number":
            return Constant(int(token.text))
        if token.kind == "name":
            if token.text.startswith("_"):
                if interner is None:
                    raise ParseError(
                        "null values are only allowed inside instances",
                        self.text,
                        token.position,
                    )
                return interner.get(token.text)
            if variables_allowed:
                return Variable(token.text)
            return Constant(token.text)
        raise ParseError(f"expected a term, found {token.text!r}", self.text, token.position)

    def parse_atom(self, variables_allowed: bool, interner: NullInterner | None = None) -> Atom:
        name = self.expect("name")
        self.expect("lpar")
        args: list[Term] = []
        closing = self.peek()
        if closing is not None and closing.kind == "rpar":
            self.next()
            return Atom(name.text, args)
        while True:
            args.append(self.parse_term(variables_allowed, interner))
            token = self.next()
            if token.kind == "rpar":
                break
            if token.kind != "comma":
                raise ParseError(
                    f"expected ',' or ')', found {token.text!r}", self.text, token.position
                )
        return Atom(name.text, args)

    def parse_conjunction(self, variables_allowed: bool = True) -> list[Atom]:
        atoms = [self.parse_atom(variables_allowed)]
        while True:
            token = self.peek()
            if token is None or token.kind != "comma":
                break
            self.next()
            atoms.append(self.parse_atom(variables_allowed))
        return atoms

    # -- dependencies ----------------------------------------------------------

    def parse_dependency(
        self, label: str = "", provenance: Provenance | None = None
    ) -> Dependency:
        body = self.parse_conjunction()
        arrow = self.expect("arrow")
        token = self.peek()
        if token is None:
            raise ParseError(
                "dependency has no right-hand side",
                self.text,
                arrow.position + len(arrow.text),
            )
        if token.kind == "lpar":
            return self._parse_disjunctive_head(body, label, provenance)
        # Distinguish egd (var = var) from tgd head by looking ahead.
        if token.kind == "name" and self._lookahead_is_equality():
            left = self.parse_term(variables_allowed=True, interner=None)
            self.expect("eq")
            right = self.parse_term(variables_allowed=True, interner=None)
            self._expect_done()
            if not isinstance(left, Variable) or not isinstance(right, Variable):
                raise ParseError("an egd must equate two variables", self.text, token.position)
            return EGD(body, left, right, label=label, provenance=provenance)
        head = self.parse_conjunction()
        self._expect_done()
        return TGD(body, head, label=label, provenance=provenance)

    def _lookahead_is_equality(self) -> bool:
        after = self.index + 1
        return after < len(self.tokens) and self.tokens[after].kind == "eq"

    def _parse_disjunctive_head(
        self, body: list[Atom], label: str, provenance: Provenance | None = None
    ) -> DisjunctiveTGD:
        disjuncts: list[list[Atom]] = []
        while True:
            self.expect("lpar")
            disjuncts.append(self.parse_conjunction())
            self.expect("rpar")
            token = self.peek()
            if token is None or token.kind != "pipe":
                break
            self.next()
        self._expect_done()
        return DisjunctiveTGD(body, disjuncts, label=label, provenance=provenance)

    def _expect_done(self) -> None:
        token = self.peek()
        if token is not None:
            raise ParseError(
                f"unexpected trailing input {token.text!r}", self.text, token.position
            )

    # -- instances ---------------------------------------------------------------

    def parse_facts(self, interner: NullInterner) -> Iterator[Fact]:
        while not self.at_end():
            atom = self.parse_atom(variables_allowed=False, interner=interner)
            yield atom.to_fact()
            token = self.peek()
            if token is not None and token.kind == "semicolon":
                self.next()


def parse_dependency(
    text: str, label: str = "", provenance: Provenance | None = None
) -> Dependency:
    """Parse a single dependency (tgd, egd, or disjunctive tgd).

    The returned dependency carries a :class:`Provenance` (the given one,
    or a fresh single-line one over ``text``) so diagnostics can point at
    its definition site.

    >>> str(parse_dependency("E(x, z), E(z, y) -> H(x, y)"))
    'E(x, z), E(z, y) -> H(x, y)'
    """
    if provenance is None:
        provenance = Provenance(text=text.strip())
    return _Parser(text).parse_dependency(label=label, provenance=provenance)


def parse_dependencies(text: str, source: str = "") -> list[Dependency]:
    """Parse a newline/semicolon-separated block of dependencies.

    Blank lines and ``#``-comments are skipped.  A useful way to write a
    whole Σ in one string, mirroring how the paper lists its constraints.
    Every parsed dependency carries a :class:`Provenance` with its 1-based
    line and column within ``text`` (``source`` names the block, e.g.
    ``"sigma_st"``), so lint diagnostics and parse errors agree on spans.
    """
    dependencies: list[Dependency] = []
    for lineno, raw_line in enumerate(text.splitlines(), 1):
        line = raw_line.split("#", 1)[0]
        offset = 0
        for segment in line.split(";"):
            stripped = segment.strip()
            if stripped:
                column = offset + len(segment) - len(segment.lstrip()) + 1
                provenance = Provenance(
                    text=stripped, line=lineno, column=column, source=source
                )
                dependencies.append(parse_dependency(stripped, provenance=provenance))
            offset += len(segment) + 1
    return dependencies


def parse_instance(
    text: str,
    schema: Schema | None = None,
    interner: NullInterner | None = None,
) -> Instance:
    """Parse an instance from a fact list.

    Facts are separated by semicolons or newlines; ``#`` starts a comment.
    Bare identifiers are constants; identifiers starting with ``_`` are
    labeled nulls.

    >>> len(parse_instance("E(a, b); E(b, c)"))
    2
    """
    interner = interner if interner is not None else NullInterner()
    instance = Instance(schema=schema)
    for raw_line in text.splitlines():
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        parser = _Parser(line)
        for fact in parser.parse_facts(interner):
            instance.add(fact)
    return instance


def parse_query(text: str):
    """Parse a conjunctive query.

    Two forms are accepted:

    * rule form ``q(x) :- H(x, y)`` — the head arguments are the free
      (answer) variables;
    * bare conjunction ``H(x, y), H(y, z)`` — a Boolean query (no free
      variables).

    Returns a :class:`repro.core.query.ConjunctiveQuery`.
    """
    from repro.core.query import ConjunctiveQuery

    parser = _Parser(text)
    # Try rule form: name(args) :- body
    snapshot = parser.index
    start = parser.peek()
    head_position = start.position if start is not None else 0
    try:
        head = parser.parse_atom(variables_allowed=True)
        token = parser.peek()
        if token is not None and token.kind == "arrow" and token.text == ":-":
            parser.next()
            body = parser.parse_conjunction()
            parser._expect_done()
            free: list[Variable] = []
            for arg in head.args:
                if not isinstance(arg, Variable):
                    raise ParseError(
                        "query head arguments must be variables", text, head_position
                    )
                free.append(arg)
            return ConjunctiveQuery(body, free, name=head.relation)
    except ParseError:
        raise
    parser.index = snapshot
    body = parser.parse_conjunction()
    parser._expect_done()
    return ConjunctiveQuery(body, [], name="q")
