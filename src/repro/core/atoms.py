"""Atoms and facts.

An :class:`Atom` is a relational atom ``R(t1, ..., tn)`` whose arguments are
arbitrary terms (variables, constants, or nulls); atoms appear in
dependencies and queries.  A :class:`Fact` is an atom whose arguments are
instance terms only (constants or nulls); facts populate instances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping, Sequence

from repro.core.terms import (
    Constant,
    InstanceTerm,
    Null,
    Term,
    Variable,
    is_null,
    is_variable,
)

__all__ = ["Atom", "Fact", "apply_substitution"]


@dataclass(frozen=True, slots=True)
class Atom:
    """A relational atom ``relation(args...)`` over arbitrary terms."""

    relation: str
    args: tuple[Term, ...]

    def __init__(self, relation: str, args: Sequence[Term]):
        object.__setattr__(self, "relation", relation)
        object.__setattr__(self, "args", tuple(args))

    @property
    def arity(self) -> int:
        """Number of argument positions."""
        return len(self.args)

    def variables(self) -> set[Variable]:
        """Return the set of variables occurring in this atom."""
        return {arg for arg in self.args if is_variable(arg)}

    def nulls(self) -> set[Null]:
        """Return the set of nulls occurring in this atom."""
        return {arg for arg in self.args if is_null(arg)}

    def constants(self) -> set[Constant]:
        """Return the set of constants occurring in this atom."""
        return {arg for arg in self.args if isinstance(arg, Constant)}

    def positions_of(self, term: Term) -> list[int]:
        """Return the 0-based positions at which ``term`` occurs."""
        return [i for i, arg in enumerate(self.args) if arg == term]

    def substitute(self, mapping: Mapping[Term, Term]) -> "Atom":
        """Return a copy with every term replaced by its image in ``mapping``.

        Terms absent from the mapping are left unchanged.
        """
        return Atom(self.relation, tuple(mapping.get(arg, arg) for arg in self.args))

    def is_ground(self) -> bool:
        """Return True if the atom contains no variables."""
        return not any(is_variable(arg) for arg in self.args)

    def to_fact(self) -> "Fact":
        """Convert a ground atom to a fact.

        Raises:
            ValueError: if the atom still contains variables.
        """
        if not self.is_ground():
            raise ValueError(f"atom {self} contains variables and cannot become a fact")
        return Fact(self.relation, self.args)  # type: ignore[arg-type]

    def __str__(self) -> str:
        rendered = ", ".join(str(arg) for arg in self.args)
        return f"{self.relation}({rendered})"

    def __repr__(self) -> str:
        return f"Atom({self.relation!r}, {self.args!r})"


@dataclass(frozen=True, slots=True)
class Fact:
    """A fact ``relation(values...)`` whose arguments are constants or nulls."""

    relation: str
    args: tuple[InstanceTerm, ...]

    def __init__(self, relation: str, args: Sequence[InstanceTerm]):
        object.__setattr__(self, "relation", relation)
        object.__setattr__(self, "args", tuple(args))

    @property
    def arity(self) -> int:
        """Number of argument positions."""
        return len(self.args)

    def nulls(self) -> set[Null]:
        """Return the set of nulls occurring in this fact."""
        return {arg for arg in self.args if is_null(arg)}

    def constants(self) -> set[Constant]:
        """Return the set of constants occurring in this fact."""
        return {arg for arg in self.args if isinstance(arg, Constant)}

    def is_ground(self) -> bool:
        """Return True if the fact contains no nulls."""
        return not any(is_null(arg) for arg in self.args)

    def substitute(self, mapping: Mapping[InstanceTerm, InstanceTerm]) -> "Fact":
        """Return a copy with every value replaced by its image in ``mapping``."""
        return Fact(self.relation, tuple(mapping.get(arg, arg) for arg in self.args))

    def to_atom(self) -> Atom:
        """View this fact as an atom (facts are a special case of atoms)."""
        return Atom(self.relation, self.args)

    def __str__(self) -> str:
        rendered = ", ".join(str(arg) for arg in self.args)
        return f"{self.relation}({rendered})"

    def __repr__(self) -> str:
        return f"Fact({self.relation!r}, {self.args!r})"


def apply_substitution(atoms: Sequence[Atom], mapping: Mapping[Term, Term]) -> Iterator[Atom]:
    """Apply ``mapping`` to every atom in ``atoms``, lazily."""
    return (atom.substitute(mapping) for atom in atoms)
