"""Homomorphism search.

Two flavors are needed by the paper's algorithms:

* **conjunction-to-instance** matching: find assignments of the variables
  of a conjunction of atoms ``φ(x)`` so that every atom maps to a fact of
  an instance.  This powers conjunctive-query evaluation and chase-step
  applicability tests.
* **instance-to-instance** homomorphisms: constant-preserving maps of the
  nulls of one instance so that every fact maps to a fact of another
  instance.  This is the test at the heart of the ``ExistsSolution``
  algorithm of Figure 3 ("is there a homomorphism from the block to I?").

Both are implemented by one backtracking matcher that orders atoms by how
constrained they are (bound-variable count, then relation size), which keeps
the search shallow on the block-decomposed inputs produced by the solver.
"""

from __future__ import annotations

from typing import Iterator, Mapping, Sequence

from repro.core.atoms import Atom
from repro.core.instance import Instance
from repro.core.terms import Constant, InstanceTerm, Null, Term, Variable, is_null, is_variable

__all__ = [
    "iter_homomorphisms",
    "find_homomorphism",
    "has_homomorphism",
    "iter_instance_homomorphisms",
    "find_instance_homomorphism",
    "has_instance_homomorphism",
]

Assignment = dict[Variable, InstanceTerm]


def _order_atoms(atoms: Sequence[Atom], instance: Instance, bound: set[Variable]) -> list[Atom]:
    """Greedy join ordering: repeatedly pick the most constrained atom."""
    remaining = list(atoms)
    ordered: list[Atom] = []
    bound = set(bound)
    while remaining:
        def cost(atom: Atom) -> tuple[int, int]:
            free = sum(1 for v in atom.variables() if v not in bound)
            return (free, instance.count(atom.relation))

        best = min(remaining, key=cost)
        remaining.remove(best)
        ordered.append(best)
        bound |= best.variables()
    return ordered


def iter_homomorphisms(
    atoms: Sequence[Atom],
    instance: Instance,
    partial: Mapping[Variable, InstanceTerm] | None = None,
) -> Iterator[Assignment]:
    """Yield every assignment mapping all ``atoms`` into ``instance``.

    Args:
        atoms: a conjunction of atoms (variables, constants, nulls allowed;
            nulls must match instance values exactly).
        instance: the instance to match into.  It must not be mutated while
            the iterator is being consumed.
        partial: optional pre-bound variables that every yielded assignment
            must extend.

    Yields:
        dicts from :class:`Variable` to instance values; each yielded dict
        includes the ``partial`` bindings.
    """
    assignment: Assignment = dict(partial) if partial else {}
    ordered = _order_atoms(atoms, instance, set(assignment))
    count = len(ordered)

    def candidates(atom: Atom):
        """Rows worth trying for ``atom`` under the current assignment.

        When some argument position is already determined (a constant, a
        null, or a bound variable), the instance's positional index yields
        only the matching rows; the smallest such bucket is used.  With no
        determined position, the whole relation is scanned.
        """
        best = None
        for position, term in enumerate(atom.args):
            if is_variable(term):
                value = assignment.get(term)
                if value is None:
                    continue
            else:
                value = term
            bucket = instance.candidate_rows(atom.relation, position, value)
            if best is None or len(bucket) < len(best):
                best = bucket
                if not best:
                    break
        if best is None:
            return instance.rows(atom.relation)
        return best

    # Iterative backtracking (an explicit stack of row iterators) so that
    # conjunctions with thousands of atoms — e.g. whole-instance
    # embeddings of large ground blocks — do not hit the recursion limit.
    if count == 0:
        yield dict(assignment)
        return

    row_iters: list = [iter(candidates(ordered[0]))]
    bound_stack: list[list[Variable]] = [[]]
    depth = 0
    while depth >= 0:
        atom = ordered[depth]
        advanced = False
        for row in row_iters[depth]:
            newly_bound = bound_stack[depth]
            matches = True
            for term, value in zip(atom.args, row):
                if is_variable(term):
                    bound = assignment.get(term)
                    if bound is None:
                        assignment[term] = value
                        newly_bound.append(term)
                    elif bound != value:
                        matches = False
                        break
                elif term != value:
                    matches = False
                    break
            if not matches:
                for variable in newly_bound:
                    del assignment[variable]
                newly_bound.clear()
                continue
            if depth + 1 == count:
                yield dict(assignment)
                for variable in newly_bound:
                    del assignment[variable]
                newly_bound.clear()
                continue
            # Descend.
            depth += 1
            if depth == len(row_iters):
                row_iters.append(iter(candidates(ordered[depth])))
                bound_stack.append([])
            else:
                row_iters[depth] = iter(candidates(ordered[depth]))
            advanced = True
            break
        if not advanced:
            # Exhausted this level: backtrack.
            depth -= 1
            if depth >= 0:
                for variable in bound_stack[depth]:
                    del assignment[variable]
                bound_stack[depth].clear()


def find_homomorphism(
    atoms: Sequence[Atom],
    instance: Instance,
    partial: Mapping[Variable, InstanceTerm] | None = None,
) -> Assignment | None:
    """Return one homomorphism from ``atoms`` into ``instance``, or None."""
    for assignment in iter_homomorphisms(atoms, instance, partial):
        return assignment
    return None


def has_homomorphism(
    atoms: Sequence[Atom],
    instance: Instance,
    partial: Mapping[Variable, InstanceTerm] | None = None,
) -> bool:
    """Return True if some homomorphism from ``atoms`` into ``instance`` exists."""
    return find_homomorphism(atoms, instance, partial) is not None


# ---------------------------------------------------------------------------
# instance-to-instance homomorphisms (constants fixed, nulls mapped)
# ---------------------------------------------------------------------------


def _null_variable(null: Null) -> Variable:
    """A reserved variable name standing for ``null`` during matching."""
    return Variable(f"?null{null.label}")


def _facts_as_atoms(source: Instance) -> tuple[list[Atom], dict[Variable, Null]]:
    """View the facts of ``source`` as atoms whose nulls become variables."""
    atoms: list[Atom] = []
    back: dict[Variable, Null] = {}
    for fact in source:
        args: list[Term] = []
        for value in fact.args:
            if is_null(value):
                variable = _null_variable(value)
                back[variable] = value
                args.append(variable)
            else:
                args.append(value)
        atoms.append(Atom(fact.relation, args))
    return atoms, back


def iter_instance_homomorphisms(
    source: Instance,
    target: Instance,
    fixed: Mapping[Null, InstanceTerm] | None = None,
) -> Iterator[dict[Null, InstanceTerm]]:
    """Yield constant-preserving homomorphisms from ``source`` into ``target``.

    A homomorphism ``h`` maps every null of ``source`` to a value of
    ``target`` (constants are fixed pointwise) so that ``h(fact)`` is a fact
    of ``target`` for every fact of ``source``.

    Args:
        source: the instance being mapped (may contain nulls).
        target: the instance mapped into.
        fixed: optional pre-determined images for some nulls.
    """
    if source.is_ground():
        # A homomorphism fixes constants pointwise, so for a ground source
        # the only candidate is the identity: containment decides it.
        if target.contains_instance(source):
            yield {}
        return
    atoms, back = _facts_as_atoms(source)
    partial: Assignment = {}
    if fixed:
        for null, value in fixed.items():
            partial[_null_variable(null)] = value
    for assignment in iter_homomorphisms(atoms, target, partial):
        yield {back[variable]: value for variable, value in assignment.items() if variable in back}


def find_instance_homomorphism(
    source: Instance,
    target: Instance,
    fixed: Mapping[Null, InstanceTerm] | None = None,
) -> dict[Null, InstanceTerm] | None:
    """Return one constant-preserving homomorphism, or None if none exists."""
    for mapping in iter_instance_homomorphisms(source, target, fixed):
        return mapping
    return None


def has_instance_homomorphism(
    source: Instance,
    target: Instance,
    fixed: Mapping[Null, InstanceTerm] | None = None,
) -> bool:
    """Return True if ``source`` maps homomorphically into ``target``.

    For ground ``source`` this degenerates to containment, matching the
    convention that a homomorphism fixes constants.
    """
    return find_instance_homomorphism(source, target, fixed) is not None
