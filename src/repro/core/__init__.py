"""Core data model and algorithms: terms, instances, dependencies, chase.

This subpackage contains everything that is independent of the *solvers*:
the relational data model with labeled nulls, the dependency language
(tgds, egds, disjunctive tgds), parsing, homomorphism search, conjunctive
queries, the chase procedures, weak acyclicity, block decomposition, and
the PDE setting itself.
"""

from repro.core.atoms import Atom, Fact
from repro.core.blocks import Block, decompose_into_blocks, null_graph
from repro.core.cores import core, is_core
from repro.core.chase import ChaseResult, ChaseStep, chase, satisfies, solution_aware_chase
from repro.core.dependencies import EGD, TGD, Dependency, DisjunctiveTGD
from repro.core.dependency_graph import is_acyclic, relation_dependency_graph
from repro.core.homomorphism import (
    find_homomorphism,
    find_instance_homomorphism,
    has_homomorphism,
    has_instance_homomorphism,
    iter_homomorphisms,
    iter_instance_homomorphisms,
)
from repro.core.instance import Instance
from repro.core.parser import (
    NullInterner,
    parse_dependencies,
    parse_dependency,
    parse_instance,
    parse_query,
)
from repro.core.query import ConjunctiveQuery, UnionOfConjunctiveQueries
from repro.core.schema import RelationSymbol, Schema
from repro.core.setting import MultiPDESetting, PDESetting
from repro.core.terms import Constant, Null, NullFactory, Variable
from repro.core.weak_acyclicity import (
    PositionGraph,
    build_position_graph,
    chase_step_bound,
    is_weakly_acyclic,
    position_ranks,
)

__all__ = [
    "Atom",
    "Fact",
    "Block",
    "decompose_into_blocks",
    "null_graph",
    "core",
    "is_core",
    "ChaseResult",
    "ChaseStep",
    "chase",
    "satisfies",
    "solution_aware_chase",
    "EGD",
    "TGD",
    "Dependency",
    "DisjunctiveTGD",
    "is_acyclic",
    "relation_dependency_graph",
    "find_homomorphism",
    "find_instance_homomorphism",
    "has_homomorphism",
    "has_instance_homomorphism",
    "iter_homomorphisms",
    "iter_instance_homomorphisms",
    "Instance",
    "NullInterner",
    "parse_dependencies",
    "parse_dependency",
    "parse_instance",
    "parse_query",
    "ConjunctiveQuery",
    "UnionOfConjunctiveQueries",
    "RelationSymbol",
    "Schema",
    "MultiPDESetting",
    "PDESetting",
    "Constant",
    "Null",
    "NullFactory",
    "Variable",
    "PositionGraph",
    "build_position_graph",
    "chase_step_bound",
    "is_weakly_acyclic",
    "position_ranks",
]
