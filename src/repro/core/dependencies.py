"""Dependencies: tuple-generating and equality-generating dependencies.

The constraint language of the paper (Section 2):

* a **tgd** ``∀x (φ(x) → ∃y ψ(x, y))`` with conjunctions of atoms on both
  sides; variables that occur only on the right-hand side are the
  existentially quantified ``y``;
* an **egd** ``∀x (φ(x) → z1 = z2)`` with ``z1, z2`` among ``x``;
* a **disjunctive tgd** whose right-hand side is a disjunction of
  conjunctions — used only by the paper's 3-colorability boundary example
  (end of Section 4), and deliberately excluded from ``C_tract``.

Classification helpers identify the syntactic families the paper singles
out: *full* tgds (no existentials; Corollary 1), *LAV* tgds (single-atom,
repetition-free left-hand side; Corollary 2), and *GAV* tgds (single-atom,
existential-free right-hand side).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.core.atoms import Atom
from repro.core.schema import Schema
from repro.core.terms import Variable, is_variable
from repro.exceptions import DependencyError, SchemaError

__all__ = ["TGD", "EGD", "DisjunctiveTGD", "Dependency", "Provenance"]


@dataclass(frozen=True)
class Provenance:
    """Where a dependency came from, for diagnostics and error spans.

    The parser attaches one of these to every dependency it builds, so
    static analysis (:mod:`repro.analysis`) can point at the offending
    tgd/egd instead of merely naming it.  ``line`` and ``column`` are
    1-based and relative to the enclosing document (for a setting loaded
    from JSON, the line is the 1-based index into the dependency block's
    list); ``source`` names the block or file (``"sigma_st"``,
    ``"setting.json"``).  Provenance never participates in equality —
    the same dependency parsed from two places compares equal.
    """

    text: str = ""
    line: int = 1
    column: int = 1
    source: str = ""

    def label(self) -> str:
        """Render as a compact ``source:line:column`` location string."""
        prefix = f"{self.source}:" if self.source else ""
        return f"{prefix}{self.line}:{self.column}"

    def __str__(self) -> str:
        return self.label()


def _collect_variables(atoms: Iterable[Atom]) -> set[Variable]:
    variables: set[Variable] = set()
    for atom in atoms:
        variables |= atom.variables()
    return variables


@dataclass(frozen=True)
class TGD:
    """A tuple-generating dependency ``∀x (body → ∃y head)``.

    ``body`` and ``head`` are non-empty tuples of atoms.  The existential
    variables are derived: they are exactly the head variables that do not
    occur in the body.
    """

    body: tuple[Atom, ...]
    head: tuple[Atom, ...]
    label: str = field(default="", compare=False)
    provenance: Provenance | None = field(default=None, compare=False, repr=False)

    def __init__(
        self,
        body: Sequence[Atom],
        head: Sequence[Atom],
        label: str = "",
        provenance: Provenance | None = None,
    ):
        if not body:
            raise DependencyError("a tgd must have a non-empty body")
        if not head:
            raise DependencyError("a tgd must have a non-empty head")
        object.__setattr__(self, "body", tuple(body))
        object.__setattr__(self, "head", tuple(head))
        object.__setattr__(self, "label", label)
        object.__setattr__(self, "provenance", provenance)
        # Variable-structure caches (immutable; queried on every chase step).
        body_variables = frozenset(_collect_variables(self.body))
        head_variables = frozenset(_collect_variables(self.head))
        object.__setattr__(self, "_body_variables", body_variables)
        object.__setattr__(self, "_head_variables", head_variables)
        object.__setattr__(self, "_existentials", head_variables - body_variables)
        object.__setattr__(self, "_frontier", head_variables & body_variables)

    # -- variable structure -------------------------------------------------

    def body_variables(self) -> frozenset[Variable]:
        """Return the universally quantified variables (those in the body)."""
        return self._body_variables  # type: ignore[attr-defined]

    def head_variables(self) -> frozenset[Variable]:
        """Return every variable occurring in the head."""
        return self._head_variables  # type: ignore[attr-defined]

    def existential_variables(self) -> frozenset[Variable]:
        """Return the existentially quantified variables ``y``."""
        return self._existentials  # type: ignore[attr-defined]

    def frontier_variables(self) -> frozenset[Variable]:
        """Return the variables shared between body and head (the exported ``x``)."""
        return self._frontier  # type: ignore[attr-defined]

    # -- syntactic classification (Sections 1, 4) ---------------------------

    def is_full(self) -> bool:
        """True for full tgds ``φ(x) → ψ(x)`` (no existential variables)."""
        return not self._existentials  # type: ignore[attr-defined]

    def is_lav(self) -> bool:
        """True for LAV tgds: single body atom with no repeated variables.

        This matches the description below Definition 9: "exactly one
        literal in its left-hand side which has no repeated variables".
        """
        if len(self.body) != 1:
            return False
        atom = self.body[0]
        seen: set[Variable] = set()
        for arg in atom.args:
            if is_variable(arg):
                if arg in seen:
                    return False
                seen.add(arg)
        return True

    def is_gav(self) -> bool:
        """True for GAV tgds: a single head atom and no existential variables."""
        return len(self.head) == 1 and self.is_full()

    # -- schema validation ---------------------------------------------------

    def validate(self, body_schema: Schema, head_schema: Schema) -> None:
        """Check atoms against the schemas of the two sides.

        For a source-to-target tgd, ``body_schema`` is the source schema and
        ``head_schema`` the target schema; for a target tgd both coincide.
        """
        for atom in self.body:
            if atom.relation not in body_schema:
                raise SchemaError(
                    f"body atom {atom} of tgd {self} is not over the expected schema"
                )
            body_schema.validate_atom(atom)
        for atom in self.head:
            if atom.relation not in head_schema:
                raise SchemaError(
                    f"head atom {atom} of tgd {self} is not over the expected schema"
                )
            head_schema.validate_atom(atom)

    def __str__(self) -> str:
        body = ", ".join(str(atom) for atom in self.body)
        head = ", ".join(str(atom) for atom in self.head)
        existentials = self.existential_variables()
        if existentials:
            quantified = " ".join(sorted(f"∃{v.name}" for v in existentials))
            return f"{body} -> {quantified} {head}"
        return f"{body} -> {head}"

    def __repr__(self) -> str:
        return f"TGD({self})"


@dataclass(frozen=True)
class EGD:
    """An equality-generating dependency ``∀x (body → left = right)``."""

    body: tuple[Atom, ...]
    left: Variable
    right: Variable
    label: str = field(default="", compare=False)
    provenance: Provenance | None = field(default=None, compare=False, repr=False)

    def __init__(
        self,
        body: Sequence[Atom],
        left: Variable,
        right: Variable,
        label: str = "",
        provenance: Provenance | None = None,
    ):
        if not body:
            raise DependencyError("an egd must have a non-empty body")
        body = tuple(body)
        body_variables = _collect_variables(body)
        for side in (left, right):
            if side not in body_variables:
                raise DependencyError(
                    f"egd equates variable {side} that does not occur in its body"
                )
        object.__setattr__(self, "body", body)
        object.__setattr__(self, "left", left)
        object.__setattr__(self, "right", right)
        object.__setattr__(self, "label", label)
        object.__setattr__(self, "provenance", provenance)

    def body_variables(self) -> set[Variable]:
        """Return the variables occurring in the body."""
        return _collect_variables(self.body)

    def validate(self, schema: Schema) -> None:
        """Check that every body atom is over ``schema``."""
        for atom in self.body:
            if atom.relation not in schema:
                raise SchemaError(
                    f"body atom {atom} of egd {self} is not over the expected schema"
                )
            schema.validate_atom(atom)

    def __str__(self) -> str:
        body = ", ".join(str(atom) for atom in self.body)
        return f"{body} -> {self.left} = {self.right}"

    def __repr__(self) -> str:
        return f"EGD({self})"


@dataclass(frozen=True)
class DisjunctiveTGD:
    """A tgd whose head is a disjunction of conjunctions of atoms.

    ``∀x (body → ∃y (D1 ∨ D2 ∨ ...))`` where each ``Di`` is a conjunction.
    The paper uses one such dependency — in the right-hand side of
    ``Σ_ts`` — to show that allowing disjunction crosses the tractability
    boundary (3-colorability reduction at the end of Section 4).
    """

    body: tuple[Atom, ...]
    disjuncts: tuple[tuple[Atom, ...], ...]
    label: str = field(default="", compare=False)
    provenance: Provenance | None = field(default=None, compare=False, repr=False)

    def __init__(
        self,
        body: Sequence[Atom],
        disjuncts: Sequence[Sequence[Atom]],
        label: str = "",
        provenance: Provenance | None = None,
    ):
        if not body:
            raise DependencyError("a disjunctive tgd must have a non-empty body")
        if not disjuncts or any(not disjunct for disjunct in disjuncts):
            raise DependencyError(
                "a disjunctive tgd must have at least one non-empty disjunct"
            )
        object.__setattr__(self, "body", tuple(body))
        object.__setattr__(
            self, "disjuncts", tuple(tuple(disjunct) for disjunct in disjuncts)
        )
        object.__setattr__(self, "label", label)
        object.__setattr__(self, "provenance", provenance)

    def body_variables(self) -> set[Variable]:
        """Return the variables occurring in the body."""
        return _collect_variables(self.body)

    def head_variables(self) -> set[Variable]:
        """Return every variable occurring in any disjunct."""
        variables: set[Variable] = set()
        for disjunct in self.disjuncts:
            variables |= _collect_variables(disjunct)
        return variables

    def existential_variables(self) -> set[Variable]:
        """Return the head variables that do not occur in the body."""
        return self.head_variables() - self.body_variables()

    def as_tgds(self) -> list[TGD]:
        """Return one plain tgd per disjunct (useful for per-disjunct checks)."""
        return [
            TGD(
                self.body,
                disjunct,
                label=f"{self.label}|{index}" if self.label else "",
                provenance=self.provenance,
            )
            for index, disjunct in enumerate(self.disjuncts)
        ]

    def validate(self, body_schema: Schema, head_schema: Schema) -> None:
        """Check atoms against the schemas of the two sides."""
        for atom in self.body:
            if atom.relation not in body_schema:
                raise SchemaError(
                    f"body atom {atom} of {self} is not over the expected schema"
                )
            body_schema.validate_atom(atom)
        for disjunct in self.disjuncts:
            for atom in disjunct:
                if atom.relation not in head_schema:
                    raise SchemaError(
                        f"head atom {atom} of {self} is not over the expected schema"
                    )
                head_schema.validate_atom(atom)

    def __str__(self) -> str:
        body = ", ".join(str(atom) for atom in self.body)
        head = " | ".join(
            "(" + ", ".join(str(atom) for atom in disjunct) + ")"
            for disjunct in self.disjuncts
        )
        return f"{body} -> {head}"

    def __repr__(self) -> str:
        return f"DisjunctiveTGD({self})"


#: Any dependency the library manipulates.
Dependency = TGD | EGD | DisjunctiveTGD
