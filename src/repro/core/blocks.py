"""Block decomposition of an instance (Definition 10).

The *graph of the nulls* of an instance ``K`` has the nulls of ``K`` as
nodes, with an edge whenever two nulls co-occur in a fact.  A *block* is a
maximal set of facts whose nulls all come from one connected component of
that graph; the facts with no nulls at all form one additional block.

Proposition 1 of the paper reduces the homomorphism test ``I_can → I`` to
one independent test per block, and Theorem 6 bounds the number of nulls
per block by a constant for settings in ``C_tract`` — which is what makes
the ``ExistsSolution`` algorithm of Figure 3 polynomial.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.instance import Instance
from repro.core.terms import Null

__all__ = ["Block", "null_graph", "decompose_into_blocks"]


@dataclass(frozen=True)
class Block:
    """One block of tuples: the facts plus the component of nulls they share."""

    facts: Instance
    nulls: frozenset[Null]

    @property
    def null_count(self) -> int:
        """Number of nulls in this block (the quantity bounded by Theorem 6)."""
        return len(self.nulls)

    def is_ground(self) -> bool:
        """True for the distinguished null-free block."""
        return not self.nulls


def null_graph(instance: Instance) -> dict[Null, set[Null]]:
    """Return the graph of the nulls of ``instance`` as an adjacency map.

    Every null of the instance appears as a key, even if isolated.
    """
    adjacency: dict[Null, set[Null]] = {}
    for fact in instance:
        nulls = list(fact.nulls())
        for null in nulls:
            adjacency.setdefault(null, set())
        for i, first in enumerate(nulls):
            for second in nulls[i + 1:]:
                adjacency[first].add(second)
                adjacency[second].add(first)
    return adjacency


def _connected_components(adjacency: dict[Null, set[Null]]) -> list[set[Null]]:
    components: list[set[Null]] = []
    seen: set[Null] = set()
    for start in adjacency:
        if start in seen:
            continue
        component = {start}
        frontier = [start]
        while frontier:
            node = frontier.pop()
            for neighbor in adjacency[node]:
                if neighbor not in component:
                    component.add(neighbor)
                    frontier.append(neighbor)
        seen |= component
        components.append(component)
    return components


def decompose_into_blocks(instance: Instance) -> list[Block]:
    """Decompose ``instance`` into its blocks of tuples (Definition 10).

    Returns one :class:`Block` per connected component of the null graph,
    plus (when the instance has null-free facts) one ground block.  Every
    fact of the instance belongs to exactly one returned block.
    """
    adjacency = null_graph(instance)
    components = _connected_components(adjacency)
    component_of: dict[Null, int] = {}
    for index, component in enumerate(components):
        for null in component:
            component_of[null] = index

    members: list[Instance] = [Instance(schema=instance.schema) for _ in components]
    ground = Instance(schema=instance.schema)
    for fact in instance:
        nulls = fact.nulls()
        if nulls:
            # All of a fact's nulls are in one component by construction.
            index = component_of[next(iter(nulls))]
            members[index].add(fact)
        else:
            ground.add(fact)

    blocks = [
        Block(facts=member, nulls=frozenset(component))
        for member, component in zip(members, components)
    ]
    if ground:
        blocks.append(Block(facts=ground, nulls=frozenset()))
    return blocks
