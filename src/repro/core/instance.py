"""Database instances with labeled nulls.

An :class:`Instance` stores a finite set of facts grouped by relation.  It
is the workhorse data structure of the library: chase procedures extend
instances, homomorphism search matches into them, and solvers compare them.

Instances are mutable (the chase adds facts in place for efficiency) but
expose ``frozen()`` / ``copy()`` for safe sharing, and equality compares
fact sets, not identity.
"""

from __future__ import annotations

from typing import AbstractSet, Iterable, Iterator, Mapping, Sequence

from repro.core.atoms import Fact
from repro.core.schema import Schema
from repro.core.terms import Constant, InstanceTerm, Null, is_null

__all__ = ["Instance"]

#: Shared empty row set returned by :meth:`Instance.rows` for absent
#: relations.  A ``frozenset`` so that a caller that (wrongly) tries to
#: mutate an empty result raises instead of silently poisoning every
#: other instance that shares this sentinel.
_EMPTY_ROWS: frozenset = frozenset()


class Instance:
    """A finite relational instance: a set of facts grouped by relation.

    Args:
        facts: initial facts.
        schema: optional schema; when provided, every added fact is
            validated against it (arity and relation-name checks).
    """

    def __init__(self, facts: Iterable[Fact] = (), schema: Schema | None = None):
        self.schema = schema
        self._relations: dict[str, set[tuple[InstanceTerm, ...]]] = {}
        self._size = 0
        # Lazy positional index: (relation, position, value) -> row set.
        # Built on first candidate_rows() call, maintained incrementally by
        # add/discard afterwards.
        self._index: dict[tuple[str, int, InstanceTerm], set[tuple[InstanceTerm, ...]]] | None = None
        for fact in facts:
            self.add(fact)

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_tuples(
        cls,
        tuples: Mapping[str, Iterable[Sequence[object]]],
        schema: Schema | None = None,
    ) -> "Instance":
        """Build an instance from raw Python values.

        Every raw value is wrapped in a :class:`Constant` unless it already
        is a :class:`Constant` or :class:`Null`::

            Instance.from_tuples({"E": [("a", "b"), ("b", "c")]})
        """
        instance = cls(schema=schema)
        for relation, rows in tuples.items():
            for row in rows:
                args = tuple(
                    value if isinstance(value, (Constant, Null)) else Constant(value)
                    for value in row
                )
                instance.add(Fact(relation, args))
        return instance

    def copy(self) -> "Instance":
        """Return an independent copy sharing no mutable state.

        A built positional index is copied bucket-by-bucket (set copies at
        C speed) rather than discarded: the incremental chase copies the
        prior fixpoint every round, and rebuilding the index through the
        Python fact loop would cost more than the whole delta pass.
        """
        clone = Instance(schema=self.schema)
        clone._relations = {name: set(rows) for name, rows in self._relations.items()}
        clone._size = self._size
        if self._index is not None:
            clone._index = {
                key: set(bucket) for key, bucket in self._index.items()
            }
        return clone

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------

    def add(self, fact: Fact) -> bool:
        """Add a fact; return True if it was not already present."""
        if self.schema is not None:
            self.schema.validate_fact(fact)
        return self._add_unchecked(fact)

    def _add_unchecked(self, fact: Fact) -> bool:
        """Add a fact known to satisfy the schema, skipping validation.

        Internal fast path for rebuilds of already-validated facts
        (``rename``, ``restrict_to``): renaming values or projecting
        relations cannot change a fact's relation name or arity, so
        re-validating every row on such rebuilds is pure overhead —
        egd merges in the chase pay it once per merge otherwise.
        """
        rows = self._relations.setdefault(fact.relation, set())
        if fact.args in rows:
            return False
        rows.add(fact.args)
        self._size += 1
        if self._index is not None:
            for position, value in enumerate(fact.args):
                self._index.setdefault(
                    (fact.relation, position, value), set()
                ).add(fact.args)
        return True

    def add_all(self, facts: Iterable[Fact]) -> int:
        """Add many facts; return how many were new."""
        return sum(1 for fact in facts if self.add(fact))

    def discard(self, fact: Fact) -> bool:
        """Remove a fact if present; return True if it was removed.

        Emptied row sets and index buckets are pruned so that long
        add/discard churn (sync sessions retracting imported facts round
        after round) cannot grow ``_relations`` / ``_index`` unboundedly.
        """
        rows = self._relations.get(fact.relation)
        if rows is None or fact.args not in rows:
            return False
        rows.remove(fact.args)
        if not rows:
            del self._relations[fact.relation]
        self._size -= 1
        if self._index is not None:
            for position, value in enumerate(fact.args):
                key = (fact.relation, position, value)
                bucket = self._index.get(key)
                if bucket is not None:
                    bucket.discard(fact.args)
                    if not bucket:
                        del self._index[key]
        return True

    def rename(self, mapping: Mapping[InstanceTerm, InstanceTerm]) -> "Instance":
        """Return a new instance with every value replaced by its image.

        Values absent from the mapping are left unchanged.  This is how egd
        chase steps identify a null with another value, and how valuations
        of nulls are applied by the solvers.

        Every fact of self already passed schema validation when it was
        added, and renaming values preserves relation names and arities,
        so the rebuild skips per-fact re-validation (egd merges in the
        chase would otherwise pay O(n) validation per merge).
        """
        if not mapping:
            return self.copy()
        renamed = Instance(schema=self.schema)
        for fact in self:
            renamed._add_unchecked(fact.substitute(mapping))
        return renamed

    # ------------------------------------------------------------------
    # queries about content
    # ------------------------------------------------------------------

    def __contains__(self, fact: Fact) -> bool:
        rows = self._relations.get(fact.relation)
        return rows is not None and fact.args in rows

    def __iter__(self) -> Iterator[Fact]:
        for relation, rows in self._relations.items():
            for row in rows:
                yield Fact(relation, row)

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Instance):
            return NotImplemented
        mine = {name: rows for name, rows in self._relations.items() if rows}
        theirs = {name: rows for name, rows in other._relations.items() if rows}
        return mine == theirs

    def __hash__(self) -> int:
        parts = []
        for name in sorted(self._relations):
            rows = self._relations[name]
            if rows:
                parts.append((name, frozenset(rows)))
        return hash(tuple(parts))

    def relations(self) -> list[str]:
        """Return the names of relations holding at least one fact."""
        return [name for name, rows in self._relations.items() if rows]

    def tuples(self, relation: str) -> frozenset[tuple[InstanceTerm, ...]]:
        """Return the rows of ``relation`` (empty if the relation is absent)."""
        return frozenset(self._relations.get(relation, ()))

    def candidate_rows(
        self, relation: str, position: int, value: InstanceTerm
    ) -> AbstractSet[tuple[InstanceTerm, ...]]:
        """Rows of ``relation`` holding ``value`` at ``position`` (no copy).

        Backed by a lazily built positional index that ``add``/``discard``
        maintain incrementally; the homomorphism matcher uses it to avoid
        scanning whole relations when an atom has bound positions.  Callers
        must treat the result as read-only and must not mutate the instance
        while iterating it.
        """
        if self._index is None:
            index: dict[tuple[str, int, InstanceTerm], set[tuple[InstanceTerm, ...]]] = {}
            for name, rows in self._relations.items():
                for row in rows:
                    for pos, val in enumerate(row):
                        index.setdefault((name, pos, val), set()).add(row)
            self._index = index
        return self._index.get((relation, position, value), _EMPTY_ROWS)

    def rows(self, relation: str) -> AbstractSet[tuple[InstanceTerm, ...]]:
        """Return the *live* row set of ``relation`` (no copy).

        Hot-path accessor for the homomorphism matcher; callers must treat
        the result as read-only and must not mutate the instance while
        iterating it.  For an absent relation the shared immutable empty
        set is returned, so an accidental mutation attempt raises rather
        than corrupting unrelated instances.
        """
        return self._relations.get(relation, _EMPTY_ROWS)

    def diff(self, other: "Instance") -> tuple[list[Fact], list[Fact]]:
        """Return ``(added, removed)`` fact deltas of self relative to ``other``.

        ``added`` holds the facts of self absent from ``other``; ``removed``
        the facts of ``other`` absent from self.  Computed with per-relation
        set differences, so diffing two mostly-overlapping snapshots (the
        incremental-chase hot path) costs set arithmetic, not hashing every
        fact through Python-level loops.
        """
        added: list[Fact] = []
        removed: list[Fact] = []
        for relation, rows in self._relations.items():
            theirs = other._relations.get(relation)
            if theirs is None:
                added.extend(Fact(relation, row) for row in rows)
            elif rows is not theirs:
                added.extend(Fact(relation, row) for row in rows - theirs)
        for relation, theirs in other._relations.items():
            mine = self._relations.get(relation)
            if mine is None:
                removed.extend(Fact(relation, row) for row in theirs)
            elif mine is not theirs:
                removed.extend(Fact(relation, row) for row in theirs - mine)
        return added, removed

    def facts(self, relation: str | None = None) -> list[Fact]:
        """Return facts of one relation, or all facts when ``relation`` is None."""
        if relation is None:
            return list(self)
        return [Fact(relation, row) for row in self._relations.get(relation, ())]

    def count(self, relation: str) -> int:
        """Return the number of facts in ``relation``."""
        return len(self._relations.get(relation, ()))

    def contains_instance(self, other: "Instance") -> bool:
        """Return True if every fact of ``other`` is a fact of self (``other ⊆ self``)."""
        for relation, rows in other._relations.items():
            mine = self._relations.get(relation, set())
            if not rows <= mine:
                return False
        return True

    def union(self, other: "Instance") -> "Instance":
        """Return a new instance containing the facts of both operands."""
        merged = self.copy()
        merged.add_all(other)
        return merged

    def difference(self, other: "Instance") -> "Instance":
        """Return the facts of self that are not facts of ``other``."""
        result = Instance(schema=self.schema)
        for fact in self:
            if fact not in other:
                result.add(fact)
        return result

    def intersection(self, other: "Instance") -> "Instance":
        """Return the facts common to both operands."""
        result = Instance(schema=self.schema)
        for fact in self:
            if fact in other:
                result.add(fact)
        return result

    def __or__(self, other: "Instance") -> "Instance":
        return self.union(other)

    def __sub__(self, other: "Instance") -> "Instance":
        return self.difference(other)

    def __and__(self, other: "Instance") -> "Instance":
        return self.intersection(other)

    # ------------------------------------------------------------------
    # domains and nulls
    # ------------------------------------------------------------------

    def active_domain(self) -> set[InstanceTerm]:
        """Return every value (constant or null) occurring in some fact."""
        domain: set[InstanceTerm] = set()
        for rows in self._relations.values():
            for row in rows:
                domain.update(row)
        return domain

    def constants(self) -> set[Constant]:
        """Return every constant occurring in some fact."""
        return {value for value in self.active_domain() if isinstance(value, Constant)}

    def nulls(self) -> set[Null]:
        """Return every labeled null occurring in some fact."""
        return {value for value in self.active_domain() if is_null(value)}

    def is_ground(self) -> bool:
        """Return True if the instance contains no nulls."""
        return not self.nulls()

    # ------------------------------------------------------------------
    # schema projection
    # ------------------------------------------------------------------

    def restrict_to(self, schema: Schema) -> "Instance":
        """Return the sub-instance over the relations of ``schema``.

        Used to split an instance over the combined schema ``(S, T)`` back
        into its source and target parts.
        """
        projected = Instance(schema=schema)
        for name in schema.names():
            rows = self._relations.get(name)
            if rows:
                # Rows were validated when added to self, and projection
                # keeps relation names and arities intact: copy them in
                # bulk without per-fact re-validation.
                projected._relations[name] = set(rows)
                projected._size += len(rows)
        return projected

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------

    def __str__(self) -> str:
        if not self._size:
            return "{}"
        rendered = sorted(str(fact) for fact in self)
        return "{" + ", ".join(rendered) + "}"

    def __repr__(self) -> str:
        return f"Instance(<{self._size} facts over {sorted(self.relations())}>)"

    def pretty(self) -> str:
        """Return a multi-line, relation-grouped rendering for debugging."""
        lines = []
        for name in sorted(self._relations):
            rows = self._relations[name]
            if not rows:
                continue
            rendered = sorted(
                "(" + ", ".join(str(value) for value in row) + ")" for row in rows
            )
            lines.append(f"{name}: " + ", ".join(rendered))
        return "\n".join(lines) if lines else "(empty instance)"
