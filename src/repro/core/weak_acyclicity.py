"""Weak acyclicity of a set of tgds (Definition 5).

The *dependency graph* of a set of tgds has one node per position ``(R, i)``
of the schema.  For every tgd ``φ(x) → ∃y ψ(x, y)`` and every universally
quantified variable ``x`` occurring in the head:

* a **regular edge** runs from each body position of ``x`` to each head
  position of ``x``;
* a **special edge** runs from each body position of ``x`` to each head
  position of every existentially quantified variable ``y``.

The set is *weakly acyclic* when no cycle goes through a special edge.
Lemma 1 of the paper relies on weak acyclicity to bound the length of every
(solution-aware) chase sequence by a polynomial.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.dependencies import TGD
from repro.core.terms import is_variable

__all__ = [
    "Position",
    "PositionGraph",
    "build_position_graph",
    "is_weakly_acyclic",
    "position_ranks",
    "chase_step_bound",
]

#: A position is a pair (relation name, 0-based attribute index).
Position = tuple[str, int]


@dataclass(frozen=True)
class PositionGraph:
    """The dependency graph over positions, with edge kinds.

    ``regular`` and ``special`` map each position to the set of positions it
    points to via edges of that kind.  The same ordered pair may carry both
    a regular and a special edge, as Definition 5 notes.
    """

    nodes: frozenset[Position]
    regular: dict[Position, set[Position]]
    special: dict[Position, set[Position]]

    def successors(self, node: Position) -> set[Position]:
        """All successors of ``node``, regardless of edge kind."""
        return self.regular.get(node, set()) | self.special.get(node, set())

    def special_edges(self) -> list[tuple[Position, Position]]:
        """Return every special edge as an ordered pair."""
        return [
            (source, target)
            for source, targets in self.special.items()
            for target in targets
        ]

    def edge_count(self) -> int:
        """Total number of distinct (pair, kind) edges."""
        regular = sum(len(targets) for targets in self.regular.values())
        special = sum(len(targets) for targets in self.special.values())
        return regular + special


def build_position_graph(tgds: Iterable[TGD]) -> PositionGraph:
    """Construct the dependency graph of Definition 5 for ``tgds``."""
    nodes: set[Position] = set()
    regular: dict[Position, set[Position]] = {}
    special: dict[Position, set[Position]] = {}

    tgds = list(tgds)
    for tgd in tgds:
        for atom in tgd.body + tgd.head:
            for index in range(atom.arity):
                nodes.add((atom.relation, index))

    for tgd in tgds:
        existentials = tgd.existential_variables()
        head_variables = tgd.head_variables()
        for variable in tgd.body_variables():
            if variable not in head_variables:
                continue
            body_positions = [
                (atom.relation, index)
                for atom in tgd.body
                for index, arg in enumerate(atom.args)
                if arg == variable
            ]
            variable_head_positions = [
                (atom.relation, index)
                for atom in tgd.head
                for index, arg in enumerate(atom.args)
                if arg == variable
            ]
            existential_head_positions = [
                (atom.relation, index)
                for atom in tgd.head
                for index, arg in enumerate(atom.args)
                if is_variable(arg) and arg in existentials
            ]
            for source in body_positions:
                regular.setdefault(source, set()).update(variable_head_positions)
                special.setdefault(source, set()).update(existential_head_positions)

    return PositionGraph(nodes=frozenset(nodes), regular=regular, special=special)


def _reachable(graph: PositionGraph, start: Position) -> set[Position]:
    """Positions reachable from ``start`` via any edges (excluding the empty path)."""
    seen: set[Position] = set()
    frontier = list(graph.successors(start))
    while frontier:
        node = frontier.pop()
        if node in seen:
            continue
        seen.add(node)
        frontier.extend(graph.successors(node))
    return seen


def is_weakly_acyclic(tgds: Sequence[TGD]) -> bool:
    """Return True if ``tgds`` is a weakly acyclic set (Definition 5).

    The set is weakly acyclic when no special edge ``(u, v)`` lies on a
    cycle, i.e. when ``u`` is never reachable from ``v``.

    Full tgds are always weakly acyclic (they induce no special edges), as
    are acyclic sets of inclusion dependencies.
    """
    graph = build_position_graph(tgds)
    for source, target in graph.special_edges():
        if source == target or source in _reachable(graph, target):
            return False
    return True


def position_ranks(tgds: Sequence[TGD]) -> dict[Position, int]:
    """Return the *rank* of every position of a weakly acyclic set.

    The rank of a position is the maximum number of special edges on any
    path of the dependency graph ending at it.  Weak acyclicity makes
    ranks finite; they stratify the positions by how many "generations" of
    fresh nulls can flow into them, which is the combinatorial heart of
    Lemma 1's polynomial bound on chase length.

    Raises:
        NotWeaklyAcyclicError: if the set is not weakly acyclic (ranks
            would be unbounded).
    """
    from repro.exceptions import NotWeaklyAcyclicError

    if not is_weakly_acyclic(tgds):
        raise NotWeaklyAcyclicError(
            "position ranks are only defined for weakly acyclic sets"
        )
    graph = build_position_graph(tgds)
    ranks = {node: 0 for node in graph.nodes}
    # Bellman-Ford style relaxation; path lengths are bounded by the node
    # count because no special edge lies on a cycle.
    for _ in range(len(graph.nodes) + 1):
        changed = False
        for source, targets in graph.regular.items():
            for target in targets:
                if ranks[source] > ranks[target]:
                    ranks[target] = ranks[source]
                    changed = True
        for source, targets in graph.special.items():
            for target in targets:
                if ranks[source] + 1 > ranks[target]:
                    ranks[target] = ranks[source] + 1
                    changed = True
        if not changed:
            break
    return ranks


def chase_step_bound(tgds: Sequence[TGD], instance_size: int) -> int:
    """An explicit Lemma 1 budget: a polynomial bound on chase length.

    For a weakly acyclic set, the number of distinct values that can ever
    appear at a position of rank ``r`` is at most ``n^(c^r)``-ish in
    general; the standard coarse bound used here is
    ``(p * n) ^ (r_max + 1)`` values per position, where ``p`` is the
    number of positions, ``n`` the instance size, and ``r_max`` the
    maximum rank.  Chase steps add at least one fact each, and facts range
    over tuples of per-position values, giving the returned bound.

    The point is not tightness — it is having a *certified* finite budget
    derived from Definition 5 to hand to :func:`repro.core.chase.chase`
    instead of an arbitrary constant.
    """
    tgds = list(tgds)
    if not tgds:
        return max(1, instance_size)
    ranks = position_ranks(tgds)
    positions = max(1, len(ranks))
    max_rank = max(ranks.values(), default=0)
    base = max(2, positions * max(1, instance_size))
    max_arity = max(
        (atom.arity for tgd in tgds for atom in (*tgd.body, *tgd.head)),
        default=1,
    )
    values_per_position = base ** (max_rank + 1)
    return positions * values_per_position ** max(1, max_arity)
