"""Peer data exchange settings (Definitions 1 and 2).

A :class:`PDESetting` is the quintuple ``P = (S, T, Σ_st, Σ_ts, Σ_t)``:

* ``S`` — source schema, ``T`` — target schema (disjoint);
* ``Σ_st`` — source-to-target tgds (what the source offers);
* ``Σ_ts`` — target-to-source tgds (what the target is willing to accept;
  disjunctive tgds are allowed here only so the paper's 3-colorability
  boundary example can be expressed);
* ``Σ_t`` — target tgds and egds.

A target instance ``J'`` is a *solution* for ``(I, J)`` when ``J ⊆ J'``,
``(I, J') ⊨ Σ_st ∪ Σ_ts`` and ``J' ⊨ Σ_t`` — with ``I`` immutable, which is
the defining restriction of peer data exchange.

:class:`MultiPDESetting` models several source peers exchanging with one
target peer; ``merge()`` implements the paper's observation that a
multi-PDE setting is equivalent to a single PDE over the union of the
sources.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.core.chase import satisfies
from repro.core.dependencies import EGD, TGD, Dependency, DisjunctiveTGD
from repro.core.instance import Instance
from repro.core.parser import parse_dependencies
from repro.core.schema import Schema
from repro.core.weak_acyclicity import is_weakly_acyclic
from repro.exceptions import DependencyError, SchemaError

__all__ = ["PDESetting", "MultiPDESetting"]


@dataclass(frozen=True)
class PDESetting:
    """A peer data exchange setting ``(S, T, Σ_st, Σ_ts, Σ_t)``."""

    source_schema: Schema
    target_schema: Schema
    sigma_st: tuple[TGD, ...]
    sigma_ts: tuple[TGD | DisjunctiveTGD, ...]
    sigma_t: tuple[TGD | EGD, ...] = ()
    name: str = field(default="", compare=False)

    def __init__(
        self,
        source_schema: Schema,
        target_schema: Schema,
        sigma_st: Sequence[TGD],
        sigma_ts: Sequence[TGD | DisjunctiveTGD],
        sigma_t: Sequence[TGD | EGD] = (),
        name: str = "",
        validate: bool = True,
    ):
        """Build a setting; with ``validate=False`` no well-formedness check runs.

        Skipping validation admits malformed settings (overlapping schemas,
        arity mismatches, dependencies on the wrong side) so that the static
        analyzer (:mod:`repro.analysis`) can *diagnose* them instead of dying
        on the first exception.  Every other consumer should validate.
        """
        if validate and not source_schema.disjoint_from(target_schema):
            raise SchemaError("source and target schemas must be disjoint")
        object.__setattr__(self, "source_schema", source_schema)
        object.__setattr__(self, "target_schema", target_schema)
        object.__setattr__(self, "sigma_st", tuple(sigma_st))
        object.__setattr__(self, "sigma_ts", tuple(sigma_ts))
        object.__setattr__(self, "sigma_t", tuple(sigma_t))
        object.__setattr__(self, "name", name)
        if validate:
            self._validate()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def from_text(
        cls,
        source: Mapping[str, int],
        target: Mapping[str, int],
        st: str = "",
        ts: str = "",
        t: str = "",
        name: str = "",
        validate: bool = True,
    ) -> "PDESetting":
        """Build a setting from arity maps and dependency text blocks.

        Example — the paper's Example 1::

            PDESetting.from_text(
                source={"E": 2},
                target={"H": 2},
                st="E(x, z), E(z, y) -> H(x, y)",
                ts="H(x, y) -> E(x, y)",
            )
        """
        source_schema = Schema.from_arities(source)
        target_schema = Schema.from_arities(target)
        sigma_st = parse_dependencies(st, source="sigma_st")
        sigma_ts = parse_dependencies(ts, source="sigma_ts")
        sigma_t = parse_dependencies(t, source="sigma_t")
        if validate:
            for dependency in sigma_st:
                if not isinstance(dependency, TGD):
                    raise DependencyError(
                        f"Σ_st must contain only tgds, got {dependency}"
                    )
        return cls(
            source_schema,
            target_schema,
            sigma_st,  # type: ignore[arg-type]
            sigma_ts,  # type: ignore[arg-type]
            sigma_t,  # type: ignore[arg-type]
            name=name,
            validate=validate,
        )

    def _validate(self) -> None:
        for tgd in self.sigma_st:
            if not isinstance(tgd, TGD):
                raise DependencyError(f"Σ_st must contain only tgds, got {tgd}")
            tgd.validate(self.source_schema, self.target_schema)
        for dependency in self.sigma_ts:
            if isinstance(dependency, (TGD, DisjunctiveTGD)):
                dependency.validate(self.target_schema, self.source_schema)
            else:
                raise DependencyError(
                    f"Σ_ts must contain only (disjunctive) tgds, got {dependency}"
                )
        for dependency in self.sigma_t:
            if isinstance(dependency, TGD):
                dependency.validate(self.target_schema, self.target_schema)
            elif isinstance(dependency, EGD):
                dependency.validate(self.target_schema)
            else:
                raise DependencyError(
                    f"Σ_t must contain only target tgds and egds, got {dependency}"
                )

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------

    @property
    def combined_schema(self) -> Schema:
        """The schema ``(S, T)`` over which joint instances live."""
        return self.source_schema.union(self.target_schema)

    @property
    def has_target_constraints(self) -> bool:
        """True if ``Σ_t`` is non-empty."""
        return bool(self.sigma_t)

    @property
    def has_disjunctive_ts(self) -> bool:
        """True if some target-to-source dependency is disjunctive."""
        return any(isinstance(d, DisjunctiveTGD) for d in self.sigma_ts)

    def target_tgds(self) -> list[TGD]:
        """Return the tgds among ``Σ_t``."""
        return [d for d in self.sigma_t if isinstance(d, TGD)]

    def target_egds(self) -> list[EGD]:
        """Return the egds among ``Σ_t``."""
        return [d for d in self.sigma_t if isinstance(d, EGD)]

    def target_tgds_weakly_acyclic(self) -> bool:
        """True if the target tgds form a weakly acyclic set (Definition 5).

        This is the hypothesis of Theorems 1 and 2; the generic solver
        checks it before running.
        """
        return is_weakly_acyclic(self.target_tgds())

    def all_dependencies(self) -> list[Dependency]:
        """Return every dependency of the setting, in Σ_st, Σ_ts, Σ_t order."""
        return [*self.sigma_st, *self.sigma_ts, *self.sigma_t]

    # ------------------------------------------------------------------
    # instance plumbing and the solution test (Definition 2)
    # ------------------------------------------------------------------

    def combine(self, source: Instance, target: Instance) -> Instance:
        """Build the joint instance ``(I, J)`` over the combined schema."""
        combined = Instance(schema=self.combined_schema)
        combined.add_all(source)
        combined.add_all(target)
        return combined

    def split(self, combined: Instance) -> tuple[Instance, Instance]:
        """Split a joint instance back into its source and target parts."""
        return (
            combined.restrict_to(self.source_schema),
            combined.restrict_to(self.target_schema),
        )

    def validate_source_instance(self, source: Instance) -> None:
        """Check that ``source`` is over ``S`` and contains no nulls."""
        for fact in source:
            if fact.relation not in self.source_schema:
                raise SchemaError(f"source fact {fact} is not over the source schema")
            self.source_schema.validate_fact(fact)

    def validate_target_instance(self, target: Instance) -> None:
        """Check that ``target`` is over ``T``."""
        for fact in target:
            if fact.relation not in self.target_schema:
                raise SchemaError(f"target fact {fact} is not over the target schema")
            self.target_schema.validate_fact(fact)

    def is_solution(self, source: Instance, target: Instance, candidate: Instance) -> bool:
        """Definition 2: is ``candidate`` a solution for ``(source, target)``?

        Checks ``target ⊆ candidate``, ``(source, candidate) ⊨ Σ_st ∪ Σ_ts``
        and ``candidate ⊨ Σ_t``.
        """
        if not candidate.contains_instance(target):
            return False
        combined = self.combine(source, candidate)
        if not satisfies(combined, self.sigma_st):
            return False
        if not satisfies(combined, self.sigma_ts):
            return False
        return satisfies(candidate, self.sigma_t)

    def __str__(self) -> str:
        label = self.name or "PDESetting"
        return (
            f"{label}(S={self.source_schema}, T={self.target_schema}, "
            f"|Σ_st|={len(self.sigma_st)}, |Σ_ts|={len(self.sigma_ts)}, "
            f"|Σ_t|={len(self.sigma_t)})"
        )


@dataclass(frozen=True)
class MultiPDESetting:
    """A family of PDE settings sharing one target peer (Section 2).

    Every member must have the same target schema, and the source schemas
    must be pairwise disjoint (and disjoint from the target schema).
    """

    members: tuple[PDESetting, ...]
    name: str = field(default="", compare=False)

    def __init__(self, members: Sequence[PDESetting], name: str = ""):
        if not members:
            raise DependencyError("a multi-PDE setting needs at least one member")
        target_schema = members[0].target_schema
        for member in members[1:]:
            if member.target_schema != target_schema:
                raise SchemaError("all members of a multi-PDE share the target schema")
        for i, first in enumerate(members):
            for second in members[i + 1:]:
                if not first.source_schema.disjoint_from(second.source_schema):
                    raise SchemaError("source schemas of a multi-PDE must be disjoint")
        object.__setattr__(self, "members", tuple(members))
        object.__setattr__(self, "name", name)

    @property
    def target_schema(self) -> Schema:
        """The shared target schema."""
        return self.members[0].target_schema

    def merge(self) -> PDESetting:
        """Reduce to a single PDE with the same space of solutions.

        Implements the paper's observation: ``J'`` is a solution for
        ``((I_1, ..., I_n), J)`` iff it is a solution for
        ``(I_1 ∪ ... ∪ I_n, J)`` in the merged setting.
        """
        source_schema = Schema()
        sigma_st: list[TGD] = []
        sigma_ts: list[TGD | DisjunctiveTGD] = []
        sigma_t: list[TGD | EGD] = []
        for member in self.members:
            source_schema = source_schema.union(member.source_schema)
            sigma_st.extend(member.sigma_st)
            sigma_ts.extend(member.sigma_ts)
            sigma_t.extend(member.sigma_t)
        return PDESetting(
            source_schema,
            self.target_schema,
            sigma_st,
            sigma_ts,
            sigma_t,
            name=self.name or "merged multi-PDE",
        )

    def combine_sources(self, sources: Iterable[Instance]) -> Instance:
        """Union the per-peer source instances into one instance."""
        merged = Instance(schema=self.merge().source_schema)
        for source in sources:
            merged.add_all(source)
        return merged

    def is_solution(
        self,
        sources: Sequence[Instance],
        target: Instance,
        candidate: Instance,
    ) -> bool:
        """True if ``candidate`` is a solution for every member setting."""
        if len(sources) != len(self.members):
            raise DependencyError(
                f"expected {len(self.members)} source instances, got {len(sources)}"
            )
        return all(
            member.is_solution(source, target, candidate)
            for member, source in zip(self.members, sources)
        )
