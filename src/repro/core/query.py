"""Conjunctive queries and unions of conjunctive queries.

These are the query classes for which the paper studies certain answers
(Theorem 2: monotone queries, in particular unions of conjunctive queries,
have coNP data complexity; Theorem 3: coNP-hardness already for a single
Boolean conjunctive query).

Evaluation is by homomorphism search; answers never contain nulls unless
``allow_nulls`` is requested (the certain-answers machinery only ever asks
for null-free answers, matching the standard semantics).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.core.atoms import Atom
from repro.core.homomorphism import iter_homomorphisms
from repro.core.instance import Instance
from repro.core.schema import Schema
from repro.core.terms import InstanceTerm, Variable, is_null
from repro.exceptions import DependencyError, SchemaError

__all__ = ["ConjunctiveQuery", "UnionOfConjunctiveQueries"]


@dataclass(frozen=True)
class ConjunctiveQuery:
    """A conjunctive query ``name(free) :- body``.

    ``free`` lists the answer variables; a query with no free variables is
    Boolean.  Every free variable must occur in the body.
    """

    body: tuple[Atom, ...]
    free: tuple[Variable, ...]
    name: str = field(default="q", compare=False)

    def __init__(self, body: Sequence[Atom], free: Sequence[Variable] = (), name: str = "q"):
        if not body:
            raise DependencyError("a conjunctive query must have a non-empty body")
        body = tuple(body)
        body_variables: set[Variable] = set()
        for atom in body:
            body_variables |= atom.variables()
        for variable in free:
            if variable not in body_variables:
                raise DependencyError(
                    f"free variable {variable} does not occur in the query body"
                )
        object.__setattr__(self, "body", body)
        object.__setattr__(self, "free", tuple(free))
        object.__setattr__(self, "name", name)

    @property
    def is_boolean(self) -> bool:
        """True if the query has no free variables."""
        return not self.free

    @property
    def arity(self) -> int:
        """Number of answer positions."""
        return len(self.free)

    def validate(self, schema: Schema) -> None:
        """Check that every body atom is over ``schema``."""
        for atom in self.body:
            if atom.relation not in schema:
                raise SchemaError(f"query atom {atom} is not over the expected schema")
            schema.validate_atom(atom)

    def iter_answers(
        self, instance: Instance, allow_nulls: bool = False
    ) -> Iterator[tuple[InstanceTerm, ...]]:
        """Yield the answer tuples of this query on ``instance``.

        Duplicate answers (from distinct homomorphisms) are suppressed.
        Answers containing nulls are dropped unless ``allow_nulls`` is set.
        """
        seen: set[tuple[InstanceTerm, ...]] = set()
        for assignment in iter_homomorphisms(self.body, instance):
            answer = tuple(assignment[variable] for variable in self.free)
            if not allow_nulls and any(is_null(value) for value in answer):
                continue
            if answer not in seen:
                seen.add(answer)
                yield answer

    def answers(
        self, instance: Instance, allow_nulls: bool = False
    ) -> set[tuple[InstanceTerm, ...]]:
        """Return the set of answers of this query on ``instance``."""
        return set(self.iter_answers(instance, allow_nulls=allow_nulls))

    def holds(self, instance: Instance, answer: tuple[InstanceTerm, ...] = ()) -> bool:
        """Return True if ``answer`` is an answer of the query on ``instance``.

        For a Boolean query (empty ``answer``) this is query satisfaction.
        """
        if len(answer) != len(self.free):
            raise DependencyError(
                f"answer {answer} has arity {len(answer)}, query expects {len(self.free)}"
            )
        partial = dict(zip(self.free, answer))
        for _assignment in iter_homomorphisms(self.body, instance, partial):
            return True
        return False

    def canonical_instance(self) -> tuple[Instance, tuple[InstanceTerm, ...]]:
        """Freeze the query into its canonical instance.

        Free variables become constants tagged with the variable name;
        existential variables become labeled nulls.  Returns the instance
        together with the frozen answer tuple.  This is the classical
        device behind the Chandra–Merlin containment test.
        """
        from repro.core.terms import Constant, Null

        frozen: dict[Variable, InstanceTerm] = {}
        for variable in self.free:
            frozen[variable] = Constant(f"?{variable.name}")
        next_label = 0
        for atom in self.body:
            for variable in sorted(atom.variables(), key=lambda v: v.name):
                if variable not in frozen:
                    frozen[variable] = Null(next_label, hint=variable.name)
                    next_label += 1
        instance = Instance()
        for atom in self.body:
            instance.add(atom.substitute(frozen).to_fact())  # type: ignore[arg-type]
        answer = tuple(frozen[variable] for variable in self.free)
        return instance, answer

    def contained_in(self, other: "ConjunctiveQuery") -> bool:
        """Chandra–Merlin containment test: is ``self ⊆ other``?

        ``self ⊆ other`` iff ``other`` has the frozen answer of ``self``
        among its answers on the canonical instance of ``self``.  Queries
        must have the same arity.
        """
        if self.arity != other.arity:
            raise DependencyError(
                f"containment requires equal arities, got {self.arity} and "
                f"{other.arity}"
            )
        instance, answer = self.canonical_instance()
        partial = dict(zip(other.free, answer))
        for _assignment in iter_homomorphisms(other.body, instance, partial):
            return True
        return False

    def equivalent_to(self, other: "ConjunctiveQuery") -> bool:
        """Semantic equivalence: mutual containment."""
        return self.contained_in(other) and other.contained_in(self)

    def minimize(self) -> "ConjunctiveQuery":
        """Return an equivalent query with a minimal number of atoms.

        Computes the core of the canonical instance (protecting nothing —
        free variables are frozen to constants, so they survive any
        retraction) and reads the query back off the surviving facts.
        The result is the classical CQ minimization: unique up to variable
        renaming.
        """
        from repro.core.cores import core as core_of
        from repro.core.terms import Constant, Null

        instance, _answer = self.canonical_instance()
        minimized = core_of(instance)

        def thaw(value) -> "Variable | Constant":
            if isinstance(value, Constant) and isinstance(value.value, str) and \
                    value.value.startswith("?"):
                return Variable(value.value[1:])
            if isinstance(value, Null):
                return Variable(value.hint or f"v{value.label}")
            return value

        atoms = [
            Atom(fact.relation, [thaw(value) for value in fact.args])
            for fact in minimized
        ]
        # Deterministic atom order for stable output.
        atoms.sort(key=str)
        return ConjunctiveQuery(atoms, self.free, name=self.name)

    def __str__(self) -> str:
        body = ", ".join(str(atom) for atom in self.body)
        free = ", ".join(str(variable) for variable in self.free)
        return f"{self.name}({free}) :- {body}"

    def __repr__(self) -> str:
        return f"ConjunctiveQuery({self})"


@dataclass(frozen=True)
class UnionOfConjunctiveQueries:
    """A union of conjunctive queries of identical arity.

    UCQs are the monotone query class highlighted by Theorem 2.
    """

    disjuncts: tuple[ConjunctiveQuery, ...]
    name: str = field(default="q", compare=False)

    def __init__(self, disjuncts: Sequence[ConjunctiveQuery], name: str = "q"):
        if not disjuncts:
            raise DependencyError("a UCQ must have at least one disjunct")
        arities = {query.arity for query in disjuncts}
        if len(arities) != 1:
            raise DependencyError(f"UCQ disjuncts have mixed arities {sorted(arities)}")
        object.__setattr__(self, "disjuncts", tuple(disjuncts))
        object.__setattr__(self, "name", name)

    @property
    def arity(self) -> int:
        """Number of answer positions (shared by all disjuncts)."""
        return self.disjuncts[0].arity

    @property
    def is_boolean(self) -> bool:
        """True if the UCQ has no free variables."""
        return self.arity == 0

    def validate(self, schema: Schema) -> None:
        """Check every disjunct against ``schema``."""
        for query in self.disjuncts:
            query.validate(schema)

    def answers(
        self, instance: Instance, allow_nulls: bool = False
    ) -> set[tuple[InstanceTerm, ...]]:
        """Return the union of the disjuncts' answers on ``instance``."""
        result: set[tuple[InstanceTerm, ...]] = set()
        for query in self.disjuncts:
            result |= query.answers(instance, allow_nulls=allow_nulls)
        return result

    def holds(self, instance: Instance, answer: tuple[InstanceTerm, ...] = ()) -> bool:
        """Return True if some disjunct accepts ``answer`` on ``instance``."""
        return any(query.holds(instance, answer) for query in self.disjuncts)

    def __str__(self) -> str:
        return " ∪ ".join(str(query) for query in self.disjuncts)

    def __repr__(self) -> str:
        return f"UnionOfConjunctiveQueries({self})"
