"""Terms: constants, labeled nulls, and variables.

The paper's data model distinguishes three kinds of values:

* **constants** (``Const`` in the paper) — ordinary database values;
* **labeled nulls** — placeholder values created by the chase to witness
  existentially quantified variables; two nulls with different labels are
  distinct values, and a null may later be identified with a constant or
  another null by an egd chase step;
* **variables** — which occur only inside dependencies and queries, never
  inside instances.

All three are immutable and hashable, so they can live inside frozen facts
and be used as dictionary keys during homomorphism search.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass
from typing import Iterable, Union

__all__ = [
    "Constant",
    "Null",
    "Variable",
    "Term",
    "InstanceTerm",
    "NullFactory",
    "is_constant",
    "is_null",
    "is_variable",
    "term_sort_key",
]


@dataclass(frozen=True, slots=True, order=True)
class Constant:
    """An ordinary database constant wrapping a Python value.

    The wrapped value must itself be hashable (strings and integers are the
    common cases).  Constants compare by wrapped value.
    """

    value: Union[str, int, float, bool]

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return self.value
        return repr(self.value)

    def __repr__(self) -> str:
        return f"Constant({self.value!r})"


@dataclass(frozen=True, slots=True, order=True)
class Null:
    """A labeled null, identified by an integer label.

    Nulls are created by :class:`NullFactory` during the chase.  The
    optional ``hint`` records the variable the null witnessed, which makes
    chase output far easier to read; it does not participate in equality.
    """

    label: int
    hint: str = ""

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Null):
            return NotImplemented
        return self.label == other.label

    def __hash__(self) -> int:
        return hash(("Null", self.label))

    def __str__(self) -> str:
        if self.hint:
            return f"_{self.hint}{self.label}"
        return f"_n{self.label}"

    def __repr__(self) -> str:
        return f"Null({self.label}, {self.hint!r})" if self.hint else f"Null({self.label})"


@dataclass(frozen=True, slots=True, order=True)
class Variable:
    """A variable, used only in dependencies and queries."""

    name: str

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"Variable({self.name!r})"


#: Any term that may occur in an atom of a dependency or query.
Term = Union[Constant, Null, Variable]

#: Any term that may occur in an instance fact (no variables).
InstanceTerm = Union[Constant, Null]


def is_constant(term: object) -> bool:
    """Return True if ``term`` is a :class:`Constant`."""
    return isinstance(term, Constant)


def is_null(term: object) -> bool:
    """Return True if ``term`` is a :class:`Null`."""
    return isinstance(term, Null)


def is_variable(term: object) -> bool:
    """Return True if ``term`` is a :class:`Variable`."""
    return isinstance(term, Variable)


def term_sort_key(term: Term) -> tuple[int, str, str]:
    """A total order over heterogeneous terms, for deterministic output.

    Constants sort first (by type name, then rendered value), then nulls
    (by label), then variables (by name).  Needed because constants may
    wrap values of different Python types, which are not mutually
    comparable.
    """
    if isinstance(term, Constant):
        return (0, type(term.value).__name__, str(term.value))
    if isinstance(term, Null):
        return (1, "null", f"{term.label:012d}")
    return (2, "variable", term.name)


class NullFactory:
    """A thread-safe generator of fresh labeled nulls.

    A single factory should be used per chase run so that every null it
    hands out is globally fresh within that run.  ``start`` may be used to
    continue labeling above the nulls already present in an input instance.
    """

    def __init__(self, start: int = 0):
        self._counter = itertools.count(start)
        self._lock = threading.Lock()

    def fresh(self, hint: str = "") -> Null:
        """Return a new null with a label never handed out before."""
        with self._lock:
            label = next(self._counter)
        return Null(label, hint)

    @classmethod
    def above(cls, nulls: Iterable[Null]) -> "NullFactory":
        """Return a factory whose labels are strictly above every given null."""
        highest = max((null.label for null in nulls), default=-1)
        return cls(start=highest + 1)
