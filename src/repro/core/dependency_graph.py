"""Relation-level dependency graph (Section 3.2 discussion).

Besides the position-level graph of Definition 5, the paper discusses the
*dependency graph of a PDMS* from Halevy et al.: nodes are the relations of
the peers, with an edge from ``P`` to ``R`` whenever an inclusion mapping
has ``P`` on its left-hand side and ``R`` on its right-hand side.  For a
PDE setting, the inclusion mappings are the tgds of ``Σ_st ∪ Σ_ts ∪ Σ_t``.

The paper's Theorem 3 shows that acyclicity of this graph does *not*
guarantee tractability for PDE (unlike PDMS with pure containment storage
descriptions) — the reduction setting used there is acyclic.  The library
exposes the graph so that tests and benchmarks can verify that claim.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.dependencies import EGD, TGD, Dependency, DisjunctiveTGD

__all__ = ["relation_dependency_graph", "is_acyclic"]


def relation_dependency_graph(
    dependencies: Iterable[Dependency],
) -> dict[str, set[str]]:
    """Build the relation-level dependency graph of a set of dependencies.

    Edges run from every body relation to every head relation of each tgd
    (and of each disjunct of a disjunctive tgd).  Egds contribute their body
    relations as isolated nodes only.
    """
    graph: dict[str, set[str]] = {}
    for dependency in dependencies:
        if isinstance(dependency, TGD):
            heads = [atom.relation for atom in dependency.head]
        elif isinstance(dependency, DisjunctiveTGD):
            heads = [
                atom.relation
                for disjunct in dependency.disjuncts
                for atom in disjunct
            ]
        elif isinstance(dependency, EGD):
            for atom in dependency.body:
                graph.setdefault(atom.relation, set())
            continue
        else:
            raise TypeError(f"unknown dependency type {type(dependency)!r}")
        for atom in dependency.body:
            targets = graph.setdefault(atom.relation, set())
            targets.update(heads)
        for head in heads:
            graph.setdefault(head, set())
    return graph


def is_acyclic(graph: dict[str, set[str]]) -> bool:
    """Return True if the directed graph has no cycle (self-loops count)."""
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {node: WHITE for node in graph}

    def visit(node: str) -> bool:
        color[node] = GRAY
        for successor in graph.get(node, ()):
            state = color.get(successor, WHITE)
            if state == GRAY:
                return False
            if state == WHITE and not visit(successor):
                return False
        color[node] = BLACK
        return True

    for node in graph:
        if color[node] == WHITE and not visit(node):
            return False
    return True
