"""The chase procedure.

Implements two procedures:

* the **standard (restricted) chase** with tgds and egds, following the
  definitions of Fagin, Kolaitis, Miller and Popa that the paper builds on:
  a tgd fires on a body homomorphism that cannot be extended to the head,
  creating fresh labeled nulls for the existential variables; an egd merges
  a null with another value, or *fails* (``⊥``) when it would equate two
  distinct constants;
* the **solution-aware chase** (Definitions 6 and 7 of the paper), which
  witnesses existential variables with values drawn from a given instance
  ``K'`` that contains the chased instance and satisfies the tgds.  Lemma 1
  shows its sequences have polynomial length for weakly acyclic sets; the
  library uses it to build small solutions (Lemma 2).

Both record per-step provenance, which the tests use to check the paper's
length bounds and which makes chase output debuggable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

if TYPE_CHECKING:  # import-light: repro.runtime pulls repro.io at import time
    from repro.runtime.budget import Budget
    from repro.obs.tracer import Span, Tracer

from repro.core.atoms import Atom, Fact
from repro.core.dependencies import EGD, TGD, Dependency
from repro.core.homomorphism import find_homomorphism, iter_homomorphisms
from repro.core.instance import Instance
from repro.core.terms import (
    Constant,
    InstanceTerm,
    NullFactory,
    Variable,
    is_null,
    is_variable,
)
from repro.exceptions import ChaseFailure, ChaseNonTermination, DependencyError
from repro.obs.tracer import NULL_TRACER

__all__ = ["ChaseStep", "ChaseResult", "chase", "solution_aware_chase", "satisfies"]

#: Default ceiling on chase steps; generous for every workload in this repo.
DEFAULT_MAX_STEPS = 200_000


@dataclass(frozen=True)
class ChaseStep:
    """Provenance for one chase step."""

    dependency: Dependency
    assignment: Mapping[Variable, InstanceTerm]
    added_facts: tuple[Fact, ...] = ()
    merged: tuple[InstanceTerm, InstanceTerm] | None = None

    def __str__(self) -> str:
        if self.merged is not None:
            kept, dropped = self.merged
            return f"egd step: {dropped} := {kept} via {self.dependency}"
        added = ", ".join(str(fact) for fact in self.added_facts)
        return f"tgd step: added {{{added}}} via {self.dependency}"


@dataclass
class ChaseResult:
    """The outcome of a chase run.

    Attributes:
        instance: the final instance (the chased fixpoint).
        steps: provenance, one entry per applied step.
        rounds: number of full passes over the dependency set.
    """

    instance: Instance
    steps: list[ChaseStep] = field(default_factory=list)
    rounds: int = 0

    @property
    def step_count(self) -> int:
        """Number of chase steps applied."""
        return len(self.steps)

    def new_facts(self, original: Instance) -> Instance:
        """Return the facts the chase added relative to ``original``."""
        delta = Instance(schema=self.instance.schema)
        for fact in self.instance:
            if fact not in original:
                delta.add(fact)
        return delta

    def provenance_of(self, fact: Fact) -> ChaseStep | None:
        """Return the step that introduced ``fact``, or None.

        None means the fact was already present in the chased input (or is
        not a fact of the result at all).  Facts rewritten by egd merges
        are traced to the step that produced their pre-merge original.
        """
        # Walk the egd merges backwards to recover the fact's pre-merge
        # shapes, then find the first tgd step that added any of them.
        shapes = {fact.args}
        for step in reversed(self.steps):
            if step.merged is not None:
                kept, dropped = step.merged
                expanded = set()
                for shape in shapes:
                    expanded.add(shape)
                    if kept in shape:
                        variants = [
                            tuple(
                                dropped if (value == kept and flip & (1 << i)) else value
                                for i, value in enumerate(shape)
                            )
                            for flip in range(1 << len(shape))
                        ]
                        expanded.update(variants)
                shapes = expanded
        for step in self.steps:
            for added in step.added_facts:
                if added.relation == fact.relation and added.args in shapes:
                    return step
        return None


def _frontier_assignment(
    tgd: TGD, assignment: Mapping[Variable, InstanceTerm]
) -> dict[Variable, InstanceTerm]:
    """Restrict a body assignment to the variables exported to the head."""
    frontier = tgd.frontier_variables()
    return {variable: assignment[variable] for variable in frontier}


def _head_satisfied(
    instance: Instance, tgd: TGD, assignment: Mapping[Variable, InstanceTerm]
) -> bool:
    """Is the head of ``tgd`` witnessed in ``instance`` under ``assignment``?

    Fast path for full tgds: the head is fully determined, so the test is
    plain fact membership instead of a homomorphism search.
    """
    if tgd.is_full():
        for atom in tgd.head:
            args = tuple(
                assignment[arg] if is_variable(arg) else arg for arg in atom.args
            )
            if args not in instance.rows(atom.relation):
                return False
        return True
    frontier = _frontier_assignment(tgd, assignment)
    return find_homomorphism(tgd.head, instance, frontier) is not None


def _instantiate_head(
    head: Sequence[Atom], assignment: Mapping[Variable, InstanceTerm]
) -> list[Fact]:
    """Ground the head atoms under a total assignment of their variables."""
    facts = []
    for atom in head:
        args: list[InstanceTerm] = []
        for term in atom.args:
            if is_variable(term):
                args.append(assignment[term])  # type: ignore[index]
            else:
                args.append(term)  # type: ignore[arg-type]
        facts.append(Fact(atom.relation, args))
    return facts


def _apply_tgd_step(
    instance: Instance,
    tgd: TGD,
    assignment: Mapping[Variable, InstanceTerm],
    null_factory: NullFactory,
) -> ChaseStep:
    """Fire ``tgd`` under ``assignment``, minting fresh nulls for existentials."""
    total: dict[Variable, InstanceTerm] = dict(assignment)
    for variable in sorted(tgd.existential_variables(), key=lambda v: v.name):
        total[variable] = null_factory.fresh(hint=variable.name)
    facts = _instantiate_head(tgd.head, total)
    added = tuple(fact for fact in facts if instance.add(fact))
    return ChaseStep(dependency=tgd, assignment=dict(assignment), added_facts=added)


def _apply_egd_step(
    instance: Instance,
    egd: EGD,
    assignment: Mapping[Variable, InstanceTerm],
) -> tuple[Instance, ChaseStep]:
    """Fire ``egd``: merge the two values or raise :class:`ChaseFailure`."""
    left = assignment[egd.left]
    right = assignment[egd.right]
    if isinstance(left, Constant) and isinstance(right, Constant):
        raise ChaseFailure(
            f"egd {egd} requires {left} = {right}, but both are distinct constants"
        )
    # Keep the constant if there is one; otherwise keep the lower-labeled null.
    if isinstance(left, Constant):
        kept, dropped = left, right
    elif isinstance(right, Constant):
        kept, dropped = right, left
    else:
        kept, dropped = sorted((left, right))  # type: ignore[type-var]
    merged = instance.rename({dropped: kept})
    step = ChaseStep(
        dependency=egd, assignment=dict(assignment), merged=(kept, dropped)
    )
    return merged, step


def _find_applicable_tgd_assignment(
    instance: Instance, tgd: TGD
) -> dict[Variable, InstanceTerm] | None:
    """Return a body homomorphism with no head extension, or None."""
    for assignment in iter_homomorphisms(tgd.body, instance):
        if not _head_satisfied(instance, tgd, assignment):
            return assignment
    return None


def _find_applicable_egd_assignment(
    instance: Instance, egd: EGD
) -> dict[Variable, InstanceTerm] | None:
    """Return a body homomorphism violating the equality, or None."""
    for assignment in iter_homomorphisms(egd.body, instance):
        if assignment[egd.left] != assignment[egd.right]:
            return assignment
    return None


def _note_chase_span(span: "Span", steps: Sequence[ChaseStep], rounds: int) -> None:
    """Fold chase provenance into a span: per-dependency fires, facts, merges.

    Runs once per chase, after the fixpoint, so tracing adds no work to
    the chase loop itself.  Fire counts are grouped by dependency object
    identity and rendered once per unique dependency.
    """
    fires: dict[int, int] = {}
    rendered: dict[int, str] = {}
    facts_created = 0
    egd_merges = 0
    for step in steps:
        key = id(step.dependency)
        fires[key] = fires.get(key, 0) + 1
        if key not in rendered:
            rendered[key] = str(step.dependency)
        if step.merged is not None:
            egd_merges += 1
        else:
            facts_created += len(step.added_facts)
    span.set("rounds", rounds)
    span.set("fires", {rendered[key]: count for key, count in fires.items()})
    span.add("steps", len(steps))
    span.add("facts_created", facts_created)
    span.add("egd_merges", egd_merges)


def chase(
    instance: Instance,
    dependencies: Iterable[Dependency],
    null_factory: NullFactory | None = None,
    max_steps: int = DEFAULT_MAX_STEPS,
    budget: Budget | None = None,
    tracer: "Tracer | None" = None,
) -> ChaseResult:
    """Chase ``instance`` with ``dependencies`` to a fixpoint.

    The input instance is not modified.  Dependencies may be tgds and egds
    (disjunctive tgds cannot be chased deterministically and are rejected).

    Args:
        instance: the instance to chase.
        dependencies: tgds and egds over the instance's schema (or over a
            combined schema, for source-to-target / target-to-source tgds).
        null_factory: source of fresh nulls; defaults to a factory labeling
            above every null already in ``instance``.
        max_steps: hard budget guarding against non-terminating sets.
        budget: optional :class:`repro.runtime.Budget`; charged one
            chase step per applied step and one fact per added fact, with
            deadline/cancellation checkpoints between dependency passes.
        tracer: optional :class:`repro.obs.Tracer`; records one ``chase``
            span whose counters (steps, facts created, egd merges) and
            per-dependency fire counts are derived from the provenance
            after the fixpoint, so the chase loop itself is untouched.

    Returns:
        a :class:`ChaseResult` with the chased instance and provenance.

    Raises:
        ChaseFailure: if an egd step fails (the ``⊥`` outcome); this
            certifies that no solution containing the instance exists.
        ChaseNonTermination: if ``max_steps`` is exceeded.
        BudgetExceeded: if ``budget`` runs out (a cap, the deadline, or
            cancellation); governed solver entry points convert this into
            a degraded result when the budget is not strict.
    """
    dependencies = list(dependencies)
    for dependency in dependencies:
        if not isinstance(dependency, (TGD, EGD)):
            raise DependencyError(
                f"cannot chase non-deterministic dependency {dependency}"
            )
    if null_factory is None:
        null_factory = NullFactory.above(instance.nulls())
    if tracer is None:
        tracer = NULL_TRACER

    with tracer.span("chase", dependencies=len(dependencies)) as span:
        current = instance.copy()
        steps: list[ChaseStep] = []
        rounds = 0
        changed = True
        while changed:
            changed = False
            rounds += 1
            for dependency in dependencies:
                if budget is not None:
                    budget.checkpoint()
                if isinstance(dependency, TGD):
                    # Enumerate all body matches against a stable snapshot,
                    # then re-check applicability just before firing each one;
                    # this keeps the restricted-chase semantics while touching
                    # each match once per round instead of re-enumerating the
                    # whole match set after every step.
                    matches = list(iter_homomorphisms(dependency.body, current))
                    for assignment in matches:
                        if len(steps) >= max_steps:
                            raise ChaseNonTermination(max_steps)
                        if _head_satisfied(current, dependency, assignment):
                            continue
                        step = _apply_tgd_step(current, dependency, assignment, null_factory)
                        steps.append(step)
                        changed = True
                        if budget is not None:
                            budget.charge_chase_step()
                            if step.added_facts:
                                budget.charge_facts(len(step.added_facts))
                else:
                    while True:
                        if len(steps) >= max_steps:
                            raise ChaseNonTermination(max_steps)
                        assignment = _find_applicable_egd_assignment(current, dependency)
                        if assignment is None:
                            break
                        current, step = _apply_egd_step(current, dependency, assignment)
                        steps.append(step)
                        changed = True
                        if budget is not None:
                            budget.charge_chase_step()
        if tracer.enabled:
            _note_chase_span(span, steps, rounds)
    return ChaseResult(instance=current, steps=steps, rounds=rounds)


def solution_aware_chase(
    instance: Instance,
    dependencies: Iterable[Dependency],
    solution: Instance,
    max_steps: int = DEFAULT_MAX_STEPS,
    tracer: "Tracer | None" = None,
) -> ChaseResult:
    """Chase ``instance`` taking existential witnesses from ``solution``.

    This is the solution-aware chase of Definitions 6 and 7: ``solution``
    must contain ``instance`` and satisfy the tgds among ``dependencies``,
    so every applicable tgd step has a witness inside ``solution``; no fresh
    nulls are ever created.  By Lemma 2, the result is a sub-instance of
    ``solution`` of size polynomial in the input.

    Raises:
        ChaseFailure: on a failing egd step, or if ``solution`` does not
            actually witness a required head (i.e. the precondition that
            ``solution`` satisfies the tgds is violated).
        ChaseNonTermination: if ``max_steps`` is exceeded.
    """
    dependencies = list(dependencies)
    if not solution.contains_instance(instance):
        raise ChaseFailure("solution-aware chase requires solution ⊇ instance")
    if tracer is None:
        tracer = NULL_TRACER

    with tracer.span(
        "solution-aware-chase", dependencies=len(dependencies)
    ) as span:
        current = instance.copy()
        steps: list[ChaseStep] = []
        rounds = 0
        changed = True
        while changed:
            changed = False
            rounds += 1
            for dependency in dependencies:
                while True:
                    if len(steps) >= max_steps:
                        raise ChaseNonTermination(max_steps)
                    if isinstance(dependency, TGD):
                        assignment = _find_applicable_tgd_assignment(current, dependency)
                        if assignment is None:
                            break
                        frontier = _frontier_assignment(dependency, assignment)
                        witness = find_homomorphism(dependency.head, solution, frontier)
                        if witness is None:
                            raise ChaseFailure(
                                f"given solution does not satisfy tgd {dependency} "
                                f"under {assignment}"
                            )
                        facts = _instantiate_head(dependency.head, witness)
                        added = tuple(fact for fact in facts if current.add(fact))
                        steps.append(
                            ChaseStep(
                                dependency=dependency,
                                assignment=dict(assignment),
                                added_facts=added,
                            )
                        )
                    elif isinstance(dependency, EGD):
                        assignment = _find_applicable_egd_assignment(current, dependency)
                        if assignment is None:
                            break
                        current, step = _apply_egd_step(current, dependency, assignment)
                        steps.append(step)
                    else:
                        raise DependencyError(
                            f"cannot chase non-deterministic dependency {dependency}"
                        )
                    changed = True
        if tracer.enabled:
            _note_chase_span(span, steps, rounds)
    return ChaseResult(instance=current, steps=steps, rounds=rounds)


def satisfies(instance: Instance, dependencies: Iterable[Dependency]) -> bool:
    """Return True if ``instance`` satisfies every dependency.

    Tgds: every body homomorphism extends to a head homomorphism.
    Egds: every body homomorphism equates the two designated variables.
    Disjunctive tgds: every body homomorphism extends into some disjunct.
    """
    for dependency in dependencies:
        if isinstance(dependency, TGD):
            for assignment in iter_homomorphisms(dependency.body, instance):
                if not _head_satisfied(instance, dependency, assignment):
                    return False
        elif isinstance(dependency, EGD):
            if _find_applicable_egd_assignment(instance, dependency) is not None:
                return False
        else:
            body_vars = dependency.body_variables()
            for assignment in iter_homomorphisms(dependency.body, instance):
                exported = {
                    variable: value
                    for variable, value in assignment.items()
                    if variable in body_vars
                }
                satisfied = False
                for disjunct in dependency.disjuncts:
                    relevant = {
                        variable: value
                        for variable, value in exported.items()
                        if any(variable in atom.variables() for atom in disjunct)
                    }
                    if find_homomorphism(list(disjunct), instance, relevant) is not None:
                        satisfied = True
                        break
                if not satisfied:
                    return False
    return True
