"""The chase procedure.

Implements two procedures:

* the **standard (restricted) chase** with tgds and egds, following the
  definitions of Fagin, Kolaitis, Miller and Popa that the paper builds on:
  a tgd fires on a body homomorphism that cannot be extended to the head,
  creating fresh labeled nulls for the existential variables; an egd merges
  a null with another value, or *fails* (``⊥``) when it would equate two
  distinct constants;
* the **solution-aware chase** (Definitions 6 and 7 of the paper), which
  witnesses existential variables with values drawn from a given instance
  ``K'`` that contains the chased instance and satisfies the tgds.  Lemma 1
  shows its sequences have polynomial length for weakly acyclic sets; the
  library uses it to build small solutions (Lemma 2).

Both record per-step provenance, which the tests use to check the paper's
length bounds and which makes chase output debuggable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

if TYPE_CHECKING:  # import-light: repro.runtime pulls repro.io at import time
    from repro.runtime.budget import Budget
    from repro.obs.tracer import Span, Tracer

from repro.core.atoms import Atom, Fact
from repro.core.dependencies import EGD, TGD, Dependency
from repro.core.homomorphism import find_homomorphism, iter_homomorphisms
from repro.core.instance import Instance
from repro.core.terms import (
    Constant,
    InstanceTerm,
    NullFactory,
    Variable,
    is_null,
    is_variable,
)
from repro.exceptions import (
    ChaseFailure,
    ChaseNonTermination,
    DependencyError,
    IncrementalChaseUnsupported,
)
from repro.obs.tracer import NULL_TRACER

__all__ = [
    "ChaseStep",
    "ChaseResult",
    "chase",
    "chase_incremental",
    "solution_aware_chase",
    "satisfies",
]

#: Default ceiling on chase steps; generous for every workload in this repo.
DEFAULT_MAX_STEPS = 200_000


@dataclass(frozen=True)
class ChaseStep:
    """Provenance for one chase step."""

    dependency: Dependency
    assignment: Mapping[Variable, InstanceTerm]
    added_facts: tuple[Fact, ...] = ()
    merged: tuple[InstanceTerm, InstanceTerm] | None = None

    def __str__(self) -> str:
        if self.merged is not None:
            kept, dropped = self.merged
            return f"egd step: {dropped} := {kept} via {self.dependency}"
        added = ", ".join(str(fact) for fact in self.added_facts)
        return f"tgd step: added {{{added}}} via {self.dependency}"


@dataclass
class ChaseResult:
    """The outcome of a chase run.

    Attributes:
        instance: the final instance (the chased fixpoint).
        steps: provenance, one entry per applied step.
        rounds: number of full passes over the dependency set.
        incremental: True when produced by :func:`chase_incremental`.
        retracted: facts of the prior result withdrawn by the incremental
            run's provenance-guided retraction (net of re-derivations).
        delta_added: facts of this result absent from the prior result
            (incremental runs only; includes both delta inputs and facts
            derived from them).
        refired: number of chase steps the incremental run applied.
    """

    instance: Instance
    steps: list[ChaseStep] = field(default_factory=list)
    rounds: int = 0
    incremental: bool = field(default=False, compare=False)
    retracted: tuple[Fact, ...] = field(default=(), compare=False)
    delta_added: tuple[Fact, ...] = field(default=(), compare=False)
    refired: int = field(default=0, compare=False)
    #: Memoized provenance support index (built lazily by
    #: :func:`chase_incremental`; transferred to the successor result).
    support: "_SupportIndex | None" = field(
        default=None, repr=False, compare=False
    )

    @property
    def step_count(self) -> int:
        """Number of chase steps applied."""
        return len(self.steps)

    def new_facts(self, original: Instance) -> Instance:
        """Return the facts the chase added relative to ``original``."""
        delta = Instance(schema=self.instance.schema)
        for fact in self.instance:
            if fact not in original:
                delta.add(fact)
        return delta

    def provenance_of(self, fact: Fact) -> ChaseStep | None:
        """Return the step that introduced ``fact``, or None.

        None means the fact was already present in the chased input (or is
        not a fact of the result at all).  Facts rewritten by egd merges
        are traced to the step that produced their pre-merge original.
        """
        # Walk the egd merges backwards to recover the fact's pre-merge
        # shapes, then find the first tgd step that added any of them.
        shapes = {fact.args}
        for step in reversed(self.steps):
            if step.merged is not None:
                kept, dropped = step.merged
                expanded = set()
                for shape in shapes:
                    expanded.add(shape)
                    if kept in shape:
                        variants = [
                            tuple(
                                dropped if (value == kept and flip & (1 << i)) else value
                                for i, value in enumerate(shape)
                            )
                            for flip in range(1 << len(shape))
                        ]
                        expanded.update(variants)
                shapes = expanded
        for step in self.steps:
            for added in step.added_facts:
                if added.relation == fact.relation and added.args in shapes:
                    return step
        return None


def _frontier_assignment(
    tgd: TGD, assignment: Mapping[Variable, InstanceTerm]
) -> dict[Variable, InstanceTerm]:
    """Restrict a body assignment to the variables exported to the head."""
    frontier = tgd.frontier_variables()
    return {variable: assignment[variable] for variable in frontier}


def _head_satisfied(
    instance: Instance, tgd: TGD, assignment: Mapping[Variable, InstanceTerm]
) -> bool:
    """Is the head of ``tgd`` witnessed in ``instance`` under ``assignment``?

    Fast path for full tgds: the head is fully determined, so the test is
    plain fact membership instead of a homomorphism search.
    """
    if tgd.is_full():
        for atom in tgd.head:
            args = tuple(
                assignment[arg] if is_variable(arg) else arg for arg in atom.args
            )
            if args not in instance.rows(atom.relation):
                return False
        return True
    frontier = _frontier_assignment(tgd, assignment)
    return find_homomorphism(tgd.head, instance, frontier) is not None


def _instantiate_head(
    head: Sequence[Atom], assignment: Mapping[Variable, InstanceTerm]
) -> list[Fact]:
    """Ground the head atoms under a total assignment of their variables."""
    facts = []
    for atom in head:
        args: list[InstanceTerm] = []
        for term in atom.args:
            if is_variable(term):
                args.append(assignment[term])  # type: ignore[index]
            else:
                args.append(term)  # type: ignore[arg-type]
        facts.append(Fact(atom.relation, args))
    return facts


def _apply_tgd_step(
    instance: Instance,
    tgd: TGD,
    assignment: Mapping[Variable, InstanceTerm],
    null_factory: NullFactory,
) -> ChaseStep:
    """Fire ``tgd`` under ``assignment``, minting fresh nulls for existentials."""
    total: dict[Variable, InstanceTerm] = dict(assignment)
    for variable in sorted(tgd.existential_variables(), key=lambda v: v.name):
        total[variable] = null_factory.fresh(hint=variable.name)
    facts = _instantiate_head(tgd.head, total)
    added = tuple(fact for fact in facts if instance.add(fact))
    return ChaseStep(dependency=tgd, assignment=dict(assignment), added_facts=added)


def _apply_egd_step(
    instance: Instance,
    egd: EGD,
    assignment: Mapping[Variable, InstanceTerm],
) -> tuple[Instance, ChaseStep]:
    """Fire ``egd``: merge the two values or raise :class:`ChaseFailure`."""
    left = assignment[egd.left]
    right = assignment[egd.right]
    if isinstance(left, Constant) and isinstance(right, Constant):
        raise ChaseFailure(
            f"egd {egd} requires {left} = {right}, but both are distinct constants"
        )
    # Keep the constant if there is one; otherwise keep the lower-labeled null.
    if isinstance(left, Constant):
        kept, dropped = left, right
    elif isinstance(right, Constant):
        kept, dropped = right, left
    else:
        kept, dropped = sorted((left, right))  # type: ignore[type-var]
    merged = instance.rename({dropped: kept})
    step = ChaseStep(
        dependency=egd, assignment=dict(assignment), merged=(kept, dropped)
    )
    return merged, step


def _find_applicable_tgd_assignment(
    instance: Instance, tgd: TGD
) -> dict[Variable, InstanceTerm] | None:
    """Return a body homomorphism with no head extension, or None."""
    for assignment in iter_homomorphisms(tgd.body, instance):
        if not _head_satisfied(instance, tgd, assignment):
            return assignment
    return None


def _find_applicable_egd_assignment(
    instance: Instance, egd: EGD
) -> dict[Variable, InstanceTerm] | None:
    """Return a body homomorphism violating the equality, or None."""
    for assignment in iter_homomorphisms(egd.body, instance):
        if assignment[egd.left] != assignment[egd.right]:
            return assignment
    return None


def _note_chase_span(span: "Span", steps: Sequence[ChaseStep], rounds: int) -> None:
    """Fold chase provenance into a span: per-dependency fires, facts, merges.

    Runs once per chase, after the fixpoint, so tracing adds no work to
    the chase loop itself.  Fire counts are grouped by dependency object
    identity and rendered once per unique dependency.
    """
    fires: dict[int, int] = {}
    rendered: dict[int, str] = {}
    facts_created = 0
    egd_merges = 0
    for step in steps:
        key = id(step.dependency)
        fires[key] = fires.get(key, 0) + 1
        if key not in rendered:
            rendered[key] = str(step.dependency)
        if step.merged is not None:
            egd_merges += 1
        else:
            facts_created += len(step.added_facts)
    span.set("rounds", rounds)
    span.set("fires", {rendered[key]: count for key, count in fires.items()})
    span.add("steps", len(steps))
    span.add("facts_created", facts_created)
    span.add("egd_merges", egd_merges)


def chase(
    instance: Instance,
    dependencies: Iterable[Dependency],
    null_factory: NullFactory | None = None,
    max_steps: int = DEFAULT_MAX_STEPS,
    budget: Budget | None = None,
    tracer: "Tracer | None" = None,
) -> ChaseResult:
    """Chase ``instance`` with ``dependencies`` to a fixpoint.

    The input instance is not modified.  Dependencies may be tgds and egds
    (disjunctive tgds cannot be chased deterministically and are rejected).

    Args:
        instance: the instance to chase.
        dependencies: tgds and egds over the instance's schema (or over a
            combined schema, for source-to-target / target-to-source tgds).
        null_factory: source of fresh nulls; defaults to a factory labeling
            above every null already in ``instance``.
        max_steps: hard budget guarding against non-terminating sets.
        budget: optional :class:`repro.runtime.Budget`; charged one
            chase step per applied step and one fact per added fact, with
            deadline/cancellation checkpoints between dependency passes.
        tracer: optional :class:`repro.obs.Tracer`; records one ``chase``
            span whose counters (steps, facts created, egd merges) and
            per-dependency fire counts are derived from the provenance
            after the fixpoint, so the chase loop itself is untouched.

    Returns:
        a :class:`ChaseResult` with the chased instance and provenance.

    Raises:
        ChaseFailure: if an egd step fails (the ``⊥`` outcome); this
            certifies that no solution containing the instance exists.
        ChaseNonTermination: if ``max_steps`` is exceeded.
        BudgetExceeded: if ``budget`` runs out (a cap, the deadline, or
            cancellation); governed solver entry points convert this into
            a degraded result when the budget is not strict.
    """
    dependencies = list(dependencies)
    for dependency in dependencies:
        if not isinstance(dependency, (TGD, EGD)):
            raise DependencyError(
                f"cannot chase non-deterministic dependency {dependency}"
            )
    if null_factory is None:
        null_factory = NullFactory.above(instance.nulls())
    if tracer is None:
        tracer = NULL_TRACER

    with tracer.span("chase", dependencies=len(dependencies)) as span:
        current = instance.copy()
        steps: list[ChaseStep] = []
        rounds = 0
        changed = True
        while changed:
            changed = False
            rounds += 1
            for dependency in dependencies:
                if budget is not None:
                    budget.checkpoint()
                if isinstance(dependency, TGD):
                    # Enumerate all body matches against a stable snapshot,
                    # then re-check applicability just before firing each one;
                    # this keeps the restricted-chase semantics while touching
                    # each match once per round instead of re-enumerating the
                    # whole match set after every step.
                    matches = list(iter_homomorphisms(dependency.body, current))
                    for assignment in matches:
                        if len(steps) >= max_steps:
                            raise ChaseNonTermination(max_steps)
                        if _head_satisfied(current, dependency, assignment):
                            continue
                        step = _apply_tgd_step(current, dependency, assignment, null_factory)
                        steps.append(step)
                        changed = True
                        if budget is not None:
                            budget.charge_chase_step()
                            if step.added_facts:
                                budget.charge_facts(len(step.added_facts))
                else:
                    while True:
                        if len(steps) >= max_steps:
                            raise ChaseNonTermination(max_steps)
                        assignment = _find_applicable_egd_assignment(current, dependency)
                        if assignment is None:
                            break
                        current, step = _apply_egd_step(current, dependency, assignment)
                        steps.append(step)
                        changed = True
                        if budget is not None:
                            budget.charge_chase_step()
        if tracer.enabled:
            _note_chase_span(span, steps, rounds)
    return ChaseResult(instance=current, steps=steps, rounds=rounds)


# ---------------------------------------------------------------------------
# incremental (semi-naive) chase
# ---------------------------------------------------------------------------


class _SupportIndex:
    """Provenance support graph over a chase history.

    Maps every justification fact to the steps it supports (``consumers``)
    and every derived fact to the step that introduced it (``producer``),
    so provenance-guided retraction walks the dependency cone of a
    withdrawn fact instead of re-deriving the world.  The index is owned
    by exactly one :class:`ChaseResult` at a time: :func:`chase_incremental`
    takes it from the prior result, mutates it, and hands it to the
    successor — rebuilding from ``steps`` when a result has none.
    """

    __slots__ = (
        "ordered",
        "dropped",
        "by_id",
        "justification",
        "consumers",
        "producer",
    )

    def __init__(self) -> None:
        #: Steps in application order (may contain dropped entries until
        #: :meth:`live_steps` compacts; their objects stay referenced here
        #: so ``id()`` keys cannot be recycled mid-run).
        self.ordered: list[ChaseStep] = []
        self.dropped: set[int] = set()
        self.by_id: dict[int, ChaseStep] = {}
        self.justification: dict[int, tuple[Fact, ...]] = {}
        self.consumers: dict[Fact, set[int]] = {}
        self.producer: dict[Fact, int] = {}

    @classmethod
    def from_steps(cls, steps: Iterable[ChaseStep]) -> "_SupportIndex":
        index = cls()
        for step in steps:
            index.add(step)
        return index

    def add(self, step: ChaseStep) -> None:
        sid = id(step)
        self.ordered.append(step)
        self.by_id[sid] = step
        body = _instantiate_body(step.dependency, step.assignment)
        self.justification[sid] = body
        for fact in body:
            self.consumers.setdefault(fact, set()).add(sid)
        for fact in step.added_facts:
            self.producer.setdefault(fact, sid)

    def drop(self, sid: int) -> ChaseStep | None:
        step = self.by_id.pop(sid, None)
        if step is None:
            return None
        self.dropped.add(sid)
        for fact in self.justification.pop(sid, ()):
            bucket = self.consumers.get(fact)
            if bucket is not None:
                bucket.discard(sid)
                if not bucket:
                    del self.consumers[fact]
        for fact in step.added_facts:
            if self.producer.get(fact) == sid:
                del self.producer[fact]
        return step

    def live_steps(self) -> list[ChaseStep]:
        """Compact away dropped entries and return the live steps in order."""
        if self.dropped:
            self.ordered = [s for s in self.ordered if id(s) not in self.dropped]
            self.dropped = set()
        return list(self.ordered)


def _instantiate_body(
    dependency: Dependency, assignment: Mapping[Variable, InstanceTerm]
) -> tuple[Fact, ...]:
    """Ground a dependency's body atoms under a total body assignment."""
    facts = []
    for atom in dependency.body:
        args = tuple(
            assignment[term] if is_variable(term) else term for term in atom.args
        )
        facts.append(Fact(atom.relation, args))
    return tuple(facts)


def _unify_row(
    atom: Atom,
    args: Sequence[InstanceTerm],
    restrict: "frozenset[Variable] | set[Variable] | None" = None,
) -> dict[Variable, InstanceTerm] | None:
    """Match one atom against one row, returning the variable bindings.

    With ``restrict``, only variables in the set are bound (used to unify
    head atoms, whose existential variables are unconstrained); other
    positions match anything.  Returns None on a constant or repeated-
    variable mismatch.
    """
    binding: dict[Variable, InstanceTerm] = {}
    for term, value in zip(atom.args, args):
        if is_variable(term):
            if restrict is not None and term not in restrict:
                continue
            bound = binding.get(term)  # type: ignore[arg-type]
            if bound is None:
                binding[term] = value  # type: ignore[index]
            elif bound != value:
                return None
        elif term != value:
            return None
    return binding


def _check_bound_match(
    atoms: Sequence[Atom],
    instance: Instance,
    assignment: Mapping[Variable, InstanceTerm],
) -> bool:
    """Verify a *total* assignment maps every atom to a fact (no search)."""
    for atom in atoms:
        args = tuple(
            assignment[term] if is_variable(term) else term for term in atom.args
        )
        if Fact(atom.relation, args) not in instance:
            return False
    return True


def _iter_delta_assignments(
    atoms: Sequence[Atom],
    instance: Instance,
    delta_rows: Mapping[str, set],
    seen: set,
    all_vars: "frozenset[Variable] | set[Variable]",
) -> Iterable[dict[Variable, InstanceTerm]]:
    """Semi-naive body matches: some atom is unified against a delta row.

    For each body atom whose relation has delta rows, the atom is unified
    with each delta row and the remaining atoms are matched with the
    resulting bindings pre-bound, so enumeration cost scales with the
    delta, not the relation.  ``seen`` dedupes assignments across atoms,
    rows, and rounds (head satisfaction only grows during a run, so a
    once-considered assignment never needs a second look).  When one
    unification already binds every variable of the conjunction (the
    single-atom-body common case), the backtracking matcher is skipped
    entirely in favor of direct containment checks.
    """
    for atom in atoms:
        rows = delta_rows.get(atom.relation)
        if not rows:
            continue
        for args in rows:
            partial = _unify_row(atom, args)
            if partial is None:
                continue
            if len(partial) == len(all_vars):
                # ``seen`` records only *successful* matches: a failed
                # containment may succeed in a later round once a missing
                # body fact is derived, and must then be re-considered.
                key = frozenset(partial.items())
                if key in seen:
                    continue
                if _check_bound_match(atoms, instance, partial):
                    seen.add(key)
                    yield partial
                continue
            for assignment in iter_homomorphisms(atoms, instance, partial):
                key = frozenset(assignment.items())
                if key not in seen:
                    seen.add(key)
                    yield assignment


def _iter_head_removal_assignments(
    tgd: TGD,
    instance: Instance,
    removed_rows: Mapping[str, set],
    seen: set,
) -> Iterable[dict[Variable, InstanceTerm]]:
    """Body matches whose head witness may have been retracted.

    The restricted chase fires a tgd only when the head is *not* already
    witnessed, so removing facts can make old body matches applicable
    again (their witness vanished) and can strand facts that are still
    derivable (their recorded derivation was over-deleted but another
    one survives).  Both cases are found the same way: unify each head
    atom with each removed row — binding only the universal variables —
    and enumerate body matches under those bindings.
    """
    body_vars = tgd.body_variables()
    for atom in tgd.head:
        rows = removed_rows.get(atom.relation)
        if not rows:
            continue
        for args in rows:
            partial = _unify_row(atom, args, restrict=body_vars)
            if partial is None:
                continue
            if len(partial) == len(body_vars):
                key = frozenset(partial.items())
                if key in seen:
                    continue
                if _check_bound_match(tgd.body, instance, partial):
                    seen.add(key)
                    yield partial
                continue
            for assignment in iter_homomorphisms(tgd.body, instance, partial):
                key = frozenset(assignment.items())
                if key not in seen:
                    seen.add(key)
                    yield assignment


def chase_incremental(
    prior: ChaseResult,
    added: Iterable[Fact],
    withdrawn: Iterable[Fact],
    dependencies: Iterable[Dependency],
    null_factory: NullFactory | None = None,
    max_steps: int = DEFAULT_MAX_STEPS,
    budget: Budget | None = None,
    tracer: "Tracer | None" = None,
    consume: bool = False,
) -> ChaseResult:
    """Chase a base delta on top of a prior chase result (semi-naive).

    Given ``prior = chase(B, dependencies)`` and a delta turning the base
    ``B`` into ``B' = (B - withdrawn) | added``, returns a fixpoint for
    ``B'`` that is homomorphically equivalent to ``chase(B')`` — touching
    only the dependency cone of the changed facts instead of re-running
    the full match enumeration:

    * **provenance-guided retraction** (DRed-style over-deletion): derived
      facts whose recorded justification transitively involved a withdrawn
      fact are retracted by walking the provenance support graph;
    * **semi-naive re-firing**: tgd matches are enumerated only where a
      body atom touches a changed fact, or where a head witness was
      retracted — the latter also re-derives over-deleted facts that have
      a surviving alternative justification (with fresh nulls for
      existentials, hence equivalence *up to null renaming*).

    Preconditions, enforced by raising :class:`IncrementalChaseUnsupported`
    (callers fall back to the from-scratch :func:`chase`):

    * the prior history contains no egd merges (a merge rewrites facts in
      place, invalidating recorded provenance);
    * the delta does not make an egd newly applicable.

    By default ``prior`` is never semantically modified (its instance and
    steps are untouched), but its memoized provenance ``support`` index is
    transferred to the returned result; re-using ``prior`` later simply
    rebuilds the index.  With ``consume=True`` the prior's *instance* is
    also taken over and mutated in place — skipping the per-round copy on
    hot loops where the caller discards ``prior`` anyway; a consumed prior
    must not be used again.  ``prior`` must be a fixpoint (any result of
    :func:`chase` or :func:`chase_incremental` is).

    Budget and ``max_steps`` govern only the new work of this call; the
    returned result's ``retracted`` / ``delta_added`` / ``refired`` fields
    report the net effect, and a ``chase-incremental`` span records the
    same counters on ``tracer``.
    """
    dependencies = list(dependencies)
    tgds = [d for d in dependencies if isinstance(d, TGD)]
    egds = [d for d in dependencies if isinstance(d, EGD)]
    if len(tgds) + len(egds) != len(dependencies):
        raise DependencyError(
            "cannot chase non-deterministic dependencies incrementally"
        )
    if any(step.merged is not None for step in prior.steps):
        raise IncrementalChaseUnsupported(
            "prior chase history contains egd merges; re-chase from scratch"
        )
    added = list(added)
    withdrawn = list(withdrawn)
    if tracer is None:
        tracer = NULL_TRACER
    if null_factory is None:
        seeded = set(prior.instance.nulls())
        for fact in added:
            seeded.update(arg for arg in fact.args if is_null(arg))
        null_factory = NullFactory.above(seeded)

    with tracer.span(
        "chase-incremental",
        dependencies=len(dependencies),
        delta_in=len(added) + len(withdrawn),
    ) as span:
        current = prior.instance if consume else prior.instance.copy()
        index = prior.support
        prior.support = None  # ownership moves to the successor result
        if index is None:
            index = _SupportIndex.from_steps(prior.steps)
        added_set = set(added)

        # Facts arriving as *inputs* that the prior run derived lose their
        # derived status: strip them from their producing step so a later
        # withdrawal of that derivation cannot retract what is now input.
        for fact in added_set:
            sid = index.producer.get(fact)
            if sid is not None:
                step = index.by_id[sid]
                kept = tuple(g for g in step.added_facts if g != fact)
                index.drop(sid)
                if kept:
                    index.add(
                        ChaseStep(
                            dependency=step.dependency,
                            assignment=step.assignment,
                            added_facts=kept,
                        )
                    )

        # --- provenance-guided retraction (over-deletion) --------------
        removed: set[Fact] = set()
        queue: list[Fact] = []
        for fact in withdrawn:
            if fact not in current or fact in added_set:
                continue
            if fact in index.producer:
                # Derived, not input: the base never held it, so the
                # withdrawal is vacuous — the fact keeps its derivation.
                continue
            queue.append(fact)
        while queue:
            fact = queue.pop()
            if fact in removed or fact in added_set:
                continue
            removed.add(fact)
            for sid in list(index.consumers.get(fact, ())):
                step = index.drop(sid)
                if step is not None:
                    queue.extend(step.added_facts)

        removed_rows: dict[str, set] = {}
        for fact in removed:
            current.discard(fact)
            removed_rows.setdefault(fact.relation, set()).add(fact.args)

        # --- apply the input delta --------------------------------------
        delta_rows: dict[str, set] = {}
        inserted_rows: dict[str, set] = {}
        for fact in added:
            if current.add(fact):
                delta_rows.setdefault(fact.relation, set()).add(fact.args)
                inserted_rows.setdefault(fact.relation, set()).add(fact.args)

        # --- semi-naive fixpoint ----------------------------------------
        new_steps: list[ChaseStep] = []
        seen: list[set] = [set() for _ in tgds]
        body_vars = [tgd.body_variables() for tgd in tgds]
        rounds = 0
        first = True
        while True:
            rounds += 1
            next_rows: dict[str, set] = {}
            for position, tgd in enumerate(tgds):
                if budget is not None:
                    budget.checkpoint()
                # Materialize the candidate list before firing: firing
                # mutates ``current`` and the matcher must not observe it.
                matches = list(
                    _iter_delta_assignments(
                        tgd.body, current, delta_rows, seen[position],
                        body_vars[position],
                    )
                )
                if first:
                    matches.extend(
                        _iter_head_removal_assignments(
                            tgd, current, removed_rows, seen[position]
                        )
                    )
                for assignment in matches:
                    if len(new_steps) >= max_steps:
                        raise ChaseNonTermination(max_steps)
                    if _head_satisfied(current, tgd, assignment):
                        continue
                    step = _apply_tgd_step(current, tgd, assignment, null_factory)
                    new_steps.append(step)
                    index.add(step)
                    for fact in step.added_facts:
                        next_rows.setdefault(fact.relation, set()).add(fact.args)
                        inserted_rows.setdefault(fact.relation, set()).add(fact.args)
                    if budget is not None:
                        budget.charge_chase_step()
                        if step.added_facts:
                            budget.charge_facts(len(step.added_facts))
            first = False
            if not next_rows:
                break
            delta_rows = next_rows

        # --- egds: delta-restricted applicability check -----------------
        # The prior result is a fixpoint, so every egd was satisfied, and
        # removals only shrink the match set; an egd can become applicable
        # only through a match touching a fact inserted by this call.
        for egd in egds:
            if budget is not None:
                budget.checkpoint()
            seen_egd: set = set()
            for assignment in _iter_delta_assignments(
                egd.body, current, inserted_rows, seen_egd, egd.body_variables()
            ):
                if assignment[egd.left] != assignment[egd.right]:
                    raise IncrementalChaseUnsupported(
                        f"egd {egd} became applicable under the delta; "
                        "re-chase from scratch"
                    )

        # --- assemble ----------------------------------------------------
        # An inserted fact was absent when inserted, and insertion happens
        # strictly after the removal phase, so it was absent from the
        # post-removal state; it belonged to the *prior* fixpoint iff the
        # retraction removed it first.  (No reference to ``prior.instance``
        # here — under ``consume`` it aliases ``current``.)
        net_removed = tuple(fact for fact in removed if fact not in current)
        delta_added = tuple(
            fact
            for relation, rows in inserted_rows.items()
            for fact in (Fact(relation, args) for args in rows)
            if fact not in removed
        )
        if tracer.enabled:
            span.set("rounds", rounds)
            span.set("retracted", len(net_removed))
            span.set("refired", len(new_steps))
            span.set("delta_out", len(delta_added))
    return ChaseResult(
        instance=current,
        steps=index.live_steps(),
        rounds=rounds,
        incremental=True,
        retracted=net_removed,
        delta_added=delta_added,
        refired=len(new_steps),
        support=index,
    )


def solution_aware_chase(
    instance: Instance,
    dependencies: Iterable[Dependency],
    solution: Instance,
    max_steps: int = DEFAULT_MAX_STEPS,
    tracer: "Tracer | None" = None,
) -> ChaseResult:
    """Chase ``instance`` taking existential witnesses from ``solution``.

    This is the solution-aware chase of Definitions 6 and 7: ``solution``
    must contain ``instance`` and satisfy the tgds among ``dependencies``,
    so every applicable tgd step has a witness inside ``solution``; no fresh
    nulls are ever created.  By Lemma 2, the result is a sub-instance of
    ``solution`` of size polynomial in the input.

    Raises:
        ChaseFailure: on a failing egd step, or if ``solution`` does not
            actually witness a required head (i.e. the precondition that
            ``solution`` satisfies the tgds is violated).
        ChaseNonTermination: if ``max_steps`` is exceeded.
    """
    dependencies = list(dependencies)
    if not solution.contains_instance(instance):
        raise ChaseFailure("solution-aware chase requires solution ⊇ instance")
    if tracer is None:
        tracer = NULL_TRACER

    with tracer.span(
        "solution-aware-chase", dependencies=len(dependencies)
    ) as span:
        current = instance.copy()
        steps: list[ChaseStep] = []
        rounds = 0
        changed = True
        while changed:
            changed = False
            rounds += 1
            for dependency in dependencies:
                while True:
                    if len(steps) >= max_steps:
                        raise ChaseNonTermination(max_steps)
                    if isinstance(dependency, TGD):
                        assignment = _find_applicable_tgd_assignment(current, dependency)
                        if assignment is None:
                            break
                        frontier = _frontier_assignment(dependency, assignment)
                        witness = find_homomorphism(dependency.head, solution, frontier)
                        if witness is None:
                            raise ChaseFailure(
                                f"given solution does not satisfy tgd {dependency} "
                                f"under {assignment}"
                            )
                        facts = _instantiate_head(dependency.head, witness)
                        added = tuple(fact for fact in facts if current.add(fact))
                        steps.append(
                            ChaseStep(
                                dependency=dependency,
                                assignment=dict(assignment),
                                added_facts=added,
                            )
                        )
                    elif isinstance(dependency, EGD):
                        assignment = _find_applicable_egd_assignment(current, dependency)
                        if assignment is None:
                            break
                        current, step = _apply_egd_step(current, dependency, assignment)
                        steps.append(step)
                    else:
                        raise DependencyError(
                            f"cannot chase non-deterministic dependency {dependency}"
                        )
                    changed = True
        if tracer.enabled:
            _note_chase_span(span, steps, rounds)
    return ChaseResult(instance=current, steps=steps, rounds=rounds)


def satisfies(instance: Instance, dependencies: Iterable[Dependency]) -> bool:
    """Return True if ``instance`` satisfies every dependency.

    Tgds: every body homomorphism extends to a head homomorphism.
    Egds: every body homomorphism equates the two designated variables.
    Disjunctive tgds: every body homomorphism extends into some disjunct.
    """
    for dependency in dependencies:
        if isinstance(dependency, TGD):
            for assignment in iter_homomorphisms(dependency.body, instance):
                if not _head_satisfied(instance, dependency, assignment):
                    return False
        elif isinstance(dependency, EGD):
            if _find_applicable_egd_assignment(instance, dependency) is not None:
                return False
        else:
            body_vars = dependency.body_variables()
            for assignment in iter_homomorphisms(dependency.body, instance):
                exported = {
                    variable: value
                    for variable, value in assignment.items()
                    if variable in body_vars
                }
                satisfied = False
                for disjunct in dependency.disjuncts:
                    relevant = {
                        variable: value
                        for variable, value in exported.items()
                        if any(variable in atom.variables() for atom in disjunct)
                    }
                    if find_homomorphism(list(disjunct), instance, relevant) is not None:
                        satisfied = True
                        break
                if not satisfied:
                    return False
    return True
