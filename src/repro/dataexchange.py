"""Classical data exchange: the baseline the paper generalizes.

Data exchange [FKMP, ICDT 2003 — references 8 and 9 of the paper] is the
special case of peer data exchange with ``Σ_ts = ∅`` and ``J = ∅``.  Its
algorithmics are entirely different in character:

* with ``Σ_t = ∅``, a solution *always* exists (chase and done);
* with ``Σ_t`` = egds + a weakly acyclic set of tgds, existence is
  decidable in polynomial time: the chase either fails (no solution) or
  yields a *universal solution* that maps homomorphically into every
  solution;
* certain answers of unions of conjunctive queries are computed by naive
  evaluation over the universal solution.

This module implements that baseline directly so that experiments can
contrast it against the PDE solvers (the paper's Section 1/3 comparisons:
trivial vs. NP-complete existence, PTIME vs. coNP-complete certain
answers), and so the test suite can check that the PDE machinery
degenerates to data exchange when ``Σ_ts`` is dropped.
"""

from __future__ import annotations

from repro.core.chase import chase
from repro.core.instance import Instance
from repro.core.query import ConjunctiveQuery, UnionOfConjunctiveQueries
from repro.core.setting import PDESetting
from repro.core.terms import InstanceTerm
from repro.exceptions import ChaseFailure, SolverError
from repro.solver.results import CertainAnswerResult, SolveResult

__all__ = [
    "is_data_exchange_setting",
    "universal_solution",
    "exists_solution_data_exchange",
    "certain_answers_data_exchange",
]

Query = ConjunctiveQuery | UnionOfConjunctiveQueries


def is_data_exchange_setting(setting: PDESetting) -> bool:
    """True when ``setting`` is a plain data exchange setting (``Σ_ts = ∅``)."""
    return not setting.sigma_ts


def _require_data_exchange(setting: PDESetting) -> None:
    if not is_data_exchange_setting(setting):
        raise SolverError(
            "this procedure implements plain data exchange and requires "
            "Σ_ts = ∅; use repro.solver.solve for peer data exchange"
        )
    if not setting.target_tgds_weakly_acyclic():
        raise SolverError(
            "data exchange procedures require a weakly acyclic set of "
            "target tgds (the hypothesis of [FKMP])"
        )


def universal_solution(
    setting: PDESetting, source: Instance, target: Instance | None = None
) -> Instance | None:
    """Compute a universal solution by chasing, or None if the chase fails.

    The result contains labeled nulls and maps homomorphically into every
    solution for ``(source, target)``.

    Raises:
        SolverError: if the setting has target-to-source dependencies or
            non-weakly-acyclic target tgds.
    """
    _require_data_exchange(setting)
    target = target if target is not None else Instance()
    combined = setting.combine(source, target)
    try:
        result = chase(combined, [*setting.sigma_st, *setting.sigma_t])
    except ChaseFailure:
        return None
    return result.instance.restrict_to(setting.target_schema)


def exists_solution_data_exchange(
    setting: PDESetting, source: Instance, target: Instance | None = None
) -> SolveResult:
    """Polynomial-time existence test for plain data exchange.

    With ``Σ_t = ∅`` this always returns True (the paper's contrast with
    PDE, where Example 1 shows solutions can fail to exist even then).
    """
    universal = universal_solution(setting, source, target)
    if universal is None:
        return SolveResult(exists=False, method="data-exchange-chase")
    return SolveResult(
        exists=True, solution=universal, method="data-exchange-chase"
    )


def certain_answers_data_exchange(
    setting: PDESetting,
    query: Query,
    source: Instance,
    target: Instance | None = None,
) -> CertainAnswerResult:
    """Certain answers by naive evaluation over the universal solution.

    Exact for unions of conjunctive queries [FKMP]: the null-free answers
    over the universal solution are exactly the certain answers.
    """
    universal = universal_solution(setting, source, target)
    if universal is None:
        vacuous: set[tuple[InstanceTerm, ...]] = {()} if query.arity == 0 else set()
        return CertainAnswerResult(answers=vacuous, solutions_exist=False)
    if query.arity == 0:
        # A Boolean match may go through nulls; it is preserved by the
        # homomorphism into every solution, so it is certain.
        answers: set[tuple[InstanceTerm, ...]] = (
            {()} if query.holds(universal) else set()
        )
    else:
        answers = query.answers(universal, allow_nulls=False)
    return CertainAnswerResult(
        answers=answers,
        solutions_exist=True,
        stats={"universal_solution_size": len(universal)},
    )
