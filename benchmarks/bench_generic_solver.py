"""Experiments E2/E13 — Theorem 1 upper bound and Lemma 2 small solutions.

Paper claims: (E2) SOL(P) is in NP for arbitrary ``Σ_st``/``Σ_ts`` tgds
with ``Σ_t`` = egds + weakly acyclic tgds — operationally, the generic
solvers are *complete* and their certificates are polynomial; (E13,
Lemma 2) whenever a solution exists, one exists of size polynomial in
``|(I, J)|`` — here, bounded by ``|J_can|``.

The bench cross-validates the valuation search against the brute-force
oracle on a grid of tiny instances and measures minimal-solution sizes
against the Lemma 2 bound on growing inputs.
"""

from __future__ import annotations

from repro import Instance
from repro.solver import (
    ValuationSearch,
    brute_force_exists,
    minimal_solution_sizes,
    solve,
)
from repro.workloads.instances import random_source
from repro.workloads.settings import random_glav_setting, random_lav_setting


def test_np_procedure_against_oracle(benchmark, table):
    cases = []
    for seed in range(5):
        setting = random_lav_setting(
            source_relations=1, target_relations=1, st_tgds=1, ts_tgds=1, seed=seed
        )
        source = random_source(setting, domain_size=2, facts_per_relation=2, seed=seed)
        cases.append((seed, setting, source))

    def run():
        rows = []
        for seed, setting, source in cases:
            fast = solve(setting, source, Instance(), method="valuation")
            slow = brute_force_exists(setting, source, Instance())
            assert fast.exists == slow
            rows.append([seed, fast.exists, slow, fast.stats.get("nodes", 0)])
        return rows

    rows = benchmark(run)
    table(
        "E2: valuation search vs exhaustive oracle (tiny random settings)",
        ["seed", "solver", "oracle", "search nodes"],
        rows,
    )


def test_small_solution_property(benchmark, table):
    """Lemma 2: minimal solutions are bounded by |J_can| ≤ poly(|I|+|J|)."""
    setting = random_glav_setting(seed=4)
    sizes = [2, 4, 6]
    sources = {
        n: random_source(setting, domain_size=4, facts_per_relation=n, seed=n)
        for n in sizes
    }

    def run():
        rows = []
        for n in sizes:
            source = sources[n]
            search = ValuationSearch(setting, source, Instance())
            bound = len(search.j_can)
            observed = minimal_solution_sizes(setting, source, Instance(), limit=16)
            largest = max(observed) if observed else 0
            assert largest <= bound
            rows.append([n, len(source), bound, len(observed), largest])
        return rows

    rows = benchmark.pedantic(run, rounds=3, iterations=1)
    table(
        "E13: Lemma 2 small-solution bound (|J*| <= |J_can|)",
        ["facts/rel", "|I|", "|J_can| bound", "#minimal sols", "max |J*|"],
        rows,
    )


def test_solver_effort_on_random_glav(benchmark, table):
    """Search effort across random GLAV settings (the NP certificate is
    small even when the search space is not)."""
    cases = []
    for seed in range(6):
        setting = random_glav_setting(seed=seed)
        source = random_source(setting, domain_size=4, facts_per_relation=3, seed=seed)
        cases.append((seed, setting, source))

    def run():
        rows = []
        for seed, setting, source in cases:
            result = solve(setting, source, Instance(), method="valuation")
            rows.append(
                [
                    seed,
                    result.exists,
                    result.stats.get("null_count", 0),
                    result.stats.get("nodes", 0),
                ]
            )
        return rows

    rows = benchmark(run)
    table(
        "E2: valuation-search effort on random GLAV settings",
        ["seed", "exists", "nulls in J_can", "search nodes"],
        rows,
    )
