"""Ablation — cores of canonical instances and witnesses.

DESIGN.md calls out the block machinery (adapted from reference [7],
*getting to the core*) as a load-bearing design choice: Theorem 6's
constant nulls-per-block is what keeps both the Figure 3 homomorphism
tests and core computation cheap inside ``C_tract``.

This bench (a) measures how much coring shrinks deliberately bloated
witnesses, (b) confirms core computation stays fast on growing ``C_tract``
canonical instances (constant-size blocks), and (c) verifies cored
witnesses remain solutions.
"""

from __future__ import annotations

import time

from repro import Instance, PDESetting, parse_instance
from repro.core.cores import core, is_core
from repro.core.terms import Null
from repro.solver import canonical_instances, solve
from repro.workloads import generate_genomics_data, genomics_setting


def bloat(witness: Instance, copies: int) -> Instance:
    """Add redundant null-carrying duplicates of every witness fact."""
    bloated = witness.copy()
    label = 10_000
    for fact in list(witness):
        for _ in range(copies):
            args = list(fact.args)
            args[-1] = Null(label)
            label += 1
            bloated.add(type(fact)(fact.relation, tuple(args)))
    return bloated


def test_core_shrinks_bloated_witnesses(benchmark, table):
    setting = PDESetting.from_text(
        source={"A": 2},
        target={"T": 2},
        st="A(x, y) -> T(x, y)",
    )
    source = parse_instance("; ".join(f"A(a{i}, b{i})" for i in range(6)))
    witness = solve(setting, source, Instance()).solution

    def run():
        rows = []
        for copies in (1, 2, 4):
            bloated = bloat(witness, copies)
            assert setting.is_solution(source, Instance(), bloated)
            minimized = core(bloated)
            assert setting.is_solution(source, Instance(), minimized)
            assert is_core(minimized)
            rows.append([copies, len(bloated), len(minimized)])
        return rows

    rows = benchmark.pedantic(run, rounds=3, iterations=1)
    table(
        "ablation: coring bloated witnesses (cored size = canonical size)",
        ["bloat copies", "|bloated J'|", "|core(J')|"],
        rows,
    )
    assert all(row[2] == len(witness) for row in rows)


def test_core_cost_inside_ctract(benchmark, table):
    """Theorem 6 consequence: cores of I_can are cheap for C_tract —
    every block has constantly many nulls, so the per-block retraction
    search is bounded."""
    setting = genomics_setting()
    sizes = [10, 20, 40]
    data = {n: generate_genomics_data(proteins=n, seed=5) for n in sizes}

    def run():
        rows = []
        for n in sizes:
            source, target = data[n]
            _j_can, i_can, _stats = canonical_instances(setting, source, target)
            started = time.perf_counter()
            minimized = core(i_can)
            elapsed = time.perf_counter() - started
            rows.append([n, len(i_can), len(minimized), f"{elapsed * 1000:.1f} ms"])
        return rows

    rows = benchmark.pedantic(run, rounds=3, iterations=1)
    table(
        "ablation: core(I_can) cost inside C_tract (flat per-fact cost)",
        ["proteins", "|I_can|", "|core|", "time"],
        rows,
    )
