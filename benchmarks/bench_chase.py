"""Experiment E12 — Definition 5 / Lemma 1: weakly acyclic chase behavior.

Paper claims: weak acyclicity of a set of tgds guarantees that every
(solution-aware) chase sequence has length bounded by a polynomial in the
instance size.  The bench measures chase length and wall time across
growing instances for weakly acyclic sets (linear-to-polynomial growth),
verifies the classifier on a catalogue of dependency sets, and shows the
step budget catching a non-weakly-acyclic set.

The second half benchmarks the incremental (semi-naive) chase on the
sync hot path: a genomics churn feed replayed through ``sync_delta``
with the warm incremental pipeline on and off, recorded to
``BENCH_chase.json`` for the nightly lane to archive.
"""

from __future__ import annotations

import statistics
import time

import pytest

from repro.core.chase import chase, solution_aware_chase
from repro.core.homomorphism import has_instance_homomorphism
from repro.core.instance import Instance
from repro.core.parser import parse_dependencies, parse_instance
from repro.core.weak_acyclicity import is_weakly_acyclic
from repro.exceptions import ChaseNonTermination
from repro.sync.session import Stamp, SyncSession
from repro.workloads.scenarios import generate_genomics_feed, genomics_setting

WEAKLY_ACYCLIC = parse_dependencies(
    """
    E(x, y) -> G(x, w)
    G(x, w) -> F(w)
    E(x, y), E(y, z) -> E2(x, z)
    """
)

NON_WEAKLY_ACYCLIC = parse_dependencies("H(x, y) -> H(y, z)")


def chain_instance(n: int):
    return parse_instance("; ".join(f"E(a{i}, a{i + 1})" for i in range(n)))


def test_chase_length_polynomial(benchmark, table):
    sizes = [8, 16, 32, 64]

    def run():
        rows = []
        for n in sizes:
            instance = chain_instance(n)
            started = time.perf_counter()
            result = chase(instance, WEAKLY_ACYCLIC)
            elapsed = time.perf_counter() - started
            rows.append(
                [n, result.step_count, result.rounds, f"{elapsed * 1000:.1f} ms"]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=3, iterations=1)
    table(
        "E12: chase length on a weakly acyclic set (paper: polynomial)",
        ["|I|", "chase steps", "rounds", "time"],
        rows,
    )
    # Steps grow at most quadratically here (E2 join of a chain is linear).
    steps = [row[1] for row in rows]
    assert steps[-1] <= steps[0] * (sizes[-1] // sizes[0]) ** 2


def test_solution_aware_chase_length(benchmark, table):
    """Lemma 1 for the solution-aware variant: bounded by the same polynomial."""
    tgds = parse_dependencies("E(x, y) -> G(x, w)\nG(x, w) -> F(w)")
    sizes = [8, 16, 32]

    def run():
        rows = []
        for n in sizes:
            start = chain_instance(n)
            solution = start.copy()
            solution.add_all(parse_instance("; ".join(f"G(a{i}, c{i})" for i in range(n))))
            solution.add_all(parse_instance("; ".join(f"F(c{i})" for i in range(n))))
            result = solution_aware_chase(start, tgds, solution)
            assert result.instance.is_ground()
            rows.append([n, result.step_count])
        return rows

    rows = benchmark.pedantic(run, rounds=3, iterations=1)
    table(
        "E12: solution-aware chase length (Lemma 1)",
        ["|I|", "chase steps"],
        rows,
    )
    steps = [row[1] for row in rows]
    assert steps == [2 * n for n in sizes]  # exactly linear for this set


def test_weak_acyclicity_classifier(benchmark, table):
    catalogue = [
        ("full tgds", "E(x, y) -> E(y, x)", True),
        ("acyclic inclusion", "A(x, y) -> B(x, y)\nB(x, y) -> C(x, w)", True),
        ("one-shot existential", "H(x, y) -> H(x, z)", True),
        ("self special loop", "H(x, y) -> H(y, z)", False),
        ("two-tgd special cycle", "A(x) -> B(x, w)\nB(x, y) -> A(y)", False),
    ]

    def run():
        rows = []
        for label, text, expected in catalogue:
            verdict = is_weakly_acyclic(parse_dependencies(text))
            assert verdict is expected
            rows.append([label, verdict])
        return rows

    rows = benchmark(run)
    table(
        "E12: weak-acyclicity classification (Definition 5)",
        ["dependency set", "weakly acyclic"],
        rows,
    )


def test_non_weakly_acyclic_budget(benchmark):
    instance = parse_instance("H(a, b)")

    def run():
        with pytest.raises(ChaseNonTermination):
            chase(instance, NON_WEAKLY_ACYCLIC, max_steps=200)
        return True

    assert benchmark(run)


def test_certified_budget(benchmark, table):
    """Lemma 1 constructively: the position-rank budget always covers the
    actual chase length (by a wide margin — the bound is coarse)."""
    from repro.core.weak_acyclicity import chase_step_bound, position_ranks

    sizes = [8, 16, 32]

    def run():
        ranks = position_ranks(WEAKLY_ACYCLIC)
        max_rank = max(ranks.values())
        rows = []
        for n in sizes:
            instance = chain_instance(n)
            budget = chase_step_bound(WEAKLY_ACYCLIC, len(instance))
            result = chase(instance, WEAKLY_ACYCLIC, max_steps=budget)
            assert result.step_count <= budget
            rows.append([n, max_rank, result.step_count, budget])
        return rows

    rows = benchmark.pedantic(run, rounds=3, iterations=1)
    table(
        "E12: certified chase budget from position ranks (Lemma 1)",
        ["|I|", "max rank", "actual steps", "certified budget"],
        rows,
    )


def _drive_churn(feed, setting, incremental: bool) -> tuple[list[float], Instance]:
    """Replay ``feed`` through ``sync_delta``; per-round latencies + state."""
    schema = setting.source_schema
    session = SyncSession(setting, incremental=incremental)
    session.sync(feed[0], stamp=Stamp(0, 0))
    latencies = []
    prev = feed[0]
    for index, snap in enumerate(feed[1:], 1):
        added, withdrawn = snap.diff(prev)
        added_instance = Instance(schema=schema)
        added_instance.add_all(added)
        withdrawn_instance = Instance(schema=schema)
        withdrawn_instance.add_all(withdrawn)
        started = time.perf_counter()
        outcome = session.sync_delta(
            added_instance,
            withdrawn_instance,
            base=Stamp(0, index - 1),
            stamp=Stamp(0, index),
        )
        latencies.append(time.perf_counter() - started)
        assert outcome.ok
        prev = snap
    return latencies, session.state()


def test_incremental_chase_sync_hot_path(benchmark, table, record):
    """Incremental (semi-naive) chase vs from-scratch on genomics churn.

    ISSUE 10 acceptance: the warm pipeline must deliver at least a 5x
    median round-latency improvement for ``sync_delta`` on the churn
    feed, with both runs converging to hom-equivalent states.
    """
    setting = genomics_setting()
    feed = generate_genomics_feed(rounds=10, proteins=120, churn=0.12, seed=7)

    def run():
        warm, warm_state = _drive_churn(feed, setting, incremental=True)
        cold, cold_state = _drive_churn(feed, setting, incremental=False)
        assert has_instance_homomorphism(warm_state, cold_state)
        assert has_instance_homomorphism(cold_state, warm_state)
        return warm, cold

    warm, cold = benchmark.pedantic(run, rounds=3, iterations=1)
    warm_ms = statistics.median(warm) * 1000
    cold_ms = statistics.median(cold) * 1000
    speedup = cold_ms / warm_ms
    table(
        "incremental chase: sync_delta round latency on genomics churn",
        ["rounds", "incremental median", "scratch median", "speedup"],
        [[len(warm), f"{warm_ms:.2f} ms", f"{cold_ms:.2f} ms", f"{speedup:.1f}x"]],
    )
    record(
        "bench_chase.sync_delta_incremental",
        {
            "workload": "genomics-churn",
            "rounds": len(warm),
            "proteins": 120,
            "churn": 0.12,
            "incremental_median_ms": round(warm_ms, 3),
            "scratch_median_ms": round(cold_ms, 3),
            "speedup": round(speedup, 2),
        },
    )
    assert speedup >= 5.0
