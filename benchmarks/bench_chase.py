"""Experiment E12 — Definition 5 / Lemma 1: weakly acyclic chase behavior.

Paper claims: weak acyclicity of a set of tgds guarantees that every
(solution-aware) chase sequence has length bounded by a polynomial in the
instance size.  The bench measures chase length and wall time across
growing instances for weakly acyclic sets (linear-to-polynomial growth),
verifies the classifier on a catalogue of dependency sets, and shows the
step budget catching a non-weakly-acyclic set.
"""

from __future__ import annotations

import time

import pytest

from repro.core.chase import chase, solution_aware_chase
from repro.core.parser import parse_dependencies, parse_instance
from repro.core.weak_acyclicity import is_weakly_acyclic
from repro.exceptions import ChaseNonTermination

WEAKLY_ACYCLIC = parse_dependencies(
    """
    E(x, y) -> G(x, w)
    G(x, w) -> F(w)
    E(x, y), E(y, z) -> E2(x, z)
    """
)

NON_WEAKLY_ACYCLIC = parse_dependencies("H(x, y) -> H(y, z)")


def chain_instance(n: int):
    return parse_instance("; ".join(f"E(a{i}, a{i + 1})" for i in range(n)))


def test_chase_length_polynomial(benchmark, table):
    sizes = [8, 16, 32, 64]

    def run():
        rows = []
        for n in sizes:
            instance = chain_instance(n)
            started = time.perf_counter()
            result = chase(instance, WEAKLY_ACYCLIC)
            elapsed = time.perf_counter() - started
            rows.append(
                [n, result.step_count, result.rounds, f"{elapsed * 1000:.1f} ms"]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=3, iterations=1)
    table(
        "E12: chase length on a weakly acyclic set (paper: polynomial)",
        ["|I|", "chase steps", "rounds", "time"],
        rows,
    )
    # Steps grow at most quadratically here (E2 join of a chain is linear).
    steps = [row[1] for row in rows]
    assert steps[-1] <= steps[0] * (sizes[-1] // sizes[0]) ** 2


def test_solution_aware_chase_length(benchmark, table):
    """Lemma 1 for the solution-aware variant: bounded by the same polynomial."""
    tgds = parse_dependencies("E(x, y) -> G(x, w)\nG(x, w) -> F(w)")
    sizes = [8, 16, 32]

    def run():
        rows = []
        for n in sizes:
            start = chain_instance(n)
            solution = start.copy()
            solution.add_all(parse_instance("; ".join(f"G(a{i}, c{i})" for i in range(n))))
            solution.add_all(parse_instance("; ".join(f"F(c{i})" for i in range(n))))
            result = solution_aware_chase(start, tgds, solution)
            assert result.instance.is_ground()
            rows.append([n, result.step_count])
        return rows

    rows = benchmark.pedantic(run, rounds=3, iterations=1)
    table(
        "E12: solution-aware chase length (Lemma 1)",
        ["|I|", "chase steps"],
        rows,
    )
    steps = [row[1] for row in rows]
    assert steps == [2 * n for n in sizes]  # exactly linear for this set


def test_weak_acyclicity_classifier(benchmark, table):
    catalogue = [
        ("full tgds", "E(x, y) -> E(y, x)", True),
        ("acyclic inclusion", "A(x, y) -> B(x, y)\nB(x, y) -> C(x, w)", True),
        ("one-shot existential", "H(x, y) -> H(x, z)", True),
        ("self special loop", "H(x, y) -> H(y, z)", False),
        ("two-tgd special cycle", "A(x) -> B(x, w)\nB(x, y) -> A(y)", False),
    ]

    def run():
        rows = []
        for label, text, expected in catalogue:
            verdict = is_weakly_acyclic(parse_dependencies(text))
            assert verdict is expected
            rows.append([label, verdict])
        return rows

    rows = benchmark(run)
    table(
        "E12: weak-acyclicity classification (Definition 5)",
        ["dependency set", "weakly acyclic"],
        rows,
    )


def test_non_weakly_acyclic_budget(benchmark):
    instance = parse_instance("H(a, b)")

    def run():
        with pytest.raises(ChaseNonTermination):
            chase(instance, NON_WEAKLY_ACYCLIC, max_steps=200)
        return True

    assert benchmark(run)


def test_certified_budget(benchmark, table):
    """Lemma 1 constructively: the position-rank budget always covers the
    actual chase length (by a wide margin — the bound is coarse)."""
    from repro.core.weak_acyclicity import chase_step_bound, position_ranks

    sizes = [8, 16, 32]

    def run():
        ranks = position_ranks(WEAKLY_ACYCLIC)
        max_rank = max(ranks.values())
        rows = []
        for n in sizes:
            instance = chain_instance(n)
            budget = chase_step_bound(WEAKLY_ACYCLIC, len(instance))
            result = chase(instance, WEAKLY_ACYCLIC, max_steps=budget)
            assert result.step_count <= budget
            rows.append([n, max_rank, result.step_count, budget])
        return rows

    rows = benchmark.pedantic(run, rounds=3, iterations=1)
    table(
        "E12: certified chase budget from position ranks (Lemma 1)",
        ["|I|", "max rank", "actual steps", "certified budget"],
        rows,
    )
